//! Offline vendored stand-in for `proptest`.
//!
//! Implements the generate-and-check core of the proptest API this
//! repository uses: the [`Strategy`] trait over numeric ranges, tuples, and
//! [`collection::vec`]; `any::<bool>()`; the `proptest!` macro with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`; and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! assertion message directly), and cases are generated from a fixed seed
//! derived from the test's name, so every run explores the same inputs.

use rand::rngs::StdRng;

pub use rand::SeedableRng as __SeedableRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

// Strategies borrow fine: &S is a strategy if S is.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngExt::random(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Element-count specification for [`vec`]: an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from the range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rand::RngExt::random_range(rng, self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Per-case control flow: upstream test bodies run in a context returning
/// `Result<(), TestCaseError>`, so `return Ok(())` passes a case early and
/// `prop_assume!` rejects one without failing.
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each!(@cfg(<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <::rand::rngs::StdRng as $crate::__SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let strategy = ($($strat,)+);
            for __case in 0..config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                // The closure gives the body upstream's Result-returning
                // context: `return Ok(())` passes, `prop_assume!` rejects.
                #[allow(unreachable_code)]
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_each!(@cfg($cfg) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, Vec<u32>)> {
        (-1.0f64..1.0, collection::vec(0u32..10, 1..5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in -5.0f64..5.0, n in 0usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(n < 10);
        }

        #[test]
        fn tuples_and_vecs((x, v) in pair()) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_bool_works(b in any::<bool>()) {
            prop_assert!(b || !b);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
