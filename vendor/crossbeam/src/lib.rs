//! Offline vendored stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is provided, layered over
//! `std::thread::scope` (stable since Rust 1.63). The API mirrors upstream:
//! `scope` returns a `Result` (always `Ok` here — panics propagate through
//! join handles instead of poisoning the scope), and the closure passed to
//! `spawn` receives a scope reference argument, so existing `|_|` closures
//! compile unchanged.

pub mod thread {
    use std::any::Any;

    /// Scoped-thread handle mirroring `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Mirrors `crossbeam::thread::Scope`: spawn closures take `&Scope`.
    pub struct Scope<'env, 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'env, 'scope> Scope<'env, 'scope> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env, 'scope>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Run `f` with a scope in which borrowing-spawned threads are joined
    /// before `scope` returns. Upstream returns `Err` only when a spawned
    /// thread panicked *and* its handle was leaked unjoined; with
    /// `std::thread::scope` such a panic resumes on the parent thread
    /// instead, so this always returns `Ok`.
    #[allow(clippy::result_unit_err)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<i32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
