//! Offline vendored stand-in for a minimal futures executor.
//!
//! A **single-threaded** cooperative executor: every future is polled on the
//! thread that calls [`LocalExecutor::run`], so tasks can share state through
//! `Rc<RefCell<_>>` without locks. Wakers are `Send + Sync` and may be called
//! from *other* threads (e.g. a client pushing a request into a queue); a
//! wake just marks the task ready and unparks the executor, never touching
//! the future itself.
//!
//! Provided pieces, in the spirit of `futures::executor::LocalPool`:
//!
//! * [`LocalExecutor`] — task set + ready queue + condvar park/unpark loop;
//! * [`Spawner`] — clonable handle for spawning further tasks from inside a
//!   running task (same thread only);
//! * [`sleep`] — a timer future served by the executor's park timeout;
//! * [`yield_now`] — reschedule the current task behind the ready queue;
//! * [`block_on`] — drive one future on the current thread, parking between
//!   polls.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Cross-thread wakeable state shared by every task's waker.
struct Shared {
    /// Indices of tasks marked ready since the last sweep.
    ready: Mutex<VecDeque<usize>>,
    parked: Condvar,
}

impl Shared {
    fn wake_task(&self, id: usize) {
        let mut q = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        if !q.contains(&id) {
            q.push_back(id);
        }
        self.parked.notify_one();
    }
}

/// One task's waker: marks the task ready and unparks the executor. Safe to
/// call from any thread — it never touches the (non-`Send`) future.
struct TaskWaker {
    shared: Arc<Shared>,
    id: usize,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.shared.wake_task(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.wake_task(self.id);
    }
}

/// Tasks spawned from inside a running task, staged until the next sweep.
/// Same-thread only (`Rc`), so spawning never races the poll loop.
#[derive(Default)]
struct Injector {
    incoming: Vec<LocalFuture>,
}

/// Clonable same-thread spawn handle (see [`LocalExecutor::spawner`]).
#[derive(Clone)]
pub struct Spawner {
    injector: Rc<RefCell<Injector>>,
}

impl Spawner {
    /// Queue a future for execution; it is adopted at the next executor sweep.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.injector.borrow_mut().incoming.push(Box::pin(fut));
    }
}

/// A minimal single-threaded executor. Runs every spawned task to completion;
/// [`LocalExecutor::run`] returns when no task remains.
pub struct LocalExecutor {
    shared: Arc<Shared>,
    injector: Rc<RefCell<Injector>>,
    /// Slot per task; `None` once completed.
    tasks: Vec<Option<LocalFuture>>,
}

impl Default for LocalExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalExecutor {
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared { ready: Mutex::new(VecDeque::new()), parked: Condvar::new() }),
            injector: Rc::new(RefCell::new(Injector::default())),
            tasks: Vec::new(),
        }
    }

    /// Spawn a task before (or between) runs.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
        let id = self.tasks.len();
        self.tasks.push(Some(Box::pin(fut)));
        self.shared.wake_task(id);
    }

    /// Handle for spawning from inside tasks.
    pub fn spawner(&self) -> Spawner {
        Spawner { injector: Rc::clone(&self.injector) }
    }

    /// Adopt injected tasks, marking them ready.
    fn adopt_injected(&mut self) {
        let incoming = std::mem::take(&mut self.injector.borrow_mut().incoming);
        for fut in incoming {
            let id = self.tasks.len();
            self.tasks.push(Some(fut));
            self.shared.wake_task(id);
        }
    }

    /// Poll ready tasks until every task has completed. Parks on a condvar
    /// when nothing is ready; timer futures ([`sleep`]) bound the park so the
    /// earliest deadline is honored without a dedicated timer thread.
    pub fn run(&mut self) {
        loop {
            self.adopt_injected();
            // Drain the ready set into a local batch so wakes issued during
            // polling (including self-wakes from `yield_now`) land in the
            // next sweep instead of livelocking this one.
            let batch: Vec<usize> = {
                let mut q = self.shared.ready.lock().unwrap_or_else(|e| e.into_inner());
                q.drain(..).collect()
            };
            for id in batch {
                let Some(slot) = self.tasks.get_mut(id) else { continue };
                let Some(fut) = slot.as_mut() else { continue };
                let waker =
                    Waker::from(Arc::new(TaskWaker { shared: Arc::clone(&self.shared), id }));
                let mut cx = Context::from_waker(&waker);
                if let Poll::Ready(()) = fut.as_mut().poll(&mut cx) {
                    *slot = None;
                }
            }
            self.adopt_injected();
            if self.tasks.iter().all(Option::is_none) {
                return;
            }
            // Park until a waker fires or the nearest timer deadline passes.
            // Timer wakers go through `wake_task`, which takes the ready
            // lock — so the lock must be *released* before `fire_timers`.
            loop {
                let q = self.shared.ready.lock().unwrap_or_else(|e| e.into_inner());
                if !q.is_empty() {
                    break;
                }
                match next_deadline() {
                    Some(deadline) => {
                        let now = Instant::now();
                        if deadline > now {
                            drop(
                                self.shared
                                    .parked
                                    .wait_timeout(q, deadline - now)
                                    .unwrap_or_else(|e| e.into_inner()),
                            );
                        } else {
                            drop(q);
                        }
                        fire_timers(Instant::now());
                    }
                    None => {
                        drop(self.shared.parked.wait(q).unwrap_or_else(|e| e.into_inner()));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

thread_local! {
    /// Pending `(deadline, waker)` pairs for this thread's executor.
    static TIMERS: RefCell<Vec<(Instant, Waker)>> = const { RefCell::new(Vec::new()) };
}

fn next_deadline() -> Option<Instant> {
    TIMERS.with(|t| t.borrow().iter().map(|(d, _)| *d).min())
}

/// Wake every timer at or past `now`.
fn fire_timers(now: Instant) {
    let due: Vec<Waker> = TIMERS.with(|t| {
        let mut timers = t.borrow_mut();
        let mut due = Vec::new();
        timers.retain(|(d, w)| {
            if *d <= now {
                due.push(w.clone());
                false
            } else {
                true
            }
        });
        due
    });
    for w in due {
        w.wake();
    }
}

/// Sleep until a deadline has passed. Resolution is whatever the executor's
/// park timeout delivers — good enough for polling loops, not for audio.
pub struct Sleep {
    deadline: Instant,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        // Re-register every poll: wakers are task-scoped and cheap to clone.
        let deadline = self.deadline;
        TIMERS.with(|t| t.borrow_mut().push((deadline, cx.waker().clone())));
        self.registered = true;
        Poll::Pending
    }
}

/// A future that completes `dur` from now.
pub fn sleep(dur: Duration) -> Sleep {
    Sleep { deadline: Instant::now() + dur, registered: false }
}

/// Yield once: reschedules the current task behind everything already ready.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

struct ParkWaker {
    woken: AtomicBool,
    parked: Condvar,
    lock: Mutex<()>,
}

impl Wake for ParkWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::SeqCst);
        self.parked.notify_one();
    }
}

/// Drive a single future to completion on the current thread. Timer futures
/// created inside it are honored via the same thread-local timer table the
/// executor uses.
pub fn block_on<T>(fut: impl Future<Output = T>) -> T {
    let parker = Arc::new(ParkWaker {
        woken: AtomicBool::new(false),
        parked: Condvar::new(),
        lock: Mutex::new(()),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
            return v;
        }
        let mut guard = parker.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !parker.woken.swap(false, Ordering::SeqCst) {
            match next_deadline() {
                Some(deadline) => {
                    let now = Instant::now();
                    if deadline <= now {
                        fire_timers(now);
                        continue;
                    }
                    let (g, _) = parker
                        .parked
                        .wait_timeout(guard, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    guard = g;
                    fire_timers(Instant::now());
                }
                None => {
                    guard = parker.parked.wait(guard).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn tasks_interleave_and_share_state() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut ex = LocalExecutor::new();
        for id in 0..3u32 {
            let log = Rc::clone(&log);
            ex.spawn(async move {
                for _ in 0..3 {
                    log.borrow_mut().push(id);
                    yield_now().await;
                }
            });
        }
        ex.run();
        let got = log.borrow();
        assert_eq!(got.len(), 9);
        for id in 0..3 {
            assert_eq!(got.iter().filter(|&&x| x == id).count(), 3);
        }
    }

    #[test]
    fn spawner_injects_mid_run() {
        let done = Rc::new(RefCell::new(false));
        let mut ex = LocalExecutor::new();
        let sp = ex.spawner();
        let done2 = Rc::clone(&done);
        ex.spawn(async move {
            let done3 = Rc::clone(&done2);
            sp.spawn(async move {
                *done3.borrow_mut() = true;
            });
        });
        ex.run();
        assert!(*done.borrow());
    }

    #[test]
    fn sleep_actually_waits() {
        let t = Instant::now();
        block_on(async {
            sleep(Duration::from_millis(30)).await;
        });
        assert!(t.elapsed() >= Duration::from_millis(25), "slept {:?}", t.elapsed());
    }

    #[test]
    fn timers_fire_inside_executor_run() {
        // Regression: `run()` must release the ready lock before firing
        // timers — timer wakers re-take it (this used to self-deadlock).
        let t = Instant::now();
        let ticks = Rc::new(RefCell::new(0));
        let mut ex = LocalExecutor::new();
        let t2 = Rc::clone(&ticks);
        ex.spawn(async move {
            for _ in 0..3 {
                sleep(Duration::from_millis(10)).await;
                *t2.borrow_mut() += 1;
            }
        });
        ex.run();
        assert_eq!(*ticks.borrow(), 3);
        assert!(t.elapsed() >= Duration::from_millis(25), "ran in {:?}", t.elapsed());
    }

    #[test]
    fn cross_thread_wake_unparks_executor() {
        use std::sync::mpsc;
        // A task pending on a hand-rolled future that a foreign thread wakes.
        struct WaitFlag {
            flag: Arc<AtomicBool>,
            waker_tx: mpsc::Sender<Waker>,
        }
        impl Future for WaitFlag {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.flag.load(Ordering::SeqCst) {
                    Poll::Ready(())
                } else {
                    let _ = self.waker_tx.send(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let flag = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let mut ex = LocalExecutor::new();
        ex.spawn(WaitFlag { flag: Arc::clone(&flag), waker_tx: tx });
        let setter = std::thread::spawn(move || {
            let waker: Waker = rx.recv().expect("waker");
            std::thread::sleep(Duration::from_millis(20));
            flag.store(true, Ordering::SeqCst);
            waker.wake();
        });
        ex.run();
        setter.join().expect("setter thread");
    }
}
