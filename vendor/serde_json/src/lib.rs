//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde::Value` tree as JSON text. Floats
//! are written with Rust's shortest-roundtrip `Display` formatting, so every
//! finite `f64` survives `to_string` → `from_str` bit-exactly (the behavior
//! the real crate's `float_roundtrip` feature guarantees); non-finite floats
//! become `null`, matching upstream.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON encode/decode error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse a JSON string into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ----------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display emits the shortest string that parses back
                // to the same f64, but may omit the decimal point/exponent;
                // add ".0" so the token stays a JSON *number* parsed as float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(x, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, x)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(x, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(Error::new("control character in string")),
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = s.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = s.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        s.parse::<f64>().map(Value::Float).map_err(|_| Error::new(format!("invalid number `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for &f in &[
            0.1,
            -1.0 / 3.0,
            1e-300,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            1234567890.123456789,
            -0.0,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn integers_roundtrip() {
        let s = to_string(&vec![0u64, 1, u64::MAX]).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, vec![0, 1, u64::MAX]);
        let s = to_string(&(-42i64)).unwrap();
        assert_eq!(from_str::<i64>(&s).unwrap(), -42);
    }

    #[test]
    fn strings_escape_and_parse() {
        let orig = "line\n\"quoted\"\t\\slash\u{1}unicode \u{1F600} ok".to_string();
        let s = to_string(&orig).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
    }
}
