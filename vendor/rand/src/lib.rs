//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this workspace
//! ships a minimal, deterministic implementation of the subset of the `rand`
//! API the repository uses: [`rngs::StdRng`] (xoshiro256** seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], [`RngExt::random`] /
//! [`RngExt::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is a feature here: every experiment in the repo keys off fixed
//! seeds, and the parallel training tests assert bit-for-bit reproducibility.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Marker alias matching `rand::Rng` (everything that can generate).
pub trait Rng: RngCore {}
impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Expand a `u64` into a full RNG state (SplitMix64, as upstream does).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges usable with `rng.random_range(..)`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// High-level sampling helpers (upstream 0.10 naming: `random*`).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Raw xoshiro256** state, for checkpoint/resume of a generator.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restore a generator from a previously captured [`Self::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let j = ((rng.next_u64() as u128 * (self.len() as u128)) >> 64) as usize;
                Some(&self[j])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            assert!(x < 10);
            let y: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: u32 = rng.random_range(3..=4);
            assert!(z == 3 || z == 4);
            let w: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 2000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely identity");
    }
}
