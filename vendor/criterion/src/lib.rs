//! Offline vendored stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API surface the
//! repository's benches use: [`Criterion::bench_function`], [`Bencher::iter`]
//! / [`Bencher::iter_batched`], `criterion_group!` / `criterion_main!`, and
//! `black_box`. Each benchmark is auto-calibrated to a target sampling time,
//! then reports min/mean/median per-iteration wall time to stdout.
//!
//! No statistics engine, plots, or baseline comparison — just honest timing.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are sized; only a hint in this implementation.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` excluding per-iteration `setup` cost.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry/configuration, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20, target_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Run one benchmark: calibrate iterations/sample, collect samples,
    /// print a summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibrate: grow the iteration count until one sample is ≥ 1ms
        // (or the routine is so slow a single iteration suffices).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Fit the sample count into the target time budget.
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_sample = b.elapsed.max(Duration::from_nanos(1));
        let budget_samples =
            (self.target_time.as_nanos() / per_sample.as_nanos().max(1)).max(2) as usize;
        let samples = self.sample_size.min(budget_samples).max(2);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter_ns[0];
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({samples} samples x {iters} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        c.bench_function("noop_sum", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed > Duration::ZERO);
    }
}
