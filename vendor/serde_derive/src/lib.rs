//! Offline vendored `Serialize`/`Deserialize` derive macros.
//!
//! `syn`/`quote` are unavailable in this offline build, so the item is parsed
//! directly from the raw [`proc_macro::TokenStream`]. Only the shapes this
//! repository actually derives are supported: non-generic structs (named,
//! tuple, unit) and non-generic enums (unit, tuple, and struct variants).
//! Generated code targets the vendored `serde` crate's `Value` data model and
//! mirrors real serde's externally-tagged JSON layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field, plus its `#[serde(default)]` setting when present:
/// `None` = required, `Some("")` = `Default::default()`, `Some(path)` = call
/// the named function.
#[derive(Debug)]
struct NamedField {
    name: String,
    default: Option<String>,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` attributes (including doc comments) at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1; // '#'
        if *i < tokens.len()
            && matches!(&tokens[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tokens.len()
            && matches!(&tokens[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Recognize `#[serde(default)]` / `#[serde(default = "path")]` in an
/// attribute bracket group. Other serde attributes are rejected loudly rather
/// than silently changing the wire format.
fn parse_serde_attr(group: &TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => panic!("serde_derive: malformed #[serde(...)] attribute"),
    };
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => panic!("serde_derive (vendored): only `default` is supported, found `{other:?}`"),
    }
    match inner.get(2) {
        // #[serde(default = "path::to::fn")]
        Some(TokenTree::Literal(lit)) => Some(lit.to_string().trim_matches('"').to_string()),
        // #[serde(default)]
        None => Some(String::new()),
        other => panic!("serde_derive: malformed serde default: `{other:?}`"),
    }
}

/// Parse named fields out of a brace group: returns the fields in order.
fn parse_named_fields(group: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut names: Vec<NamedField> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = None;
        while i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 1; // '#'
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Bracket {
                    if let Some(d) = parse_serde_attr(&g.stream()) {
                        default = Some(d);
                    }
                    i += 1;
                }
            }
        }
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => names.push(NamedField { name: id.to_string(), default }),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        }
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde_derive: expected `:` after field `{}`",
            names.last().unwrap().name
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Count comma-separated chunks of a paren group (tuple struct/variant arity).
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle: i32 = 0;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        arity -= 1; // trailing comma
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let f = Fields::Named(parse_named_fields(g.stream()));
                    i += 1;
                    f
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let f = Fields::Tuple(tuple_arity(g.stream()));
                    i += 1;
                    f
                }
                _ => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        // Skip an optional explicit discriminant, then the separating comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // ','
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive (vendored): generic types are not supported (deriving `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = if i >= tokens.len() || is_punct(&tokens[i], ';') {
                Fields::Unit
            } else {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(tuple_arity(g.stream()))
                    }
                    other => panic!("serde_derive: unexpected token `{other}` in struct `{name}`"),
                }
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found `{other}`"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let mut s = String::from("let mut o = Vec::new();\n");
                    for f in names {
                        let f = &f.name;
                        s.push_str(&format!(
                            "o.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n"
                        ));
                    }
                    s.push_str("serde::Value::Object(o)");
                    s
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|k| format!("serde::Serialize::to_value(&self.{k})")).collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = binds
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_named_ctor(ty_path: &str, ctx: &str, fields: &[NamedField]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|field| {
            let f = &field.name;
            match &field.default {
                // Defaulted fields tolerate absence — that is how new config
                // knobs stay loadable from checkpoints written before them.
                Some(path) => {
                    let fallback = if path.is_empty() {
                        "Default::default()".to_string()
                    } else {
                        format!("{path}()")
                    };
                    format!(
                        "{f}: match serde::field(o, \"{f}\", \"{ctx}\") {{ \
                           Ok(v) => serde::Deserialize::from_value(v)?, \
                           Err(_) => {fallback}, \
                         }}"
                    )
                }
                None => format!(
                    "{f}: serde::Deserialize::from_value(serde::field(o, \"{f}\", \"{ctx}\")?)?"
                ),
            }
        })
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "let o = v.as_object(\"{name}\")?;\nOk({})",
                    gen_named_ctor(name, name, fs)
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&a[{k}])?"))
                        .collect();
                    format!(
                        "let a = v.as_array(\"{name}\")?;\n\
                         if a.len() != {n} {{ return Err(serde::DeError::new(\
                            format!(\"{name}: expected {n} elements, got {{}}\", a.len()))); }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("let _ = v; Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => str_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    Fields::Tuple(n) => {
                        let body = if *n == 1 {
                            format!("Ok({name}::{vn}(serde::Deserialize::from_value(inner)?))")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&a[{k}])?"))
                                .collect();
                            format!(
                                "{{ let a = inner.as_array(\"{name}::{vn}\")?;\n\
                                 if a.len() != {n} {{ return Err(serde::DeError::new(\
                                    format!(\"{name}::{vn}: expected {n} elements, got {{}}\", a.len()))); }}\n\
                                 Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        };
                        obj_arms.push_str(&format!("\"{vn}\" => {body},\n"));
                    }
                    Fields::Named(fs) => {
                        let ctx = format!("{name}::{vn}");
                        let ctor = gen_named_ctor(&ctx, &ctx, fs);
                        obj_arms.push_str(&format!(
                            "\"{vn}\" => {{ let o = inner.as_object(\"{ctx}\")?; Ok({ctor}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                     match v {{\n\
                       serde::Value::Str(s) => match s.as_str() {{\n\
                         {str_arms}\n\
                         other => Err(serde::DeError::new(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                       }},\n\
                       serde::Value::Object(o) if o.len() == 1 => {{\n\
                         let (tag, inner) = &o[0];\n\
                         match tag.as_str() {{\n\
                           {obj_arms}\n\
                           other => Err(serde::DeError::new(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                         }}\n\
                       }},\n\
                       other => Err(serde::DeError::new(format!(\"{name}: expected enum, got {{}}\", other.kind()))),\n\
                     }}\n\
                   }}\n\
                 }}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}
