//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (recovering from poison, since
//! parking_lot has no poisoning concept).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
