//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (recovering from poison, since
//! parking_lot has no poisoning concept).

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};
use std::time::Duration;

/// Non-poisoning mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning condition variable. Unlike real parking_lot (which mutates
/// the guard in place), `wait` takes and returns the guard std-style — the
/// guard type here *is* `std::sync::MutexGuard`, which can't be re-seated
/// through a `&mut` without unsafe code.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub fn new() -> Self {
        Self { inner: StdCondvar::new() }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the reacquired guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(e) => {
                let (g, t) = e.into_inner();
                (g, t.timed_out())
            }
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let m2 = std::sync::Arc::clone(&m);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *m2.0.lock() = true;
            m2.1.notify_one();
        });
        let mut g = m.0.lock();
        while !*g {
            g = m.1.wait(g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
