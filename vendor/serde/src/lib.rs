//! Offline vendored stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! small serialization surface the repository needs. Instead of serde's
//! visitor-based data model, types convert to and from a concrete
//! [`Value`] tree; `serde_json` then renders/parses that tree. The derive
//! macros (re-exported from the vendored `serde_derive`) generate the same
//! external-tagging layout real serde uses for JSON, so files stay readable.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model all (de)serialization goes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (linear lookup; objects here are small).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self, ctx: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Object(o) => Ok(o),
            other => Err(DeError::new(format!("{ctx}: expected object, got {}", other.kind()))),
        }
    }

    pub fn as_array(&self, ctx: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(DeError::new(format!("{ctx}: expected array, got {}", other.kind()))),
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Fetch a named field from an object value (derive-generated code calls this).
pub fn field<'v>(obj: &'v [(String, Value)], name: &str, ctx: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("{ctx}: missing field `{name}`")))
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => return Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.kind()))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(
                    format!(concat!("integer {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.kind()))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(
                    format!(concat!("integer {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (serde_json behavior).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.kind()))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => {
                Err(DeError::new(format!("expected single-char string, got {}", other.kind())))
            }
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array("array")?;
        if a.len() != N {
            return Err(DeError::new(format!("expected array of length {N}, got {}", a.len())));
        }
        let mut out = [T::default(); N];
        for (o, x) in out.iter_mut().zip(a) {
            *o = T::from_value(x)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array("tuple")?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if a.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected tuple of length {LEN}, got {}", a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
