//! The raw-data pipeline: simulate a GPS fleet, recover paths with HMM map
//! matching (Newson & Krumm), and report recovery quality — the
//! trajectory-to-path step the paper applies to its real fleets (§VII-A.1).
//!
//! Run with:
//! ```sh
//! cargo run --release -p wsccl-bench --example gps_to_paths
//! ```

use wsccl_mapmatch::{map_match, EdgeSpatialIndex, MatchConfig};
use wsccl_roadnet::CityProfile;
use wsccl_traffic::{CongestionModel, TripConfig, TripGenerator};

fn main() {
    let net = CityProfile::Aalborg.generate(31);
    let congestion = CongestionModel::new(&net, 1.2, 31);
    println!(
        "city: {} nodes, {} edges; simulating 40 vehicle trips with noisy GPS",
        net.num_nodes(),
        net.num_edges()
    );

    let index = EdgeSpatialIndex::new(&net, 200.0);
    let match_cfg = MatchConfig::default();

    // Three sampling regimes, mirroring the paper's three fleets
    // (Aalborg 1 Hz, Chengdu ~1/3 Hz, Harbin 1/30 Hz).
    for (label, interval, noise) in [
        ("dense (1 fix/5s)", 5.0, 8.0),
        ("medium (1 fix/15s)", 15.0, 12.0),
        ("sparse (1 fix/30s)", 30.0, 15.0),
    ] {
        let trip_cfg =
            TripConfig { sample_interval: interval, gps_noise: noise, ..Default::default() };
        let mut generator = TripGenerator::new(&net, &congestion, trip_cfg, 31);
        let mut matched = 0usize;
        let mut overlap_sum = 0.0;
        let mut fixes = 0usize;
        const TRIPS: usize = 40;
        for _ in 0..TRIPS {
            let trip = generator.generate_trip();
            let traj = generator.trip_to_trajectory(&trip);
            fixes += traj.fixes.len();
            if let Some(path) = map_match(&net, &index, &traj, &match_cfg) {
                matched += 1;
                overlap_sum += trip.path.weighted_jaccard(&path, &net);
            }
        }
        println!(
            "{label:<20} | {:>5.1} fixes/trip | matched {matched}/{TRIPS} | mean overlap with true path {:.2}",
            fixes as f64 / TRIPS as f64,
            overlap_sum / matched.max(1) as f64
        );
    }
    println!("\n(the matched paths are what feeds representation learning in the full pipeline)");
}
