//! Similar-trips search — "find me past trips like this one".
//!
//! Trains WSCCL, embeds the unlabeled trip corpus, builds an IVF ANN index
//! over it ([`AnnIndex`]), installs the index into a running `wsccl-serve`
//! server, and answers similarity queries through `client.knn(path,
//! departure, k)`: the query embedding is resolved through the same batched
//! f32 forward pass and LRU cache as every other serve request, with the
//! index scan on top. For a few held-out query trips it prints the nearest
//! stored trips and how much of the corpus the IVF probe actually scanned.
//!
//! Run with:
//! ```sh
//! cargo run --release -p wsccl-bench --example similar_trips
//! ```

use std::sync::Arc;

use wsccl_bench::Scale;
use wsccl_core::train_wsccl;
use wsccl_datagen::CityDataset;
use wsccl_downstream::index::{to_f32, AnnConfig, AnnIndex};
use wsccl_roadnet::CityProfile;
use wsccl_serve::{ServeConfig, Server};
use wsccl_traffic::PopLabeler;

fn main() {
    let scale = Scale::from_env();
    let ds = CityDataset::generate(&scale.dataset(CityProfile::Chengdu, 21));
    println!("training WSCCL on {} unlabeled temporal paths ...", ds.unlabeled.len());
    let rep = train_wsccl(&ds.net, &ds.unlabeled, &PopLabeler, &scale.wsccl(21));

    // Embed the trip corpus in one batched pass and index it. Ids are
    // indices into `ds.unlabeled`, so a search result maps straight back to
    // the stored trip.
    let queries: Vec<_> = ds.unlabeled.iter().map(|s| (&s.path, s.departure)).collect();
    let corpus: Vec<Vec<f32>> = rep.embed_batch(&queries).iter().map(|v| to_f32(v)).collect();
    let ids: Vec<u64> = (0..corpus.len() as u64).collect();
    let dim = corpus[0].len();
    let index = AnnIndex::build(dim, &ids, &corpus, &AnnConfig::default());
    println!(
        "indexed {} trips (dim {dim}) into {} IVF lists, mean scan fraction {:.2}",
        corpus.len(),
        index.n_lists(),
        index.mean_scan_fraction()
    );

    let server = Server::spawn(rep, ServeConfig::default());
    let client = server.client();
    client.set_index(Arc::new(index)).expect("install index");

    // Query with held-out labeled trips — paths the index never saw.
    println!("\nquery trip                     | most similar stored trips (id @ distance)");
    println!("-------------------------------+------------------------------------------");
    for t in ds.tte.iter().take(5) {
        let hits = client.knn(&t.path, t.departure, 3).expect("serve knn");
        let day = t.departure.day();
        let line = hits
            .iter()
            .map(|n| format!("#{} @ {:.3}", n.id, n.dist))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:>3} edges, day {day} {:05.2}h      | {line}",
            t.path.edges().len(),
            t.departure.hour_f()
        );
        // Every hit is a real stored trip; show the closest one's shape.
        let best = &ds.unlabeled[hits[0].id as usize];
        println!(
            "                               |   closest: {} edges departing day {} {:05.2}h",
            best.path.edges().len(),
            best.departure.day(),
            best.departure.hour_f()
        );
    }

    let stats = server.shutdown();
    println!(
        "\nserved {} knn queries ({} embedding cache hits, {} misses)",
        stats.knn_served, stats.cache.hits, stats.cache.misses
    );
}
