//! Departure-time advisor — the paper's Fig. 1 motivation as a program.
//!
//! For one origin–destination pair, estimate travel times for candidate
//! routes across departure times (weekday 6:00–20:00) and report when to
//! leave and which route to take. The trained WSCCL model runs behind a
//! `wsccl-serve` server with a gradient-boosted ETA head installed, so every
//! estimate below is one `client.eta(path, departure)` call: batched f32
//! forward pass on miss, LRU path-embedding cache on repeat.
//!
//! Run with:
//! ```sh
//! cargo run --release -p wsccl-bench --example departure_time_advisor
//! ```

use wsccl_bench::Scale;
use wsccl_core::train_wsccl;
use wsccl_datagen::CityDataset;
use wsccl_downstream::{EtaRegression, Task};
use wsccl_roadnet::yen::k_shortest_paths;
use wsccl_roadnet::{CityProfile, NodeId};
use wsccl_serve::{ServeConfig, Server};
use wsccl_traffic::{PopLabeler, SimTime};

fn main() {
    let scale = Scale::from_env();
    let ds = CityDataset::generate(&scale.dataset(CityProfile::Chengdu, 21));
    println!("training WSCCL on {} unlabeled temporal paths ...", ds.unlabeled.len());
    let rep = train_wsccl(&ds.net, &ds.unlabeled, &PopLabeler, &scale.wsccl(21));

    // Fit a travel-time head on the labeled examples (one batched embed
    // pass) via the EtaRegression task, then serve model + head together.
    let queries: Vec<_> = ds.tte.iter().map(|t| (&t.path, t.departure)).collect();
    let x = rep.embed_batch(&queries);
    let y: Vec<f64> = ds.tte.iter().map(|t| t.travel_time).collect();
    let head = EtaRegression::default().fit(&x, &y);

    let server = Server::spawn(rep, ServeConfig::default());
    let client = server.client();
    client.set_eta_head(head).expect("install ETA head");

    // An OD pair with a few route options.
    let (src, dst) = (NodeId(0), NodeId(200));
    let routes = k_shortest_paths(&ds.net, src, dst, 3, &|e| ds.net.edge(e).length);
    assert!(!routes.is_empty(), "no route between the chosen endpoints");
    println!(
        "\n{} candidate routes from {:?} to {:?} (lengths: {})",
        routes.len(),
        src,
        dst,
        routes
            .iter()
            .map(|r| format!("{:.1} km", r.length(&ds.net) / 1000.0))
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!("\nhour  | estimated minutes per route | best");
    println!("------+-----------------------------+------");
    let mut best_overall = (f64::INFINITY, 0u32, 0usize);
    for hour in 6..=20u32 {
        let t = SimTime::from_hm(1, hour, 0); // Tuesday
        let etas: Vec<f64> =
            routes.iter().map(|r| client.eta(r, t).expect("serve eta") / 60.0).collect();
        let (best_ix, best_eta) = etas
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, &v)| (i, v))
            .expect("non-empty");
        if best_eta < best_overall.0 {
            best_overall = (best_eta, hour, best_ix);
        }
        println!(
            "{hour:>5} | {}            | route {}",
            etas.iter().map(|e| format!("{e:>6.1}")).collect::<Vec<_>>().join("  "),
            best_ix + 1
        );
    }
    println!(
        "\nadvice: depart around {:02}:00 via route {} (≈ {:.1} min)",
        best_overall.1,
        best_overall.2 + 1,
        best_overall.0
    );

    let stats = server.shutdown();
    println!(
        "served {} ETA requests ({} cache hits, {} misses)",
        stats.served, stats.cache.hits, stats.cache.misses
    );
}
