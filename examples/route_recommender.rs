//! Route recommender: train WSCCL, fit a recommendation head on historical
//! route choices, then recommend routes for unseen origin–destination queries
//! and measure how often the recommendation matches the route a driver
//! actually took (the paper's path-recommendation task, §VII-A.2c).
//!
//! Run with:
//! ```sh
//! cargo run --release -p wsccl-bench --example route_recommender
//! ```

use wsccl_bench::Scale;
use wsccl_core::{train_wsccl, PathRepresenter};
use wsccl_datagen::{train_test_split, CityDataset};
use wsccl_downstream::{GbClassifier, GbConfig};
use wsccl_roadnet::CityProfile;
use wsccl_traffic::{PopLabeler, WeakLabel, WeakLabeler};

fn main() {
    let scale = Scale::from_env();
    let ds = CityDataset::generate(&scale.dataset(CityProfile::Harbin, 5));
    println!(
        "training WSCCL on {} unlabeled temporal paths ({} candidate groups for recommendation)",
        ds.unlabeled.len(),
        ds.groups.len()
    );
    let rep = train_wsccl(&ds.net, &ds.unlabeled, &PopLabeler, &scale.wsccl(5));

    // Fit the recommendation head on historical choices (train groups).
    let (train_groups, test_groups) = train_test_split(ds.groups.len(), 0.8, 99);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for &gi in &train_groups {
        let g = &ds.groups[gi];
        for (p, &label) in g.candidates.iter().zip(&g.labels) {
            x.push(rep.represent(&ds.net, p, g.departure));
            y.push(label);
        }
    }
    let head = GbClassifier::fit(&x, &y, &GbConfig::default());

    // Recommend for unseen queries: pick the candidate with the highest
    // predicted probability of being the driver's choice.
    let mut hits = 0usize;
    let mut peak_hits = 0usize;
    let mut peak_total = 0usize;
    for &gi in &test_groups {
        let g = &ds.groups[gi];
        let best = g
            .candidates
            .iter()
            .enumerate()
            .map(|(i, p)| (i, head.predict_proba(&rep.represent(&ds.net, p, g.departure))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty group");
        let hit = g.labels[best];
        hits += hit as usize;
        if PopLabeler.label(g.departure) != WeakLabel::OffPeak {
            peak_total += 1;
            peak_hits += hit as usize;
        }
    }
    println!(
        "\nrecommended the driver's actual route for {hits}/{} unseen queries ({:.0}%)",
        test_groups.len(),
        100.0 * hits as f64 / test_groups.len() as f64
    );
    if peak_total > 0 {
        println!(
            "during peak hours: {peak_hits}/{peak_total} ({:.0}%)",
            100.0 * peak_hits as f64 / peak_total as f64
        );
    }
    let random_baseline: f64 =
        test_groups.iter().map(|&gi| 1.0 / ds.groups[gi].candidates.len() as f64).sum::<f64>()
            / test_groups.len() as f64;
    println!("random-guess baseline: {:.0}%", 100.0 * random_baseline);
}
