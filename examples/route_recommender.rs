//! Route recommender: train WSCCL, stand up a `wsccl-serve` embedding
//! server, fit a recommendation head on historical route choices, then
//! recommend routes for unseen origin–destination queries and measure how
//! often the recommendation matches the route a driver actually took (the
//! paper's path-recommendation task, §VII-A.2c).
//!
//! All representations are fetched through the serve API: concurrent client
//! threads hammer the server, which coalesces their requests into batched
//! f32 forward passes and answers repeats from the LRU path-embedding cache.
//!
//! Run with:
//! ```sh
//! cargo run --release -p wsccl-bench --example route_recommender
//! ```

use wsccl_bench::Scale;
use wsccl_core::train_wsccl;
use wsccl_datagen::{train_test_split, CityDataset};
use wsccl_downstream::{PathClassification, Task};
use wsccl_roadnet::CityProfile;
use wsccl_serve::{ServeConfig, Server};
use wsccl_traffic::{PopLabeler, WeakLabel, WeakLabeler};

fn main() {
    let scale = Scale::from_env();
    let ds = CityDataset::generate(&scale.dataset(CityProfile::Harbin, 5));
    println!(
        "training WSCCL on {} unlabeled temporal paths ({} candidate groups for recommendation)",
        ds.unlabeled.len(),
        ds.groups.len()
    );
    let rep = train_wsccl(&ds.net, &ds.unlabeled, &PopLabeler, &scale.wsccl(5));

    // Serve the trained model; every representation below comes from here.
    let server = Server::spawn(rep, ServeConfig::default());

    // Fit the recommendation head on historical choices (train groups),
    // fetching embeddings through concurrent serve clients so the server
    // batches them.
    let (train_groups, test_groups) = train_test_split(ds.groups.len(), 0.8, 99);
    let mut x = Vec::new();
    let mut y = Vec::new();
    {
        let queries: Vec<_> = train_groups
            .iter()
            .flat_map(|&gi| {
                let g = &ds.groups[gi];
                g.candidates.iter().zip(&g.labels).map(|(p, &l)| (p, g.departure, l))
            })
            .collect();
        let workers = 4;
        let chunk = queries.len().div_ceil(workers);
        let embedded: Vec<Vec<(Vec<f64>, bool)>> = std::thread::scope(|s| {
            queries
                .chunks(chunk.max(1))
                .map(|part| {
                    let client = server.client();
                    s.spawn(move || {
                        part.iter()
                            .map(|&(p, t, l)| ((*client.embed(p, t).expect("serve")).clone(), l))
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("embed worker"))
                .collect()
        });
        for (e, l) in embedded.into_iter().flatten() {
            x.push(e);
            y.push(l);
        }
    }
    let task = PathClassification::default();
    let head = task.fit(&x, &y);

    // Recommend for unseen queries: pick the candidate with the highest
    // predicted probability of being the driver's choice.
    let client = server.client();
    let mut hits = 0usize;
    let mut peak_hits = 0usize;
    let mut peak_total = 0usize;
    for &gi in &test_groups {
        let g = &ds.groups[gi];
        let best = g
            .candidates
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let emb = client.embed(p, g.departure).expect("serve");
                (i, task.predict(&head, &emb))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty group");
        let hit = g.labels[best];
        hits += hit as usize;
        if PopLabeler.label(g.departure) != WeakLabel::OffPeak {
            peak_total += 1;
            peak_hits += hit as usize;
        }
    }
    println!(
        "\nrecommended the driver's actual route for {hits}/{} unseen queries ({:.0}%)",
        test_groups.len(),
        100.0 * hits as f64 / test_groups.len() as f64
    );
    if peak_total > 0 {
        println!(
            "during peak hours: {peak_hits}/{peak_total} ({:.0}%)",
            100.0 * peak_hits as f64 / peak_total as f64
        );
    }
    let random_baseline: f64 =
        test_groups.iter().map(|&gi| 1.0 / ds.groups[gi].candidates.len() as f64).sum::<f64>()
            / test_groups.len() as f64;
    println!("random-guess baseline: {:.0}%", 100.0 * random_baseline);

    let stats = server.shutdown();
    println!(
        "\nserved {} embed requests in {} batches (max batch {}); cache {} hits / {} misses",
        stats.served, stats.batches, stats.max_batch_seen, stats.cache.hits, stats.cache.misses
    );
}
