//! Quickstart: generate a synthetic city, train WSCCL on unlabeled temporal
//! paths with peak/off-peak weak labels, and use the learned representations
//! for travel-time estimation.
//!
//! Run with:
//! ```sh
//! cargo run --release -p wsccl-bench --example quickstart
//! ```

use wsccl_bench::eval::{evaluate_ranking, evaluate_tte};
use wsccl_bench::Scale;
use wsccl_core::{train_wsccl, PathRepresenter};
use wsccl_datagen::CityDataset;
use wsccl_roadnet::CityProfile;
use wsccl_traffic::{PopLabeler, SimTime};

fn main() {
    // 1. A synthetic city with traffic: road network, congestion model,
    //    unlabeled temporal paths, and labeled downstream tasks.
    let scale = Scale::from_env();
    let ds = CityDataset::generate(&scale.dataset(CityProfile::Aalborg, 7));
    let stats = ds.statistics();
    println!(
        "city {} | {} nodes, {} edges | {} unlabeled paths, {} labeled travel times",
        stats.name, stats.num_nodes, stats.num_edges, stats.unlabeled_paths, stats.labeled_tte
    );

    // 2. Train WSCCL: weakly-supervised contrastive learning over the
    //    unlabeled pool, guided by a learned curriculum. No task labels used.
    println!("training WSCCL (weak labels: peak/off-peak) ...");
    let rep = train_wsccl(&ds.net, &ds.unlabeled, &PopLabeler, &scale.wsccl(7));

    // 3. Inspect a representation: the same path at peak vs off-peak.
    let sample = &ds.unlabeled[0];
    let peak = rep.represent(&ds.net, &sample.path, SimTime::from_hm(1, 8, 0));
    let off = rep.represent(&ds.net, &sample.path, SimTime::from_hm(1, 13, 0));
    let cos = {
        let dot: f64 = peak.iter().zip(&off).map(|(a, b)| a * b).sum();
        let na: f64 = peak.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = off.iter().map(|v| v * v).sum::<f64>().sqrt();
        dot / (na * nb)
    };
    println!("TPR dim = {}; cosine(same path @ 8:00 vs @ 13:00) = {cos:.4}", rep.dim());

    // 4. Downstream: frozen representations + gradient-boosted heads.
    let tte = evaluate_tte(&rep, &ds);
    println!(
        "travel time estimation: MAE {:.1} s | MARE {:.3} | MAPE {:.1}%",
        tte.mae, tte.mare, tte.mape
    );
    let rank = evaluate_ranking(&rep, &ds);
    println!(
        "path ranking:           MAE {:.3}   | tau {:.3}  | rho {:.3}",
        rank.mae, rank.tau, rank.rho
    );
}
