//! Property-based coverage for the supervised baselines (PathRank, DeepGTT,
//! HMTRL): for arbitrary in-distribution paths and departure times, a trained
//! model's representation must have the advertised width, be finite, and be
//! bit-for-bit deterministic across repeated calls.
//!
//! Training is the expensive part, so each model is trained exactly once (at
//! tiny scale) in a shared fixture and every proptest case only runs forward
//! passes against it.

use std::sync::OnceLock;

use proptest::prelude::*;

use wsccl_baselines::deepgtt::{DeepGtt, DeepGttConfig};
use wsccl_baselines::hmtrl::{Hmtrl, HmtrlConfig};
use wsccl_baselines::pathrank::{PathRank, PathRankConfig, RegressionExample};
use wsccl_baselines::FnRepresenter;
use wsccl_core::PathRepresenter;
use wsccl_datagen::{CityDataset, DatasetConfig};
use wsccl_roadnet::CityProfile;
use wsccl_traffic::SimTime;

struct Fixture {
    ds: CityDataset,
    pathrank: FnRepresenter,
    deepgtt: FnRepresenter,
    hmtrl: FnRepresenter,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 23));
        let tte: Vec<RegressionExample> = ds
            .tte
            .iter()
            .take(10)
            .map(|t| RegressionExample {
                path: t.path.clone(),
                departure: t.departure,
                target: t.travel_time,
            })
            .collect();
        let pathrank =
            PathRank::train(&ds.net, &tte, &PathRankConfig { epochs: 1, ..Default::default() })
                .into_representer("PathRank");
        let deepgtt =
            DeepGtt::train(&ds.net, &tte, &DeepGttConfig { epochs: 1, ..Default::default() })
                .into_representer("DeepGTT");
        let hmtrl =
            Hmtrl::train(&ds.net, &tte, &[], &HmtrlConfig { epochs: 1, ..Default::default() })
                .into_representer("HMTRL");
        Fixture { ds, pathrank, deepgtt, hmtrl }
    })
}

/// Shape + finiteness + repeat-call determinism for one representer.
fn check_representer(rep: &FnRepresenter, sample: usize, day: u32, hour: u32, minute: u32) {
    let fx = fixture();
    let s = &fx.ds.unlabeled[sample % fx.ds.unlabeled.len()];
    let dep = SimTime::from_hm(day, hour, minute);
    let a = rep.represent(&fx.ds.net, &s.path, dep);
    prop_assert_eq!(a.len(), rep.dim(), "representation width must match dim()");
    prop_assert!(a.iter().all(|x| x.is_finite()), "representation must be finite: {:?}", a);
    let b = rep.represent(&fx.ds.net, &s.path, dep);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    prop_assert_eq!(bits(&a), bits(&b), "repeat calls must be bit-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pathrank_forward_shape_and_determinism(
        sample in 0usize..64, day in 0u32..7, hour in 0u32..24, minute in 0u32..60
    ) {
        check_representer(&fixture().pathrank, sample, day, hour, minute);
    }

    #[test]
    fn deepgtt_forward_shape_and_determinism(
        sample in 0usize..64, day in 0u32..7, hour in 0u32..24, minute in 0u32..60
    ) {
        check_representer(&fixture().deepgtt, sample, day, hour, minute);
    }

    #[test]
    fn hmtrl_forward_shape_and_determinism(
        sample in 0usize..64, day in 0u32..7, hour in 0u32..24, minute in 0u32..60
    ) {
        check_representer(&fixture().hmtrl, sample, day, hour, minute);
    }
}
