//! Deep Graph InfoMax (Velickovic et al., ICLR 2019).
//!
//! A one-layer mean-aggregation graph encoder produces node embeddings; a
//! bilinear discriminator is trained to tell true embeddings from corrupted
//! ones (row-shuffled features) relative to the sigmoid mean summary vector.
//! Path representation = mean over edges of `[z_from, z_to]`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wsccl_nn::layers::Linear;
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::RoadNetwork;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{EdgeFeaturizer, FnRepresenter};

/// Raw node features: mean of incident edge features plus normalized degree.
pub(crate) fn node_features(net: &RoadNetwork) -> Tensor {
    let ef = EdgeFeaturizer::new(net);
    let dim = ef.dim() + 1;
    let n = net.num_nodes();
    let mut x = Tensor::zeros(n, dim);
    for v in 0..n {
        let node = wsccl_roadnet::NodeId(v as u32);
        let incident: Vec<_> =
            net.out_edges(node).iter().chain(net.in_edges(node)).copied().collect();
        if !incident.is_empty() {
            for &e in &incident {
                for (c, f) in ef.edge(e).iter().enumerate() {
                    x.set(v, c, x.get(v, c) + f / incident.len() as f64);
                }
            }
        }
        x.set(v, dim - 1, (incident.len() as f64 / 8.0).min(2.0));
    }
    x
}

/// Row-normalized adjacency (with self loops) as a dense tensor.
pub(crate) fn mean_adjacency(net: &RoadNetwork) -> Tensor {
    let n = net.num_nodes();
    let mut a = Tensor::zeros(n, n);
    for e in net.edges() {
        a.set(e.from.index(), e.to.index(), 1.0);
        a.set(e.to.index(), e.from.index(), 1.0);
    }
    for v in 0..n {
        a.set(v, v, 1.0);
    }
    for v in 0..n {
        let row_sum: f64 = a.row_slice(v).iter().sum();
        let inv = 1.0 / row_sum;
        for x in a.row_slice_mut(v) {
            *x *= inv;
        }
    }
    a
}

/// DGI training configuration.
pub struct DgiConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    pub seed: u64,
}

impl Default for DgiConfig {
    fn default() -> Self {
        Self { dim: 16, epochs: 40, lr: 1e-2, seed: 0 }
    }
}

fn encode(g: &mut Graph<'_>, enc: &Linear, adj: NodeId, feats: NodeId) -> NodeId {
    let agg = g.matmul(adj, feats);
    let h = enc.forward(g, agg);
    g.relu(h)
}

/// One full-graph InfoMax step per epoch, as seen by the engine. The batch is
/// the corruption permutation, drawn from the engine RNG when the epoch's
/// batch list is built.
struct DgiTrainable<'a> {
    enc: &'a Linear,
    disc: &'a Linear,
    x: &'a Tensor,
    adj: &'a Tensor,
    n: usize,
}

impl Trainable for DgiTrainable<'_> {
    type Batch = Vec<usize>;

    fn epoch_batches(&mut self, _epoch: u64, rng: &mut StdRng) -> Vec<Vec<usize>> {
        // One corruption per epoch: shuffle feature rows.
        let mut perm: Vec<usize> = (0..self.n).collect();
        perm.shuffle(rng);
        vec![perm]
    }

    fn build_loss(
        &self,
        g: &mut Graph<'_>,
        perm: &Vec<usize>,
        _rng: &mut StdRng,
    ) -> Option<NodeId> {
        let (n, in_dim) = (self.n, self.x.cols());
        let mut xc = Tensor::zeros(n, in_dim);
        for (r, &p) in perm.iter().enumerate() {
            xc.row_slice_mut(r).copy_from_slice(self.x.row_slice(p));
        }
        let adj_n = g.input(self.adj.clone());
        let x_n = g.input(self.x.clone());
        let xc_n = g.input(xc);
        let z = encode(g, self.enc, adj_n, x_n);
        let zc = encode(g, self.enc, adj_n, xc_n);
        // Summary s = σ(mean(z)).
        let mean_z = g.mean_rows(z);
        let s = g.sigmoid(mean_z);
        // (1, dim)
        let ws = self.disc.forward(g, s);
        // Scores: z · wsᵀ → (n, 1); BCE with labels 1 (real) / 0 (corrupt).
        let pos_scores = g.matmul_nt(z, ws);
        let neg_scores = g.matmul_nt(zc, ws);
        // -log σ(pos): softplus(-pos) = -ln(σ(pos)).
        let pos_sig = g.sigmoid(pos_scores);
        let pos_ln = g.ln(pos_sig);
        let neg_sig_arg = g.scale(neg_scores, -1.0);
        let neg_sig = g.sigmoid(neg_sig_arg);
        let neg_ln = g.ln(neg_sig);
        let pos_sum = g.sum_all(pos_ln);
        let neg_sum = g.sum_all(neg_ln);
        let total = g.add(pos_sum, neg_sum);
        Some(g.scale(total, -1.0 / (2 * n) as f64))
    }
}

/// Train DGI and return the path representer.
pub fn train(net: &RoadNetwork, cfg: &DgiConfig) -> FnRepresenter {
    train_observed(net, cfg, &mut NoopObserver)
}

/// [`train`] with a [`TrainObserver`] receiving per-step records.
pub fn train_observed(
    net: &RoadNetwork,
    cfg: &DgiConfig,
    observer: &mut dyn TrainObserver,
) -> FnRepresenter {
    let x = node_features(net);
    let adj = mean_adjacency(net);
    let in_dim = x.cols();
    let n = net.num_nodes();

    let mut params = Parameters::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD61);
    let enc = Linear::new(&mut params, &mut rng, "dgi.enc", in_dim, cfg.dim);
    let disc = Linear::new_no_bias(&mut params, &mut rng, "dgi.disc", cfg.dim, cfg.dim);

    let mut trainer = Trainer::new(TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed));
    let mut t = DgiTrainable { enc: &enc, disc: &disc, x: &x, adj: &adj, n };
    trainer.run(&mut t, &mut params, cfg.epochs, observer);

    // Freeze final node embeddings.
    let z = {
        let mut g = Graph::new(&params);
        let adj_n = g.input(adj.clone());
        let x_n = g.input(x.clone());
        let z = encode(&mut g, &enc, adj_n, x_n);
        g.value(z).clone()
    };
    let dim = 2 * cfg.dim;
    let z_rows: Vec<Vec<f64>> = (0..n).map(|v| z.row_slice(v).to_vec()).collect();
    FnRepresenter::new("DGI", dim, move |net, path, _dep| {
        let mut acc = vec![0.0; dim];
        for &e in path.edges() {
            let edge = net.edge(e);
            for (a, v) in
                acc.iter_mut().zip(z_rows[edge.from.index()].iter().chain(&z_rows[edge.to.index()]))
            {
                *a += v;
            }
        }
        let inv = 1.0 / path.len() as f64;
        acc.iter_mut().for_each(|v| *v *= inv);
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_roadnet::{CityProfile, Path};
    use wsccl_traffic::SimTime;

    #[test]
    fn adjacency_rows_are_stochastic() {
        let net = CityProfile::Aalborg.generate(2);
        let a = mean_adjacency(&net);
        for v in 0..net.num_nodes() {
            let s: f64 = a.row_slice(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn trains_and_represents() {
        let net = CityProfile::Aalborg.generate(2);
        let rep = train(&net, &DgiConfig { epochs: 5, ..Default::default() });
        let path = Path::new_unchecked(vec![net.out_edges(wsccl_roadnet::NodeId(0))[0]]);
        let v = rep.represent(&net, &path, SimTime::from_hm(0, 8, 0));
        assert_eq!(v.len(), 32);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
