//! Graphical Mutual Information maximization (Peng et al., WWW 2020).
//!
//! Node embeddings are trained so that a bilinear critic scores a node's
//! embedding high against its *own neighbors'* raw features (feature-level MI)
//! and low against random nodes' features — a first-order simplification of
//! GMI's FMI term, which is the dominant term in the original.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_nn::layers::Linear;
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::RoadNetwork;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::FnRepresenter;
use crate::dgi::{mean_adjacency, node_features};

/// GMI training configuration.
pub struct GmiConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    /// (positive, negative) node pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    pub seed: u64,
}

impl Default for GmiConfig {
    fn default() -> Self {
        Self { dim: 16, epochs: 40, lr: 1e-2, pairs_per_epoch: 256, seed: 0 }
    }
}

/// One FMI step per epoch, as seen by the engine. Pair sampling happens
/// inside `build_loss` from the per-step shard RNG.
struct GmiTrainable<'a> {
    enc: &'a Linear,
    critic: &'a Linear,
    x: &'a Tensor,
    adj: &'a Tensor,
    neighbors: &'a [Vec<usize>],
    n: usize,
    pairs: usize,
}

impl Trainable for GmiTrainable<'_> {
    type Batch = ();

    fn epoch_batches(&mut self, _epoch: u64, _rng: &mut StdRng) -> Vec<()> {
        vec![()]
    }

    fn build_loss(&self, g: &mut Graph<'_>, _batch: &(), rng: &mut StdRng) -> Option<NodeId> {
        let n = self.n;
        let adj_n = g.input(self.adj.clone());
        let x_n = g.input(self.x.clone());
        let agg = g.matmul(adj_n, x_n);
        let h = self.enc.forward(g, agg);
        let z = g.relu(h);
        // Critic projections of all embeddings: (n, in_dim).
        let proj = self.critic.forward(g, z);

        let mut terms = Vec::with_capacity(self.pairs);
        for _ in 0..self.pairs {
            let v = rng.random_range(0..n);
            if self.neighbors[v].is_empty() {
                continue;
            }
            let pos = self.neighbors[v][rng.random_range(0..self.neighbors[v].len())];
            let neg = rng.random_range(0..n);
            let xp = g.input(Tensor::row(self.x.row_slice(pos).to_vec()));
            let xn = g.input(Tensor::row(self.x.row_slice(neg).to_vec()));
            // Extract row v of proj with a one-hot left multiplication.
            let mut sel = Tensor::zeros(1, n);
            sel.set(0, v, 1.0);
            let sel_n = g.input(sel);
            let pv = g.matmul(sel_n, proj); // (1, in_dim)
            let pos_score = g.dot(pv, xp);
            let neg_score = g.dot(pv, xn);
            let pos_sig = g.sigmoid(pos_score);
            let pos_ln = g.ln(pos_sig);
            let neg_arg = g.scale(neg_score, -1.0);
            let neg_sig = g.sigmoid(neg_arg);
            let neg_ln = g.ln(neg_sig);
            let t = g.add(pos_ln, neg_ln);
            terms.push(t);
        }
        if terms.is_empty() {
            return None;
        }
        let mean = g.mean_scalars(&terms);
        Some(g.scale(mean, -1.0))
    }
}

/// Train GMI and return the path representer.
pub fn train(net: &RoadNetwork, cfg: &GmiConfig) -> FnRepresenter {
    train_observed(net, cfg, &mut NoopObserver)
}

/// [`train`] with a [`TrainObserver`] receiving per-step records.
pub fn train_observed(
    net: &RoadNetwork,
    cfg: &GmiConfig,
    observer: &mut dyn TrainObserver,
) -> FnRepresenter {
    let x = node_features(net);
    let adj = mean_adjacency(net);
    let in_dim = x.cols();
    let n = net.num_nodes();

    let mut params = Parameters::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6B1);
    let enc = Linear::new(&mut params, &mut rng, "gmi.enc", in_dim, cfg.dim);
    let critic = Linear::new_no_bias(&mut params, &mut rng, "gmi.critic", cfg.dim, in_dim);

    // Neighbor lists for positive sampling.
    let neighbors: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            let node = wsccl_roadnet::NodeId(v as u32);
            net.out_edges(node)
                .iter()
                .map(|&e| net.edge(e).to.index())
                .chain(net.in_edges(node).iter().map(|&e| net.edge(e).from.index()))
                .collect()
        })
        .collect();

    let mut trainer = Trainer::new(TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed));
    let mut t = GmiTrainable {
        enc: &enc,
        critic: &critic,
        x: &x,
        adj: &adj,
        neighbors: &neighbors,
        n,
        pairs: cfg.pairs_per_epoch,
    };
    trainer.run(&mut t, &mut params, cfg.epochs, observer);

    // Freeze final embeddings.
    let z = {
        let mut g = Graph::new(&params);
        let adj_n = g.input(adj.clone());
        let x_n = g.input(x.clone());
        let agg = g.matmul(adj_n, x_n);
        let h = enc.forward(&mut g, agg);
        let z = g.relu(h);
        g.value(z).clone()
    };
    let dim = 2 * cfg.dim;
    let z_rows: Vec<Vec<f64>> = (0..n).map(|v| z.row_slice(v).to_vec()).collect();
    FnRepresenter::new("GMI", dim, move |net, path, _dep| {
        let mut acc = vec![0.0; dim];
        for &e in path.edges() {
            let edge = net.edge(e);
            for (a, v) in
                acc.iter_mut().zip(z_rows[edge.from.index()].iter().chain(&z_rows[edge.to.index()]))
            {
                *a += v;
            }
        }
        let inv = 1.0 / path.len() as f64;
        acc.iter_mut().for_each(|v| *v *= inv);
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_roadnet::{CityProfile, Path};
    use wsccl_traffic::SimTime;

    #[test]
    fn trains_and_represents() {
        let net = CityProfile::Aalborg.generate(3);
        let rep = train(&net, &GmiConfig { epochs: 3, pairs_per_epoch: 64, ..Default::default() });
        let path = Path::new_unchecked(vec![net.out_edges(wsccl_roadnet::NodeId(0))[0]]);
        let v = rep.represent(&net, &path, SimTime::from_hm(0, 9, 0));
        assert_eq!(v.len(), 32);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
