//! GCN (Defferrard et al., NIPS 2016) and STGCN (Yu et al., IJCAI 2018)
//! baselines: per-edge travel-time predictors whose path estimate is the sum
//! of edge estimates (§VII-A.3).
//!
//! Both run a two-layer mean-aggregation graph convolution over the road
//! network's intersection graph and predict each edge's time from its
//! endpoint embeddings plus raw edge features; STGCN additionally conditions
//! on departure-time features (its temporal component). Neither produces a
//! generic representation, so — like the paper — they only participate in the
//! travel-time task, via [`crate::common::TravelTimePredictor`].

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use wsccl_nn::layers::Linear;
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::SimTime;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{time_features, EdgeFeaturizer, TravelTimePredictor, TIME_DIM};
use crate::dgi::{mean_adjacency, node_features};
use crate::pathrank::RegressionExample;

/// Shared configuration for GCN and STGCN.
pub struct GcnConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    pub batch: usize,
    /// If true, condition edge predictions on departure time (STGCN).
    pub temporal: bool,
    /// Max L2 norm of each step's gradient.
    pub grad_clip: f64,
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        Self { dim: 16, epochs: 8, lr: 3e-3, batch: 8, temporal: false, grad_clip: 5.0, seed: 0 }
    }
}

/// Trained (ST)GCN travel-time predictor.
pub struct GcnPredictor {
    params: Parameters,
    w1: Linear,
    w2: Linear,
    edge_mlp: Linear,
    edge_head: Linear,
    ef: EdgeFeaturizer,
    x: Tensor,
    adj: Tensor,
    temporal: bool,
    target_scale: f64,
    name: &'static str,
}

impl GcnPredictor {
    /// Two-layer mean-aggregation GCN node embeddings.
    fn node_embeddings(&self, g: &mut Graph<'_>) -> NodeId {
        let adj = g.input(self.adj.clone());
        let x = g.input(self.x.clone());
        let a1 = g.matmul(adj, x);
        let h1 = self.w1.forward(g, a1);
        let h1 = g.relu(h1);
        let a2 = g.matmul(adj, h1);
        let h2 = self.w2.forward(g, a2);
        g.relu(h2)
    }

    /// Positive per-edge time estimate.
    fn edge_time(
        &self,
        g: &mut Graph<'_>,
        z: NodeId,
        e: wsccl_roadnet::EdgeId,
        net: &RoadNetwork,
        tf: &[f64],
    ) -> NodeId {
        let n = net.num_nodes();
        let edge = net.edge(e);
        let mut sel = Tensor::zeros(1, n);
        sel.set(0, edge.from.index(), 0.5);
        sel.set(0, edge.to.index(), 0.5);
        let sel_n = g.input(sel);
        let z_pair = g.matmul(sel_n, z); // mean of endpoint embeddings
        let mut feat = self.ef.edge(e).to_vec();
        if self.temporal {
            feat.extend_from_slice(tf);
        }
        let f_n = g.input(Tensor::row(feat));
        let joined = g.concat_cols(&[z_pair, f_n]);
        let h = self.edge_mlp.forward(g, joined);
        let h = g.relu(h);
        let raw = self.edge_head.forward(g, h);
        // softplus: −ln σ(−raw), strictly positive.
        let neg = g.scale(raw, -1.0);
        let sig = g.sigmoid(neg);
        let lns = g.ln(sig);
        g.scale(lns, -self.target_scale / 10.0)
    }

    fn path_time(
        &self,
        g: &mut Graph<'_>,
        z: NodeId,
        path: &Path,
        net: &RoadNetwork,
        t: SimTime,
    ) -> NodeId {
        let tf = time_features(t);
        let terms: Vec<NodeId> =
            path.edges().iter().map(|&e| self.edge_time(g, z, e, net, &tf)).collect();
        let stacked = g.concat_rows(&terms);
        g.sum_all(stacked)
    }

    /// Train on labeled travel times.
    pub fn train(net: &RoadNetwork, examples: &[RegressionExample], cfg: &GcnConfig) -> Self {
        Self::train_observed(net, examples, cfg, &mut NoopObserver)
    }

    /// [`Self::train`] with a [`TrainObserver`] receiving per-step records.
    pub fn train_observed(
        net: &RoadNetwork,
        examples: &[RegressionExample],
        cfg: &GcnConfig,
        observer: &mut dyn TrainObserver,
    ) -> Self {
        assert!(!examples.is_empty(), "GCN needs labeled examples");
        let x = node_features(net);
        let adj = mean_adjacency(net);
        let in_dim = x.cols();
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6C4);
        let name = if cfg.temporal { "STGCN" } else { "GCN" };
        let w1 = Linear::new(&mut params, &mut rng, "gcn.w1", in_dim, cfg.dim);
        let w2 = Linear::new(&mut params, &mut rng, "gcn.w2", cfg.dim, cfg.dim);
        let edge_in = cfg.dim + EdgeFeaturizer::DIM + if cfg.temporal { TIME_DIM } else { 0 };
        let edge_mlp = Linear::new(&mut params, &mut rng, "gcn.emlp", edge_in, cfg.dim);
        let edge_head = Linear::new(&mut params, &mut rng, "gcn.ehead", cfg.dim, 1);
        let target_scale =
            (examples.iter().map(|e| e.target).sum::<f64>() / examples.len() as f64).max(1e-6);
        let mut model = Self {
            params,
            w1,
            w2,
            edge_mlp,
            edge_head,
            ef: EdgeFeaturizer::new(net),
            x,
            adj,
            temporal: cfg.temporal,
            target_scale,
            name,
        };
        let mut params = std::mem::take(&mut model.params);

        let spec = TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed).with_grad_clip(cfg.grad_clip);
        let mut trainer = Trainer::new(spec);
        let mut t = GcnTrainable { model: &model, net, examples, batch: cfg.batch };
        trainer.run(&mut t, &mut params, cfg.epochs, observer);
        model.params = params;
        model
    }

    /// Predict a path's travel time.
    pub fn predict_time(&mut self, net: &RoadNetwork, path: &Path, departure: SimTime) -> f64 {
        let params = std::mem::take(&mut self.params);
        let v = {
            let mut g = Graph::new(&params);
            let z = self.node_embeddings(&mut g);
            let pred = self.path_time(&mut g, z, path, net, departure);
            g.value(pred).item()
        };
        self.params = params;
        v
    }
}

/// Mini-batch travel-time regression over shared GCN node embeddings, as
/// seen by the engine. The model's `params` field is empty for the duration
/// of training (the engine owns the live copy); the forward helpers never
/// read it.
struct GcnTrainable<'a> {
    model: &'a GcnPredictor,
    net: &'a RoadNetwork,
    examples: &'a [RegressionExample],
    batch: usize,
}

impl Trainable for GcnTrainable<'_> {
    type Batch = Vec<usize>;

    fn epoch_batches(&mut self, _epoch: u64, rng: &mut StdRng) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.examples.len()).collect();
        order.shuffle(rng);
        order.chunks(self.batch.max(1)).map(|c| c.to_vec()).collect()
    }

    fn build_loss(
        &self,
        g: &mut Graph<'_>,
        batch: &Vec<usize>,
        _rng: &mut StdRng,
    ) -> Option<NodeId> {
        if batch.is_empty() {
            return None;
        }
        // Node embeddings computed once per step, reused by paths.
        let z = self.model.node_embeddings(g);
        let mut losses = Vec::with_capacity(batch.len());
        for &i in batch {
            let ex = &self.examples[i];
            let pred = self.model.path_time(g, z, &ex.path, self.net, ex.departure);
            let scaled = g.scale(pred, 1.0 / self.model.target_scale);
            let target = Tensor::scalar(ex.target / self.model.target_scale);
            losses.push(g.mse_to_const(scaled, &target));
        }
        Some(g.mean_scalars(&losses))
    }
}

/// Thread-safe predictor wrapper.
pub struct GcnTtePredictor(parking_lot::Mutex<GcnPredictor>);

impl GcnTtePredictor {
    pub fn new(inner: GcnPredictor) -> Self {
        Self(parking_lot::Mutex::new(inner))
    }
}

impl TravelTimePredictor for GcnTtePredictor {
    fn predict(&self, net: &RoadNetwork, path: &Path, departure: SimTime) -> f64 {
        self.0.lock().predict_time(net, path, departure)
    }

    fn name(&self) -> &str {
        self.0.lock().name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;

    fn examples(ds: &CityDataset, n: usize) -> Vec<RegressionExample> {
        ds.tte
            .iter()
            .take(n)
            .map(|t| RegressionExample {
                path: t.path.clone(),
                departure: t.departure,
                target: t.travel_time,
            })
            .collect()
    }

    #[test]
    fn gcn_beats_mean_baseline_on_training_data() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 18));
        let ex = examples(&ds, 30);
        let mut model =
            GcnPredictor::train(&ds.net, &ex, &GcnConfig { epochs: 6, ..Default::default() });
        let mae: f64 = ex
            .iter()
            .map(|e| (model.predict_time(&ds.net, &e.path, e.departure) - e.target).abs())
            .sum::<f64>()
            / ex.len() as f64;
        let mean: f64 = ex.iter().map(|e| e.target).sum::<f64>() / ex.len() as f64;
        let mae_mean: f64 =
            ex.iter().map(|e| (e.target - mean).abs()).sum::<f64>() / ex.len() as f64;
        assert!(mae < mae_mean, "GCN {mae:.1} should beat mean {mae_mean:.1}");
    }

    #[test]
    fn stgcn_is_time_sensitive_and_gcn_is_not() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 18));
        let ex = examples(&ds, 15);
        let mut gcn =
            GcnPredictor::train(&ds.net, &ex, &GcnConfig { epochs: 2, ..Default::default() });
        let mut stgcn = GcnPredictor::train(
            &ds.net,
            &ex,
            &GcnConfig { epochs: 2, temporal: true, ..Default::default() },
        );
        let p = &ex[0].path;
        let t1 = SimTime::from_hm(0, 8, 0);
        let t2 = SimTime::from_hm(6, 3, 0);
        assert_eq!(gcn.predict_time(&ds.net, p, t1), gcn.predict_time(&ds.net, p, t2));
        assert_ne!(stgcn.predict_time(&ds.net, p, t1), stgcn.predict_time(&ds.net, p, t2));
    }

    #[test]
    fn predictions_are_positive() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 18));
        let ex = examples(&ds, 10);
        let mut model =
            GcnPredictor::train(&ds.net, &ex, &GcnConfig { epochs: 1, ..Default::default() });
        for e in &ex {
            assert!(model.predict_time(&ds.net, &e.path, e.departure) > 0.0);
        }
    }
}
