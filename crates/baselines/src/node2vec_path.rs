//! Node2vec baseline: unsupervised graph embeddings of the road network;
//! a path's representation is the average of its edges' representations
//! (the paper's aggregation for all graph-node baselines).
//!
//! This is the one baseline outside the `wsccl-train` engine: SGNS training
//! lives in `wsccl-graphembed` on raw arrays (no autodiff tape), so there is
//! no per-step loss node for the engine to drive or observe.

use wsccl_graphembed::{Node2VecConfig, RoadEmbeddings};
use wsccl_roadnet::{EdgeId, RoadNetwork};

use crate::common::FnRepresenter;

/// Train the Node2vec baseline.
pub fn train(net: &RoadNetwork, dim_per_node: usize, seed: u64) -> FnRepresenter {
    let cfg = Node2VecConfig { dim: dim_per_node, seed, ..Default::default() };
    let emb = RoadEmbeddings::train(net, &cfg);
    // Precompute every edge representation once.
    let edge_reprs: Vec<Vec<f64>> =
        (0..net.num_edges()).map(|i| emb.edge_embedding(net, EdgeId(i as u32))).collect();
    let dim = 2 * dim_per_node;
    FnRepresenter::new("Node2vec", dim, move |_net, path, _dep| {
        let mut acc = vec![0.0; dim];
        for &e in path.edges() {
            for (a, v) in acc.iter_mut().zip(&edge_reprs[e.index()]) {
                *a += v;
            }
        }
        let inv = 1.0 / path.len() as f64;
        acc.iter_mut().for_each(|v| *v *= inv);
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_roadnet::{CityProfile, Path};
    use wsccl_traffic::SimTime;

    #[test]
    fn representation_ignores_time_and_has_right_width() {
        let net = CityProfile::Aalborg.generate(4);
        let rep = train(&net, 8, 4);
        assert_eq!(rep.dim(), 16);
        let path = {
            let mut edges = Vec::new();
            let mut cur = wsccl_roadnet::NodeId(0);
            for _ in 0..5 {
                let e = net.out_edges(cur)[0];
                edges.push(e);
                cur = net.edge(e).to;
            }
            Path::new_unchecked(edges)
        };
        let a = rep.represent(&net, &path, SimTime::from_hm(0, 8, 0));
        let b = rep.represent(&net, &path, SimTime::from_hm(3, 22, 0));
        assert_eq!(a, b, "node2vec baseline is time-invariant by construction");
        assert_eq!(a.len(), 16);
    }
}
