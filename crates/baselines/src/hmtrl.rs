//! HMTRL (Liu et al., VLDB 2020): unified route representation learning with
//! spatio-temporal dependencies and multi-task supervision.
//!
//! Reproduction: a GRU over per-edge `[spatial features, time features]`
//! inputs, a self-attention layer capturing route-level semantic coherence,
//! mean pooling into a route representation, and one linear head per
//! supervised task. Training is multi-task when labels for both tasks are
//! provided, single-task otherwise (the Table X variants).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wsccl_nn::layers::{Gru, Linear, SelfAttention};
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::SimTime;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{time_features, EdgeFeaturizer, FnRepresenter, TIME_DIM};
use crate::pathrank::RegressionExample;

/// HMTRL configuration.
pub struct HmtrlConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Max L2 norm of each step's gradient.
    pub grad_clip: f64,
    pub seed: u64,
}

impl Default for HmtrlConfig {
    fn default() -> Self {
        Self { dim: 24, epochs: 5, lr: 3e-3, grad_clip: 5.0, seed: 0 }
    }
}

struct Standardizer {
    mean: f64,
    std: f64,
}

impl Standardizer {
    fn fit(xs: &[f64]) -> Self {
        let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len().max(1) as f64;
        Self { mean, std: var.sqrt().max(1e-6) }
    }
}

/// Trained HMTRL model.
pub struct Hmtrl {
    params: Parameters,
    gru: Gru,
    attn: SelfAttention,
    head_tte: Linear,
    head_rank: Linear,
    ef: EdgeFeaturizer,
    std_tte: Standardizer,
    std_rank: Standardizer,
    dim: usize,
}

impl Hmtrl {
    fn route_repr(&self, g: &mut Graph<'_>, path: &Path, departure: SimTime) -> NodeId {
        let tf = time_features(departure);
        let inputs: Vec<NodeId> = self
            .ef
            .path(path)
            .into_iter()
            .map(|mut f| {
                f.extend_from_slice(&tf);
                g.input(Tensor::row(f))
            })
            .collect();
        let hs = self.gru.forward(g, &inputs);
        let stacked = g.concat_rows(&hs);
        let attended = self.attn.forward(g, stacked);
        g.mean_rows(attended)
    }

    /// Train HMTRL. Either task's examples may be empty (single-task mode),
    /// but not both.
    pub fn train(
        net: &RoadNetwork,
        tte: &[RegressionExample],
        rank: &[RegressionExample],
        cfg: &HmtrlConfig,
    ) -> Self {
        Self::train_observed(net, tte, rank, cfg, &mut NoopObserver)
    }

    /// [`Self::train`] with a [`TrainObserver`] receiving per-step records.
    pub fn train_observed(
        net: &RoadNetwork,
        tte: &[RegressionExample],
        rank: &[RegressionExample],
        cfg: &HmtrlConfig,
        observer: &mut dyn TrainObserver,
    ) -> Self {
        assert!(!tte.is_empty() || !rank.is_empty(), "HMTRL needs labels for at least one task");
        let ef = EdgeFeaturizer::new(net);
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x477);
        let gru =
            Gru::new(&mut params, &mut rng, "hm.gru", EdgeFeaturizer::DIM + TIME_DIM, cfg.dim);
        let attn = SelfAttention::new(&mut params, &mut rng, "hm.attn", cfg.dim);
        let head_tte = Linear::new(&mut params, &mut rng, "hm.tte", cfg.dim, 1);
        let head_rank = Linear::new(&mut params, &mut rng, "hm.rank", cfg.dim, 1);
        let std_tte = Standardizer::fit(&tte.iter().map(|e| e.target).collect::<Vec<_>>());
        let std_rank = Standardizer::fit(&rank.iter().map(|e| e.target).collect::<Vec<_>>());
        let mut model =
            Self { params, gru, attn, head_tte, head_rank, ef, std_tte, std_rank, dim: cfg.dim };
        let mut params = std::mem::take(&mut model.params);

        let spec = TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed).with_grad_clip(cfg.grad_clip);
        let mut trainer = Trainer::new(spec);
        let mut t = HmtrlTrainable { model: &model, tte, rank };
        trainer.run(&mut t, &mut params, cfg.epochs, observer);
        model.params = params;
        model
    }

    fn task_loss(
        &self,
        g: &mut Graph<'_>,
        ex: &RegressionExample,
        std: &Standardizer,
        use_tte: bool,
    ) -> NodeId {
        let target = Tensor::scalar((ex.target - std.mean) / std.std);
        let repr = self.route_repr(g, &ex.path, ex.departure);
        let head = if use_tte { &self.head_tte } else { &self.head_rank };
        let pred = head.forward(g, repr);
        g.mse_to_const(pred, &target)
    }

    /// Freeze into a representer exposing the attended route representation.
    pub fn into_representer(mut self, name: impl Into<String>) -> FnRepresenter {
        let dim = self.dim;
        FnRepresenter::new(name, dim, move |_net, path, dep| {
            let params = std::mem::take(&mut self.params);
            let v = {
                let mut g = Graph::new(&params);
                let repr = self.route_repr(&mut g, path, dep);
                g.value(repr).data().to_vec()
            };
            self.params = params;
            v
        })
    }
}

/// Interleaved multi-task regression, as seen by the engine. A batch is a
/// `(task, index)` pair: `true` selects travel-time estimation, `false`
/// selects ranking. The model's `params` field is empty for the duration of
/// training (the engine owns the live copy); `route_repr` never reads it.
struct HmtrlTrainable<'a> {
    model: &'a Hmtrl,
    tte: &'a [RegressionExample],
    rank: &'a [RegressionExample],
}

impl Trainable for HmtrlTrainable<'_> {
    type Batch = (bool, usize);

    fn epoch_batches(&mut self, _epoch: u64, rng: &mut StdRng) -> Vec<(bool, usize)> {
        // Interleave the two tasks: (task, index).
        let mut schedule: Vec<(bool, usize)> = (0..self.tte.len())
            .map(|i| (true, i))
            .chain((0..self.rank.len()).map(|i| (false, i)))
            .collect();
        schedule.shuffle(rng);
        schedule
    }

    fn build_loss(
        &self,
        g: &mut Graph<'_>,
        &(is_tte, i): &(bool, usize),
        _rng: &mut StdRng,
    ) -> Option<NodeId> {
        let (ex, std) = if is_tte {
            (&self.tte[i], &self.model.std_tte)
        } else {
            (&self.rank[i], &self.model.std_rank)
        };
        Some(self.model.task_loss(g, ex, std, is_tte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;

    #[test]
    fn multitask_training_produces_time_sensitive_representations() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 16));
        let tte: Vec<RegressionExample> = ds
            .tte
            .iter()
            .take(15)
            .map(|t| RegressionExample {
                path: t.path.clone(),
                departure: t.departure,
                target: t.travel_time,
            })
            .collect();
        let rank: Vec<RegressionExample> = ds
            .groups
            .iter()
            .take(5)
            .flat_map(|grp| {
                grp.candidates.iter().zip(&grp.scores).map(move |(p, &s)| RegressionExample {
                    path: p.clone(),
                    departure: grp.departure,
                    target: s,
                })
            })
            .collect();
        let model =
            Hmtrl::train(&ds.net, &tte, &rank, &HmtrlConfig { epochs: 2, ..Default::default() });
        let rep = model.into_representer("HMTRL");
        let p = &tte[0].path;
        let a = rep.represent(&ds.net, p, SimTime::from_hm(0, 8, 0));
        let b = rep.represent(&ds.net, p, SimTime::from_hm(6, 22, 0));
        assert_eq!(a.len(), rep.dim());
        assert_ne!(a, b);
    }

    #[test]
    fn single_task_mode_works() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 16));
        let tte: Vec<RegressionExample> = ds
            .tte
            .iter()
            .take(10)
            .map(|t| RegressionExample {
                path: t.path.clone(),
                departure: t.departure,
                target: t.travel_time,
            })
            .collect();
        let model =
            Hmtrl::train(&ds.net, &tte, &[], &HmtrlConfig { epochs: 1, ..Default::default() });
        let rep = model.into_representer("HMTRL-TTE");
        let v = rep.represent(&ds.net, &tte[0].path, tte[0].departure);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn no_labels_panics() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 16));
        Hmtrl::train(&ds.net, &[], &[], &HmtrlConfig::default());
    }
}
