//! PathRank (Yang et al., TKDE 2020): a supervised GRU path-representation
//! model that takes departure time as context and regresses a task label
//! (travel time or ranking score).
//!
//! Also implements the paper's pre-training experiment (Fig. 7): PathRank's
//! encoder can be *initialized from a trained WSCCL encoder* and fine-tuned on
//! few labels.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use wsccl_core::encoder::{EncoderWeights, TemporalPathEncoder};
use wsccl_nn::layers::{Gru, Linear};
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::SimTime;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{time_features, EdgeFeaturizer, FnRepresenter, TIME_DIM};

/// A supervised regression example `(path, departure) → target`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegressionExample {
    pub path: Path,
    pub departure: SimTime,
    pub target: f64,
}

/// PathRank configuration.
#[derive(Clone, Debug)]
pub struct PathRankConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Max L2 norm of each step's gradient.
    pub grad_clip: f64,
    pub seed: u64,
}

impl Default for PathRankConfig {
    fn default() -> Self {
        Self { dim: 24, epochs: 6, lr: 3e-3, grad_clip: 5.0, seed: 0 }
    }
}

/// Target standardization stats.
#[derive(Clone, Copy, Debug)]
struct Standardizer {
    mean: f64,
    std: f64,
}

impl Standardizer {
    fn fit(targets: impl Iterator<Item = f64> + Clone) -> Self {
        let (mut n, mut sum) = (0usize, 0.0);
        for t in targets.clone() {
            sum += t;
            n += 1;
        }
        assert!(n > 0, "cannot standardize no targets");
        let mean = sum / n as f64;
        let var = targets.map(|t| (t - mean).powi(2)).sum::<f64>() / n as f64;
        Self { mean, std: var.sqrt().max(1e-6) }
    }

    fn forward(&self, t: f64) -> f64 {
        (t - self.mean) / self.std
    }

    fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

/// Trained PathRank model (GRU variant).
pub struct PathRank {
    params: Parameters,
    gru: Gru,
    head: Linear,
    ef: EdgeFeaturizer,
    std: Standardizer,
    dim: usize,
}

/// Per-example regression over the GRU encoder, as seen by the engine.
struct PathRankTrainable<'a> {
    gru: &'a Gru,
    head: &'a Linear,
    ef: &'a EdgeFeaturizer,
    std: Standardizer,
    examples: &'a [RegressionExample],
}

impl Trainable for PathRankTrainable<'_> {
    type Batch = usize;

    fn epoch_batches(&mut self, _epoch: u64, rng: &mut StdRng) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.examples.len()).collect();
        order.shuffle(rng);
        order
    }

    fn build_loss(&self, g: &mut Graph<'_>, &i: &usize, _rng: &mut StdRng) -> Option<NodeId> {
        let ex = &self.examples[i];
        let tf = time_features(ex.departure);
        let inputs: Vec<_> = self
            .ef
            .path(&ex.path)
            .into_iter()
            .map(|mut f| {
                f.extend_from_slice(&tf);
                g.input(Tensor::row(f))
            })
            .collect();
        let h = self.gru.forward_last(g, &inputs);
        let pred = self.head.forward(g, h);
        let target = Tensor::scalar(self.std.forward(ex.target));
        Some(g.mse_to_const(pred, &target))
    }
}

impl PathRank {
    /// Train on regression examples (travel times or ranking scores).
    pub fn train(net: &RoadNetwork, examples: &[RegressionExample], cfg: &PathRankConfig) -> Self {
        Self::train_observed(net, examples, cfg, &mut NoopObserver)
    }

    /// [`Self::train`] with a [`TrainObserver`] receiving per-step records.
    pub fn train_observed(
        net: &RoadNetwork,
        examples: &[RegressionExample],
        cfg: &PathRankConfig,
        observer: &mut dyn TrainObserver,
    ) -> Self {
        assert!(!examples.is_empty(), "PathRank needs labeled examples");
        let ef = EdgeFeaturizer::new(net);
        let std = Standardizer::fit(examples.iter().map(|e| e.target));
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9A7);
        let gru = Gru::new(&mut params, &mut rng, "pr.gru", ef.dim() + TIME_DIM, cfg.dim);
        let head = Linear::new(&mut params, &mut rng, "pr.head", cfg.dim, 1);

        let spec = TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed).with_grad_clip(cfg.grad_clip);
        let mut trainer = Trainer::new(spec);
        let mut t = PathRankTrainable { gru: &gru, head: &head, ef: &ef, std, examples };
        trainer.run(&mut t, &mut params, cfg.epochs, observer);
        Self { params, gru, head, ef, std, dim: cfg.dim }
    }

    /// The model's own prediction for a temporal path.
    pub fn predict(&mut self, path: &Path, departure: SimTime) -> f64 {
        let tf = time_features(departure);
        let mut g = Graph::new(&self.params);
        let inputs: Vec<_> = self
            .ef
            .path(path)
            .into_iter()
            .map(|mut f| {
                f.extend_from_slice(&tf);
                g.input(Tensor::row(f))
            })
            .collect();
        let h = self.gru.forward_last(&mut g, &inputs);
        let pred = self.head.forward(&mut g, h);
        self.std.inverse(g.value(pred).item())
    }

    /// Mean absolute error on held-out examples.
    pub fn evaluate_mae(&mut self, examples: &[RegressionExample]) -> f64 {
        assert!(!examples.is_empty());
        let total: f64 =
            examples.iter().map(|e| (self.predict(&e.path, e.departure) - e.target).abs()).sum();
        total / examples.len() as f64
    }

    /// Freeze into a representer exposing the final GRU hidden state.
    pub fn into_representer(self, name: impl Into<String>) -> FnRepresenter {
        let dim = self.dim;
        FnRepresenter::new(name, dim, move |_net, path, dep| {
            let tf = time_features(dep);
            let mut g = Graph::new(&self.params);
            let inputs: Vec<_> = self
                .ef
                .path(path)
                .into_iter()
                .map(|mut f| {
                    f.extend_from_slice(&tf);
                    g.input(Tensor::row(f))
                })
                .collect();
            let h = self.gru.forward_last(&mut g, &inputs);
            g.value(h).data().to_vec()
        })
    }
}

/// PathRank over the WSCCL temporal path encoder (used in Fig. 7).
///
/// When `init` carries a trained WSCCL parameter store, the encoder starts
/// from the pre-trained weights; otherwise it starts fresh. In both cases a
/// new linear head is attached and everything is fine-tuned on the labels.
pub struct PathRankOverEncoder {
    encoder: Arc<TemporalPathEncoder>,
    params: Parameters,
    weights: EncoderWeights,
    head: Linear,
    std: Standardizer,
}

/// Fine-tuning over the (possibly pre-trained) WSCCL encoder.
struct OverEncoderTrainable<'a> {
    encoder: &'a TemporalPathEncoder,
    weights: &'a EncoderWeights,
    head: &'a Linear,
    std: Standardizer,
    examples: &'a [RegressionExample],
}

impl Trainable for OverEncoderTrainable<'_> {
    type Batch = usize;

    fn epoch_batches(&mut self, _epoch: u64, rng: &mut StdRng) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.examples.len()).collect();
        order.shuffle(rng);
        order
    }

    fn build_loss(&self, g: &mut Graph<'_>, &i: &usize, _rng: &mut StdRng) -> Option<NodeId> {
        let ex = &self.examples[i];
        let (tpr, _) = self.encoder.forward(g, self.weights, &ex.path, ex.departure);
        let pred = self.head.forward(g, tpr);
        let target = Tensor::scalar(self.std.forward(ex.target));
        Some(g.mse_to_const(pred, &target))
    }
}

impl PathRankOverEncoder {
    pub fn train(
        encoder: Arc<TemporalPathEncoder>,
        init: Option<(&Parameters, &EncoderWeights)>,
        examples: &[RegressionExample],
        epochs: usize,
        lr: f64,
        seed: u64,
    ) -> Self {
        Self::train_observed(encoder, init, examples, epochs, lr, seed, &mut NoopObserver)
    }

    /// [`Self::train`] with a [`TrainObserver`] receiving per-step records.
    pub fn train_observed(
        encoder: Arc<TemporalPathEncoder>,
        init: Option<(&Parameters, &EncoderWeights)>,
        examples: &[RegressionExample],
        epochs: usize,
        lr: f64,
        seed: u64,
        observer: &mut dyn TrainObserver,
    ) -> Self {
        assert!(!examples.is_empty(), "needs labeled examples");
        let std = Standardizer::fit(examples.iter().map(|e| e.target));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF16);
        let (mut params, weights) = match init {
            Some((p, w)) => (p.clone(), w.clone()),
            None => {
                let mut p = Parameters::new();
                let w = encoder.init_weights(&mut p, seed);
                (p, w)
            }
        };
        let head = Linear::new(&mut params, &mut rng, "pr.head", encoder.out_dim(), 1);
        let spec =
            TrainSpec::adam(lr, epochs, seed).with_grad_clip(PathRankConfig::default().grad_clip);
        let mut trainer = Trainer::new(spec);
        let mut t = OverEncoderTrainable {
            encoder: &encoder,
            weights: &weights,
            head: &head,
            std,
            examples,
        };
        trainer.run(&mut t, &mut params, epochs, observer);
        Self { encoder, params, weights, head, std }
    }

    pub fn predict(&mut self, path: &Path, departure: SimTime) -> f64 {
        let mut g = Graph::new(&self.params);
        let (tpr, _) = self.encoder.forward(&mut g, &self.weights, path, departure);
        let pred = self.head.forward(&mut g, tpr);
        self.std.inverse(g.value(pred).item())
    }

    pub fn evaluate_mae(&mut self, examples: &[RegressionExample]) -> f64 {
        assert!(!examples.is_empty());
        let total: f64 =
            examples.iter().map(|e| (self.predict(&e.path, e.departure) - e.target).abs()).sum();
        total / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;

    fn tte_examples(ds: &CityDataset, n: usize) -> Vec<RegressionExample> {
        ds.tte
            .iter()
            .take(n)
            .map(|t| RegressionExample {
                path: t.path.clone(),
                departure: t.departure,
                target: t.travel_time,
            })
            .collect()
    }

    #[test]
    fn learns_travel_time_better_than_mean_baseline() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 13));
        let train_ex = tte_examples(&ds, 30);
        let mut model = PathRank::train(
            &ds.net,
            &train_ex,
            &PathRankConfig { epochs: 8, ..Default::default() },
        );
        let mae_model = model.evaluate_mae(&train_ex);
        let mean: f64 = train_ex.iter().map(|e| e.target).sum::<f64>() / train_ex.len() as f64;
        let mae_mean: f64 =
            train_ex.iter().map(|e| (e.target - mean).abs()).sum::<f64>() / train_ex.len() as f64;
        assert!(
            mae_model < 0.9 * mae_mean,
            "PathRank {mae_model:.1} should beat mean baseline {mae_mean:.1}"
        );
    }

    #[test]
    fn representer_is_time_sensitive() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 13));
        let train_ex = tte_examples(&ds, 20);
        let model = PathRank::train(
            &ds.net,
            &train_ex,
            &PathRankConfig { epochs: 2, ..Default::default() },
        );
        let rep = model.into_representer("PathRank");
        let p = &train_ex[0].path;
        let a = rep.represent(&ds.net, p, SimTime::from_hm(0, 8, 0));
        let b = rep.represent(&ds.net, p, SimTime::from_hm(6, 22, 0));
        assert_ne!(a, b);
        assert_eq!(a.len(), rep.dim());
    }

    #[test]
    fn encoder_variant_trains_with_and_without_init() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 14));
        let train_ex = tte_examples(&ds, 15);
        let enc = Arc::new(TemporalPathEncoder::new(
            &ds.net,
            wsccl_core::encoder::EncoderConfig::tiny(),
            14,
        ));
        let mut fresh = PathRankOverEncoder::train(Arc::clone(&enc), None, &train_ex, 2, 3e-3, 1);
        let mae = fresh.evaluate_mae(&train_ex);
        assert!(mae.is_finite() && mae > 0.0);
    }
}
