//! PIM (Yang et al., IJCAI 2021): unsupervised path representation learning
//! via global–local mutual information maximization with curriculum negative
//! sampling — the paper's closest prior work.
//!
//! An LSTM encodes the path; the pooled global representation must score high
//! against its own edge states (one positive view per query) and low against
//! the edge states of a *negative path*. Negative paths follow PIM's
//! curriculum: early training uses easy negatives (paths most dissimilar to
//! the query by edge overlap), later training uses hard ones (most similar).
//!
//! `PIM-Temporal` (Table IX) concatenates a frozen temporal-graph embedding to
//! the trained PIM representation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_datagen::TemporalPathSample;
use wsccl_graphembed::{Node2VecConfig, TemporalEmbeddings};
use wsccl_nn::layers::Lstm;
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::RoadNetwork;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{EdgeFeaturizer, FnRepresenter};

/// PIM configuration.
pub struct PimConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Edge samples per side per query.
    pub samples: usize,
    pub seed: u64,
}

impl Default for PimConfig {
    fn default() -> Self {
        Self { dim: 24, epochs: 3, lr: 3e-3, samples: 4, seed: 0 }
    }
}

/// Jaccard overlap of two paths' edge sets (for the negative curriculum).
fn edge_overlap(a: &wsccl_roadnet::Path, b: &wsccl_roadnet::Path) -> f64 {
    let sa: std::collections::HashSet<_> = a.edges().iter().collect();
    let sb: std::collections::HashSet<_> = b.edges().iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union.max(1) as f64
}

/// Encode a path into `(global, per-edge locals)`.
fn encode(g: &mut Graph<'_>, lstm: &Lstm, feats: &[Vec<f64>]) -> (NodeId, Vec<NodeId>) {
    let inputs: Vec<NodeId> = feats.iter().map(|f| g.input(Tensor::row(f.clone()))).collect();
    let hs = lstm.forward(g, &inputs);
    let stacked = g.concat_rows(&hs);
    (g.mean_rows(stacked), hs)
}

/// Global–local MI with curriculum negatives, as seen by the engine. The
/// hardness fraction is refreshed from the global epoch counter each time an
/// epoch's batch list is built; negative candidates come from the per-step
/// shard RNG.
struct PimTrainable<'a> {
    lstm: &'a Lstm,
    ef: &'a EdgeFeaturizer,
    pool: &'a [TemporalPathSample],
    samples: usize,
    total_epochs: usize,
    hardness: f64,
}

impl Trainable for PimTrainable<'_> {
    type Batch = usize;

    fn epoch_batches(&mut self, epoch: u64, _rng: &mut StdRng) -> Vec<usize> {
        // Curriculum hardness: fraction of training completed.
        self.hardness = epoch as f64 / self.total_epochs.max(1) as f64;
        (0..self.pool.len()).collect()
    }

    fn build_loss(&self, g: &mut Graph<'_>, &i: &usize, rng: &mut StdRng) -> Option<NodeId> {
        // Negative path: sample a handful of candidates and pick by the
        // curriculum — most dissimilar early, most similar late.
        let mut best: Option<(f64, usize)> = None;
        for _ in 0..5 {
            let j = rng.random_range(0..self.pool.len());
            if j == i {
                continue;
            }
            let ov = edge_overlap(&self.pool[i].path, &self.pool[j].path);
            let score = if self.hardness < 0.5 { -ov } else { ov };
            if best.map_or(true, |(s, _)| score > s) {
                best = Some((score, j));
            }
        }
        let (_, j) = best?;
        let (global, own_locals) = encode(g, self.lstm, &self.ef.path(&self.pool[i].path));
        let (_, neg_locals) = encode(g, self.lstm, &self.ef.path(&self.pool[j].path));

        let mut terms = Vec::new();
        for _ in 0..self.samples {
            let own = own_locals[rng.random_range(0..own_locals.len())];
            let pos = g.dot(global, own);
            let pos_sig = g.sigmoid(pos);
            terms.push(g.ln(pos_sig));
            let other = neg_locals[rng.random_range(0..neg_locals.len())];
            let neg = g.dot(global, other);
            let neg_arg = g.scale(neg, -1.0);
            let neg_sig = g.sigmoid(neg_arg);
            terms.push(g.ln(neg_sig));
        }
        let mean = g.mean_scalars(&terms);
        Some(g.scale(mean, -1.0))
    }
}

/// Train PIM on the unlabeled pool.
pub fn train(net: &RoadNetwork, pool: &[TemporalPathSample], cfg: &PimConfig) -> FnRepresenter {
    train_observed(net, pool, cfg, &mut NoopObserver)
}

/// [`train`] with a [`TrainObserver`] receiving per-step records.
pub fn train_observed(
    net: &RoadNetwork,
    pool: &[TemporalPathSample],
    cfg: &PimConfig,
    observer: &mut dyn TrainObserver,
) -> FnRepresenter {
    assert!(pool.len() >= 2, "PIM needs at least two paths");
    let ef = EdgeFeaturizer::new(net);
    let mut params = Parameters::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x916);
    let lstm = Lstm::new(&mut params, &mut rng, "pim.lstm", ef.dim(), cfg.dim, 1);

    let mut trainer = Trainer::new(TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed));
    let mut t = PimTrainable {
        lstm: &lstm,
        ef: &ef,
        pool,
        samples: cfg.samples,
        total_epochs: cfg.epochs,
        hardness: 0.0,
    };
    trainer.run(&mut t, &mut params, cfg.epochs, observer);
    drop(t);

    let dim = cfg.dim;
    FnRepresenter::new("PIM", dim, move |_net, path, _dep| {
        let mut g = Graph::new(&params);
        let inputs: Vec<NodeId> =
            ef.path(path).into_iter().map(|f| g.input(Tensor::row(f))).collect();
        let hs = lstm.forward(&mut g, &inputs);
        let stacked = g.concat_rows(&hs);
        let global = g.mean_rows(stacked);
        // Sum view (see DESIGN.md): magnitude carries path length.
        let mut v = g.value(global).data().to_vec();
        let n = path.len() as f64;
        v.iter_mut().for_each(|x| *x *= n);
        v
    })
}

/// PIM-Temporal (Table IX): PIM representation concatenated with a frozen
/// temporal-graph node2vec embedding of the departure time.
pub fn train_temporal(
    net: &RoadNetwork,
    pool: &[TemporalPathSample],
    cfg: &PimConfig,
    d_tem: usize,
) -> FnRepresenter {
    train_temporal_observed(net, pool, cfg, d_tem, &mut NoopObserver)
}

/// [`train_temporal`] with a [`TrainObserver`] watching the PIM part (the
/// frozen node2vec temporal embedding has no engine loop).
pub fn train_temporal_observed(
    net: &RoadNetwork,
    pool: &[TemporalPathSample],
    cfg: &PimConfig,
    d_tem: usize,
    observer: &mut dyn TrainObserver,
) -> FnRepresenter {
    let pim = train_observed(net, pool, cfg, observer);
    let temporal = TemporalEmbeddings::train(&Node2VecConfig {
        dim: d_tem,
        walks_per_node: 6,
        epochs: 2,
        seed: cfg.seed ^ 0x7E,
        ..Default::default()
    });
    let dim = cfg.dim + d_tem;
    use wsccl_core::PathRepresenter;
    FnRepresenter::new("PIM-Temporal", dim, move |net, path, dep| {
        let mut v = pim.represent(net, path, dep);
        v.extend_from_slice(temporal.embed(dep));
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::SimTime;

    #[test]
    fn pim_trains_and_is_time_invariant() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 12));
        let pool: Vec<_> = ds.unlabeled.iter().take(15).cloned().collect();
        let rep = train(&ds.net, &pool, &PimConfig { epochs: 1, ..Default::default() });
        let a = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(0, 8, 0));
        let b = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(4, 20, 0));
        assert_eq!(a, b, "plain PIM ignores departure time");
    }

    #[test]
    fn pim_temporal_depends_on_time() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 12));
        let pool: Vec<_> = ds.unlabeled.iter().take(10).cloned().collect();
        let rep = train_temporal(&ds.net, &pool, &PimConfig { epochs: 1, ..Default::default() }, 8);
        let a = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(0, 8, 0));
        let b = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(4, 20, 0));
        assert_eq!(a.len(), rep.dim());
        assert_ne!(a, b, "PIM-Temporal must react to departure time");
        // The PIM part (prefix) is identical; only the temporal tail differs.
        assert_eq!(a[..24], b[..24]);
    }

    #[test]
    fn edge_overlap_bounds() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 12));
        let p = &ds.unlabeled[0].path;
        let q = &ds.unlabeled[1].path;
        assert!((edge_overlap(p, p) - 1.0).abs() < 1e-12);
        let o = edge_overlap(p, q);
        assert!((0.0..=1.0).contains(&o));
    }
}
