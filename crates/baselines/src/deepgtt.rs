//! DeepGTT (Li et al., WWW 2019): a travel-time-specific deep model.
//!
//! The original learns a travel-time *distribution* from per-edge speeds
//! produced by a deep generative model. This reproduction keeps its defining
//! structure — a per-edge speed network conditioned on departure time, with
//! path travel time as the sum of `length / speed` — and trains the mean
//! prediction with MSE. As in the paper, the architecture is inherently
//! travel-time shaped, which is exactly why it transfers poorly to ranking
//! (Tables III and X).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wsccl_nn::layers::Linear;
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::SimTime;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{time_features, EdgeFeaturizer, FnRepresenter, TIME_DIM};
use crate::pathrank::RegressionExample;

/// DeepGTT configuration.
pub struct DeepGttConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Max L2 norm of each step's gradient.
    pub grad_clip: f64,
    pub seed: u64,
}

impl Default for DeepGttConfig {
    fn default() -> Self {
        Self { hidden: 24, epochs: 6, lr: 3e-3, grad_clip: 5.0, seed: 0 }
    }
}

/// Per-example travel-time regression, as seen by the engine. The model's
/// `params` field is empty for the duration of training (the engine owns the
/// live copy); `path_forward` never reads it.
struct DeepGttTrainable<'a> {
    model: &'a DeepGtt,
    net: &'a RoadNetwork,
    examples: &'a [RegressionExample],
}

impl Trainable for DeepGttTrainable<'_> {
    type Batch = usize;

    fn epoch_batches(&mut self, _epoch: u64, rng: &mut StdRng) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.examples.len()).collect();
        order.shuffle(rng);
        order
    }

    fn build_loss(&self, g: &mut Graph<'_>, &i: &usize, _rng: &mut StdRng) -> Option<NodeId> {
        let ex = &self.examples[i];
        let lengths: Vec<f64> = ex.path.edges().iter().map(|&e| self.net.edge(e).length).collect();
        let tf = time_features(ex.departure);
        let pred = self.model.path_forward(g, &ex.path, &lengths, &tf);
        let scaled = g.scale(pred, 1.0 / self.model.target_scale);
        let target = Tensor::scalar(ex.target / self.model.target_scale);
        Some(g.mse_to_const(scaled, &target))
    }
}

/// Trained DeepGTT model.
pub struct DeepGtt {
    params: Parameters,
    l1: Linear,
    speed_head: Linear,
    ef: EdgeFeaturizer,
    hidden: usize,
    /// Target scale (seconds) used to normalize the MSE.
    target_scale: f64,
}

impl DeepGtt {
    /// Per-edge hidden state and positive speed (m/s).
    fn edge_forward(&self, g: &mut Graph<'_>, feat: &[f64], tf: &[f64]) -> (NodeId, NodeId) {
        let mut x = feat.to_vec();
        x.extend_from_slice(tf);
        let xn = g.input(Tensor::row(x));
        let h_pre = self.l1.forward(g, xn);
        let h = g.relu(h_pre);
        let raw = self.speed_head.forward(g, h);
        // softplus(raw) + 1 m/s floor, expressed as −ln σ(−raw) + 1.
        let neg = g.scale(raw, -1.0);
        let sig = g.sigmoid(neg);
        let lns = g.ln(sig);
        let sp = g.scale(lns, -1.0);
        let one = g.input(Tensor::scalar(1.0));
        let speed = g.add(sp, one);
        (h, speed)
    }

    /// Predicted travel time node for a temporal path.
    fn path_forward(&self, g: &mut Graph<'_>, path: &Path, lengths: &[f64], tf: &[f64]) -> NodeId {
        let mut terms = Vec::with_capacity(path.len());
        for (k, &e) in path.edges().iter().enumerate() {
            let (_, speed) = self.edge_forward(g, &self.ef.edge(e).to_vec(), tf);
            terms.push(self.edge_time(g, speed, lengths[k]));
        }
        let stacked = g.concat_rows(&terms);
        g.sum_all(stacked)
    }

    /// Per-edge time from speed. For `v > 0`, `σ(−ln v) = 1/(1+v)`, so
    /// `t_e = 2L·σ(−ln v) = 2L/(1+v)` — a smooth, strictly decreasing pace
    /// surrogate of `L/v` that the speed head learns to calibrate (exact
    /// division is outside the autodiff op set; the surrogate preserves
    /// monotonicity and positivity, which is all the regression needs).
    fn edge_time(&self, g: &mut Graph<'_>, speed: NodeId, length: f64) -> NodeId {
        let lnv = g.ln(speed);
        let neg = g.scale(lnv, -1.0);
        let pace = g.sigmoid(neg); // = 1/(1+v)
        g.scale(pace, 2.0 * length)
    }

    /// Train DeepGTT on regression examples.
    pub fn train(net: &RoadNetwork, examples: &[RegressionExample], cfg: &DeepGttConfig) -> Self {
        Self::train_observed(net, examples, cfg, &mut NoopObserver)
    }

    /// [`Self::train`] with a [`TrainObserver`] receiving per-step records.
    pub fn train_observed(
        net: &RoadNetwork,
        examples: &[RegressionExample],
        cfg: &DeepGttConfig,
        observer: &mut dyn TrainObserver,
    ) -> Self {
        assert!(!examples.is_empty(), "DeepGTT needs labeled examples");
        let ef = EdgeFeaturizer::new(net);
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD6);
        let l1 = Linear::new(
            &mut params,
            &mut rng,
            "gtt.l1",
            EdgeFeaturizer::DIM + TIME_DIM,
            cfg.hidden,
        );
        let speed_head = Linear::new(&mut params, &mut rng, "gtt.speed", cfg.hidden, 1);
        let target_scale = (examples.iter().map(|e| e.target.abs()).sum::<f64>()
            / examples.len() as f64)
            .max(1e-6);
        let mut model = Self { params, l1, speed_head, ef, hidden: cfg.hidden, target_scale };
        let mut params = std::mem::take(&mut model.params);

        let spec = TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed).with_grad_clip(cfg.grad_clip);
        let mut trainer = Trainer::new(spec);
        let mut t = DeepGttTrainable { model: &model, net, examples };
        trainer.run(&mut t, &mut params, cfg.epochs, observer);
        model.params = params;
        model
    }

    /// Predict travel time (seconds, or the trained target's unit).
    pub fn predict(&mut self, net: &RoadNetwork, path: &Path, departure: SimTime) -> f64 {
        let lengths: Vec<f64> = path.edges().iter().map(|&e| net.edge(e).length).collect();
        let tf = time_features(departure);
        let params = std::mem::take(&mut self.params);
        let v = {
            let mut g = Graph::new(&params);
            let pred = self.path_forward(&mut g, path, &lengths, &tf);
            g.value(pred).item()
        };
        self.params = params;
        v
    }

    /// Freeze into a representer exposing the mean per-edge hidden state.
    pub fn into_representer(mut self, name: impl Into<String>) -> FnRepresenter {
        let dim = self.hidden;
        FnRepresenter::new(name, dim, move |_net, path, dep| {
            let tf = time_features(dep);
            let params = std::mem::take(&mut self.params);
            let v = {
                let mut g = Graph::new(&params);
                let hs: Vec<NodeId> = path
                    .edges()
                    .iter()
                    .map(|&e| self.edge_forward(&mut g, &self.ef.edge(e).to_vec(), &tf).0)
                    .collect();
                let stacked = g.concat_rows(&hs);
                let mean = g.mean_rows(stacked);
                g.value(mean).data().to_vec()
            };
            self.params = params;
            v
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;

    #[test]
    fn learns_travel_time_better_than_mean() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 15));
        let examples: Vec<RegressionExample> = ds
            .tte
            .iter()
            .take(30)
            .map(|t| RegressionExample {
                path: t.path.clone(),
                departure: t.departure,
                target: t.travel_time,
            })
            .collect();
        let mut model =
            DeepGtt::train(&ds.net, &examples, &DeepGttConfig { epochs: 10, ..Default::default() });
        let mae: f64 = examples
            .iter()
            .map(|e| (model.predict(&ds.net, &e.path, e.departure) - e.target).abs())
            .sum::<f64>()
            / examples.len() as f64;
        let mean: f64 = examples.iter().map(|e| e.target).sum::<f64>() / examples.len() as f64;
        let mae_mean: f64 =
            examples.iter().map(|e| (e.target - mean).abs()).sum::<f64>() / examples.len() as f64;
        assert!(mae < mae_mean, "DeepGTT {mae:.1} should beat mean {mae_mean:.1}");
    }

    #[test]
    fn predictions_scale_with_path_length() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 15));
        let examples: Vec<RegressionExample> = ds
            .tte
            .iter()
            .take(20)
            .map(|t| RegressionExample {
                path: t.path.clone(),
                departure: t.departure,
                target: t.travel_time,
            })
            .collect();
        let mut model =
            DeepGtt::train(&ds.net, &examples, &DeepGttConfig { epochs: 4, ..Default::default() });
        // Longer paths should get longer predictions, on average.
        let mut short = (0.0, 0usize);
        let mut long = (0.0, 0usize);
        for e in &examples {
            let p = model.predict(&ds.net, &e.path, e.departure);
            if e.path.len() <= 10 {
                short = (short.0 + p, short.1 + 1);
            } else {
                long = (long.0 + p, long.1 + 1);
            }
        }
        if short.1 > 0 && long.1 > 0 {
            assert!(long.0 / long.1 as f64 > short.0 / short.1 as f64);
        }
    }
}
