//! BERT-style baseline: a path is treated as a sentence of edges and a small
//! self-attention encoder is pre-trained by masked-edge prediction (the
//! paper's adaptation of BERT to paths).
//!
//! One random position per path is replaced by a learned `[MASK]` vector; the
//! output at that position must identify the true edge among sampled decoys
//! (negative-sampled cross-entropy, standing in for the full-vocabulary
//! softmax). The path representation is the mean of the encoder outputs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_datagen::TemporalPathSample;
use wsccl_nn::layers::{Linear, SelfAttention};
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::RoadNetwork;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{EdgeFeaturizer, FnRepresenter};

/// BERT baseline configuration.
pub struct BertConfig {
    pub dim: usize,
    pub blocks: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Decoy edges per masked prediction.
    pub decoys: usize,
    pub max_len: usize,
    pub seed: u64,
}

impl Default for BertConfig {
    fn default() -> Self {
        Self { dim: 24, blocks: 1, epochs: 3, lr: 2e-3, decoys: 8, max_len: 64, seed: 0 }
    }
}

struct BertModel {
    proj: Linear,
    blocks: Vec<SelfAttention>,
    edge_proj: Linear,
    mask_vec: wsccl_nn::ParamId,
    pos_table: wsccl_nn::ParamId,
    dim: usize,
    max_len: usize,
}

impl BertModel {
    /// Encode a feature sequence; `mask` optionally replaces one position.
    fn encode(&self, g: &mut Graph<'_>, feats: &[Vec<f64>], mask: Option<usize>) -> NodeId {
        let rows: Vec<NodeId> = feats
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let token = if mask == Some(i) {
                    let m = g.param(self.mask_vec);
                    m
                } else {
                    let x = g.input(Tensor::row(f.clone()));
                    self.proj.forward(g, x)
                };
                let pos = g.embed_lookup(self.pos_table, &[i.min(self.max_len - 1)]);
                g.add(token, pos)
            })
            .collect();
        let mut h = g.concat_rows(&rows);
        for b in &self.blocks {
            h = b.forward(g, h);
        }
        h
    }
}

/// Masked-edge prediction over the unlabeled pool, as seen by the engine.
/// The mask position and decoy edges are drawn from the per-step shard RNG.
struct BertTrainable<'a> {
    model: &'a BertModel,
    ef: &'a EdgeFeaturizer,
    pool: &'a [TemporalPathSample],
    decoys: usize,
    num_edges: usize,
}

impl Trainable for BertTrainable<'_> {
    type Batch = usize;

    fn epoch_batches(&mut self, _epoch: u64, _rng: &mut StdRng) -> Vec<usize> {
        (0..self.pool.len()).collect()
    }

    fn build_loss(&self, g: &mut Graph<'_>, &i: &usize, rng: &mut StdRng) -> Option<NodeId> {
        let sample = &self.pool[i];
        let feats = self.ef.path(&sample.path);
        if feats.len() < 2 {
            return None;
        }
        let mask_pos = rng.random_range(0..feats.len());
        let true_edge = sample.path.edges()[mask_pos];
        let h = self.model.encode(g, &feats, Some(mask_pos));
        // Output at the masked position.
        let mut sel = Tensor::zeros(1, feats.len());
        sel.set(0, mask_pos, 1.0);
        let sel_n = g.input(sel);
        let hm = g.matmul(sel_n, h); // (1, dim)

        // Candidates: true edge first, then decoys.
        let mut cand_rows: Vec<NodeId> = Vec::with_capacity(self.decoys + 1);
        let t = g.input(Tensor::row(self.ef.edge(true_edge).to_vec()));
        cand_rows.push(self.model.edge_proj.forward(g, t));
        for _ in 0..self.decoys {
            let d = wsccl_roadnet::EdgeId(rng.random_range(0..self.num_edges as u32));
            let x = g.input(Tensor::row(self.ef.edge(d).to_vec()));
            cand_rows.push(self.model.edge_proj.forward(g, x));
        }
        let cands = g.concat_rows(&cand_rows); // (k+1, dim)
        let logits = g.matmul_nt(hm, cands); // (1, k+1)
        Some(g.cross_entropy(logits, 0))
    }
}

/// Train the BERT baseline on the unlabeled pool.
pub fn train(net: &RoadNetwork, pool: &[TemporalPathSample], cfg: &BertConfig) -> FnRepresenter {
    train_observed(net, pool, cfg, &mut NoopObserver)
}

/// [`train`] with a [`TrainObserver`] receiving per-step records.
pub fn train_observed(
    net: &RoadNetwork,
    pool: &[TemporalPathSample],
    cfg: &BertConfig,
    observer: &mut dyn TrainObserver,
) -> FnRepresenter {
    assert!(!pool.is_empty(), "BERT needs a non-empty pool");
    let ef = EdgeFeaturizer::new(net);
    let mut params = Parameters::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBE27);
    let model = BertModel {
        proj: Linear::new(&mut params, &mut rng, "bert.proj", ef.dim(), cfg.dim),
        blocks: (0..cfg.blocks)
            .map(|i| SelfAttention::new(&mut params, &mut rng, &format!("bert.attn{i}"), cfg.dim))
            .collect(),
        edge_proj: Linear::new(&mut params, &mut rng, "bert.edge", ef.dim(), cfg.dim),
        mask_vec: params.register("bert.mask", wsccl_nn::init::normal(&mut rng, 1, cfg.dim, 0.1)),
        pos_table: params
            .register("bert.pos", wsccl_nn::init::normal(&mut rng, cfg.max_len, cfg.dim, 0.1)),
        dim: cfg.dim,
        max_len: cfg.max_len,
    };
    let mut trainer = Trainer::new(TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed));
    let mut t = BertTrainable {
        model: &model,
        ef: &ef,
        pool,
        decoys: cfg.decoys,
        num_edges: net.num_edges(),
    };
    trainer.run(&mut t, &mut params, cfg.epochs, observer);
    drop(t);

    let dim = model.dim;
    FnRepresenter::new("BERT", dim, move |_net, path, _dep| {
        let feats = ef.path(path);
        let mut g = Graph::new(&params);
        let h = model.encode(&mut g, &feats, None);
        let z = g.mean_rows(h);
        // Sum view (see DESIGN.md): magnitude carries path length.
        let mut v = g.value(z).data().to_vec();
        let n = path.len() as f64;
        v.iter_mut().for_each(|x| *x *= n);
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::SimTime;

    #[test]
    fn trains_and_represents() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 9));
        let pool: Vec<_> = ds.unlabeled.iter().take(15).cloned().collect();
        let rep = train(&ds.net, &pool, &BertConfig { epochs: 1, ..Default::default() });
        let v = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(0, 8, 0));
        assert_eq!(v.len(), rep.dim());
        assert!(v.iter().all(|x| x.is_finite()));
        // Different paths get different representations.
        let w = rep.represent(&ds.net, &pool[1].path, SimTime::from_hm(0, 8, 0));
        assert_ne!(v, w);
    }
}
