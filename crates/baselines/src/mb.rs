//! Memory Bank instance discrimination (Wu et al., CVPR 2018), re-implemented
//! with an LSTM path encoder as described in the paper's baseline list.
//!
//! Every unlabeled path is its own class. The encoder output is scored
//! against a memory bank of per-instance prototypes with a temperature-scaled
//! softmax over sampled negatives; prototypes are EMA-updated after each step.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_datagen::TemporalPathSample;
use wsccl_nn::layers::Lstm;
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::RoadNetwork;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{EdgeFeaturizer, FnRepresenter};

/// MB training configuration.
pub struct MbConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    pub temperature: f64,
    pub negatives: usize,
    /// EMA momentum for bank updates.
    pub momentum: f64,
    pub seed: u64,
}

impl Default for MbConfig {
    fn default() -> Self {
        Self {
            dim: 24,
            epochs: 3,
            lr: 3e-3,
            temperature: 0.3,
            negatives: 16,
            momentum: 0.5,
            seed: 0,
        }
    }
}

fn normalize(v: &mut [f64]) {
    let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 1e-12 {
        v.iter_mut().for_each(|x| *x /= n);
    }
}

/// Encode one path into its mean-pooled LSTM representation.
fn encode_path(
    g: &mut Graph<'_>,
    lstm: &Lstm,
    ef: &EdgeFeaturizer,
    sample: &TemporalPathSample,
) -> NodeId {
    let inputs: Vec<_> =
        ef.path(&sample.path).into_iter().map(|f| g.input(Tensor::row(f))).collect();
    let hs = lstm.forward(g, &inputs);
    let stacked = g.concat_rows(&hs);
    g.mean_rows(stacked)
}

/// Instance discrimination against the memory bank, as seen by the engine.
/// The Trainable owns the bank: `build_loss` reads prototypes, and the EMA
/// update runs in [`Trainable::after_step`] with the freshly stepped
/// parameters.
struct MbTrainable<'a> {
    lstm: &'a Lstm,
    ef: &'a EdgeFeaturizer,
    pool: &'a [TemporalPathSample],
    bank: Vec<Vec<f64>>,
    temperature: f64,
    negatives: usize,
    momentum: f64,
}

impl Trainable for MbTrainable<'_> {
    type Batch = usize;

    fn epoch_batches(&mut self, _epoch: u64, _rng: &mut StdRng) -> Vec<usize> {
        (0..self.pool.len()).collect()
    }

    fn build_loss(&self, g: &mut Graph<'_>, &i: &usize, rng: &mut StdRng) -> Option<NodeId> {
        let z = encode_path(g, self.lstm, self.ef, &self.pool[i]);

        // Scores against own prototype (positive) and sampled negatives.
        let vi = g.input(Tensor::row(self.bank[i].clone()));
        let pos = g.cos_sim(z, vi);
        let pos_t = g.scale(pos, 1.0 / self.temperature);
        let mut all = vec![pos_t];
        for _ in 0..self.negatives {
            let j = rng.random_range(0..self.pool.len());
            if j == i {
                continue;
            }
            let vj = g.input(Tensor::row(self.bank[j].clone()));
            let s = g.cos_sim(z, vj);
            all.push(g.scale(s, 1.0 / self.temperature));
        }
        let lse = g.log_sum_exp(&all);
        Some(g.sub(lse, pos_t))
    }

    fn after_step(&mut self, params: &Parameters, &i: &usize) {
        // EMA bank update with the (detached) new representation.
        let z_val = {
            let mut g = Graph::new(params);
            let z = encode_path(&mut g, self.lstm, self.ef, &self.pool[i]);
            g.value(z).data().to_vec()
        };
        for (b, v) in self.bank[i].iter_mut().zip(&z_val) {
            *b = self.momentum * *b + (1.0 - self.momentum) * v;
        }
        normalize(&mut self.bank[i]);
    }
}

/// Train the MB baseline on the unlabeled pool.
pub fn train(net: &RoadNetwork, pool: &[TemporalPathSample], cfg: &MbConfig) -> FnRepresenter {
    train_observed(net, pool, cfg, &mut NoopObserver)
}

/// [`train`] with a [`TrainObserver`] receiving per-step records.
pub fn train_observed(
    net: &RoadNetwork,
    pool: &[TemporalPathSample],
    cfg: &MbConfig,
    observer: &mut dyn TrainObserver,
) -> FnRepresenter {
    assert!(!pool.is_empty(), "MB needs a non-empty pool");
    let ef = EdgeFeaturizer::new(net);
    let mut params = Parameters::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3B);
    let lstm = Lstm::new(&mut params, &mut rng, "mb.lstm", ef.dim(), cfg.dim, 1);

    // Bank initialized with unit random vectors.
    let bank: Vec<Vec<f64>> = (0..pool.len())
        .map(|_| {
            let mut v: Vec<f64> = (0..cfg.dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            normalize(&mut v);
            v
        })
        .collect();

    let mut trainer = Trainer::new(TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed));
    let mut t = MbTrainable {
        lstm: &lstm,
        ef: &ef,
        pool,
        bank,
        temperature: cfg.temperature,
        negatives: cfg.negatives,
        momentum: cfg.momentum,
    };
    trainer.run(&mut t, &mut params, cfg.epochs, observer);
    drop(t);

    let dim = cfg.dim;
    FnRepresenter::new("MB", dim, move |_net, path, _dep| {
        let mut g = Graph::new(&params);
        let inputs: Vec<_> = ef.path(path).into_iter().map(|f| g.input(Tensor::row(f))).collect();
        let hs = lstm.forward(&mut g, &inputs);
        let stacked = g.concat_rows(&hs);
        let z = g.mean_rows(stacked);
        // Sum view: magnitude carries path length (training is cosine-based
        // and scale-invariant, so this is a pure inference-time choice shared
        // by all sequence encoders; see DESIGN.md).
        let mut v = g.value(z).data().to_vec();
        let n = path.len() as f64;
        v.iter_mut().for_each(|x| *x *= n);
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::SimTime;

    #[test]
    fn trains_and_distinguishes_instances() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 8));
        let pool: Vec<_> = ds.unlabeled.iter().take(20).cloned().collect();
        let rep = train(&ds.net, &pool, &MbConfig { epochs: 2, ..Default::default() });
        let a = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(0, 8, 0));
        let b = rep.represent(&ds.net, &pool[1].path, SimTime::from_hm(0, 8, 0));
        assert_eq!(a.len(), rep.dim());
        assert_ne!(a, b, "distinct instances should differ");
        assert!(a.iter().all(|x| x.is_finite()));
    }
}
