//! Memory Bank instance discrimination (Wu et al., CVPR 2018), re-implemented
//! with an LSTM path encoder as described in the paper's baseline list.
//!
//! Every unlabeled path is its own class. The encoder output is scored
//! against a memory bank of per-instance prototypes with a temperature-scaled
//! softmax over sampled negatives; prototypes are EMA-updated after each step.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_datagen::TemporalPathSample;
use wsccl_nn::layers::Lstm;
use wsccl_nn::optim::Adam;
use wsccl_nn::{Graph, Parameters, Tensor};
use wsccl_roadnet::RoadNetwork;

use crate::common::{EdgeFeaturizer, FnRepresenter};

/// MB training configuration.
pub struct MbConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    pub temperature: f64,
    pub negatives: usize,
    /// EMA momentum for bank updates.
    pub momentum: f64,
    pub seed: u64,
}

impl Default for MbConfig {
    fn default() -> Self {
        Self { dim: 24, epochs: 3, lr: 3e-3, temperature: 0.3, negatives: 16, momentum: 0.5, seed: 0 }
    }
}

fn normalize(v: &mut [f64]) {
    let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 1e-12 {
        v.iter_mut().for_each(|x| *x /= n);
    }
}

/// Train the MB baseline on the unlabeled pool.
pub fn train(net: &RoadNetwork, pool: &[TemporalPathSample], cfg: &MbConfig) -> FnRepresenter {
    assert!(!pool.is_empty(), "MB needs a non-empty pool");
    let ef = EdgeFeaturizer::new(net);
    let mut params = Parameters::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3B);
    let lstm = Lstm::new(&mut params, &mut rng, "mb.lstm", ef.dim(), cfg.dim, 1);
    let mut opt = Adam::new(cfg.lr);

    // Bank initialized with unit random vectors.
    let mut bank: Vec<Vec<f64>> = (0..pool.len())
        .map(|_| {
            let mut v: Vec<f64> =
                (0..cfg.dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            normalize(&mut v);
            v
        })
        .collect();

    for _ in 0..cfg.epochs {
        for i in 0..pool.len() {
            let mut g = Graph::new(&params);
            let inputs: Vec<_> = ef
                .path(&pool[i].path)
                .into_iter()
                .map(|f| g.input(Tensor::row(f)))
                .collect();
            let hs = lstm.forward(&mut g, &inputs);
            let stacked = g.concat_rows(&hs);
            let z = g.mean_rows(stacked);

            // Scores against own prototype (positive) and sampled negatives.
            let vi = g.input(Tensor::row(bank[i].clone()));
            let pos = g.cos_sim(z, vi);
            let pos_t = g.scale(pos, 1.0 / cfg.temperature);
            let mut all = vec![pos_t];
            for _ in 0..cfg.negatives {
                let j = rng.random_range(0..pool.len());
                if j == i {
                    continue;
                }
                let vj = g.input(Tensor::row(bank[j].clone()));
                let s = g.cos_sim(z, vj);
                all.push(g.scale(s, 1.0 / cfg.temperature));
            }
            let lse = g.log_sum_exp(&all);
            let nll = g.sub(lse, pos_t);
            g.backward(nll);
            let grads = g.into_grads();
            opt.step(&mut params, &grads);

            // EMA bank update with the (detached) new representation.
            let z_val = {
                let mut g2 = Graph::new(&params);
                let inputs: Vec<_> = ef
                    .path(&pool[i].path)
                    .into_iter()
                    .map(|f| g2.input(Tensor::row(f)))
                    .collect();
                let hs = lstm.forward(&mut g2, &inputs);
                let stacked = g2.concat_rows(&hs);
                let z = g2.mean_rows(stacked);
                g2.value(z).data().to_vec()
            };
            for (b, v) in bank[i].iter_mut().zip(&z_val) {
                *b = cfg.momentum * *b + (1.0 - cfg.momentum) * v;
            }
            normalize(&mut bank[i]);
        }
    }

    let dim = cfg.dim;
    FnRepresenter::new("MB", dim, move |_net, path, _dep| {
        let mut g = Graph::new(&params);
        let inputs: Vec<_> =
            ef.path(path).into_iter().map(|f| g.input(Tensor::row(f))).collect();
        let hs = lstm.forward(&mut g, &inputs);
        let stacked = g.concat_rows(&hs);
        let z = g.mean_rows(stacked);
        // Sum view: magnitude carries path length (training is cosine-based
        // and scale-invariant, so this is a pure inference-time choice shared
        // by all sequence encoders; see DESIGN.md).
        let mut v = g.value(z).data().to_vec();
        let n = path.len() as f64;
        v.iter_mut().for_each(|x| *x *= n);
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::SimTime;

    #[test]
    fn trains_and_distinguishes_instances() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 8));
        let pool: Vec<_> = ds.unlabeled.iter().take(20).cloned().collect();
        let rep = train(&ds.net, &pool, &MbConfig { epochs: 2, ..Default::default() });
        let a = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(0, 8, 0));
        let b = rep.represent(&ds.net, &pool[1].path, SimTime::from_hm(0, 8, 0));
        assert_eq!(a.len(), rep.dim());
        assert_ne!(a, b, "distinct instances should differ");
        assert!(a.iter().all(|x| x.is_finite()));
    }
}
