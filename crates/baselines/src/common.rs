//! Shared baseline infrastructure: raw edge featurization, time features,
//! and the closure-based representer wrapper.

use parking_lot::Mutex;

use wsccl_core::PathRepresenter;
use wsccl_roadnet::{EdgeId, Path, RoadNetwork, RoadType};
use wsccl_traffic::SimTime;

/// Raw (non-learned) per-edge feature vectors used by the baselines that do
/// not train their own categorical embeddings: one-hot road type, normalized
/// lane count, one-way and signal flags, and normalized length.
pub struct EdgeFeaturizer {
    features: Vec<Vec<f64>>,
}

impl EdgeFeaturizer {
    /// Width of the raw feature vector.
    pub const DIM: usize = RoadType::ALL.len() + 4;

    pub fn new(net: &RoadNetwork) -> Self {
        let features = net
            .edges()
            .iter()
            .map(|e| {
                let mut v = vec![0.0; Self::DIM];
                v[e.features.road_type.index()] = 1.0;
                let base = RoadType::ALL.len();
                v[base] = e.features.lanes as f64 / 4.0;
                v[base + 1] = e.features.one_way as u8 as f64;
                v[base + 2] = e.features.signals as u8 as f64;
                v[base + 3] = (e.length / 1000.0).min(2.0);
                v
            })
            .collect();
        Self { features }
    }

    pub fn dim(&self) -> usize {
        Self::DIM
    }

    pub fn edge(&self, e: EdgeId) -> &[f64] {
        &self.features[e.index()]
    }

    /// Feature sequence for a path.
    pub fn path(&self, path: &Path) -> Vec<Vec<f64>> {
        path.edges().iter().map(|&e| self.features[e.index()].to_vec()).collect()
    }
}

/// Cyclic time-of-day / day-of-week features used by the supervised baselines
/// that condition on departure time (DeepGTT, HMTRL, PathRank, STGCN).
pub const TIME_DIM: usize = 5;

/// `[sin(hour), cos(hour), sin(day), cos(day), is_weekday]`.
pub fn time_features(t: SimTime) -> Vec<f64> {
    let hour = t.hour_f() / 24.0 * std::f64::consts::TAU;
    let day = t.day() as f64 / 7.0 * std::f64::consts::TAU;
    vec![hour.sin(), hour.cos(), day.sin(), day.cos(), t.is_weekday() as u8 as f64]
}

type ReprFn = Box<dyn FnMut(&RoadNetwork, &Path, SimTime) -> Vec<f64> + Send>;

/// A [`PathRepresenter`] built from a closure over a trained model.
///
/// The closure typically captures the model's parameter store; a mutex makes
/// the whole representer `Sync` so the bench harness can share it.
pub struct FnRepresenter {
    name: String,
    dim: usize,
    f: Mutex<ReprFn>,
}

impl FnRepresenter {
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        f: impl FnMut(&RoadNetwork, &Path, SimTime) -> Vec<f64> + Send + 'static,
    ) -> Self {
        Self { name: name.into(), dim, f: Mutex::new(Box::new(f)) }
    }
}

impl PathRepresenter for FnRepresenter {
    fn dim(&self) -> usize {
        self.dim
    }

    fn represent(&self, net: &RoadNetwork, path: &Path, departure: SimTime) -> Vec<f64> {
        let v = (self.f.lock())(net, path, departure);
        debug_assert_eq!(v.len(), self.dim, "representer '{}' produced wrong width", self.name);
        v
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Direct travel-time predictors (GCN / STGCN): these baselines sum per-edge
/// time estimates instead of producing a generic representation, so they only
/// participate in the travel-time task (§VII-A.3).
pub trait TravelTimePredictor {
    fn predict(&self, net: &RoadNetwork, path: &Path, departure: SimTime) -> f64;
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::CityProfile;

    #[test]
    fn featurizer_produces_fixed_width_rows() {
        let net = CityProfile::Aalborg.generate(1);
        let f = EdgeFeaturizer::new(&net);
        for i in 0..net.num_edges().min(50) {
            let v = f.edge(EdgeId(i as u32));
            assert_eq!(v.len(), EdgeFeaturizer::DIM);
            // Exactly one road-type flag set.
            let ones = v[..RoadType::ALL.len()].iter().filter(|&&x| x == 1.0).count();
            assert_eq!(ones, 1);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn time_features_are_cyclic() {
        let a = time_features(SimTime::from_hm(0, 0, 0));
        let b = time_features(SimTime::from_hm(0, 23, 59));
        // Near-midnight wraps close to midnight.
        let d: f64 = a[..2].iter().zip(&b[..2]).map(|(x, y)| (x - y).abs()).sum();
        assert!(d < 0.1, "cyclic encoding should wrap, diff {d}");
        let weekend = time_features(SimTime::from_hm(6, 12, 0));
        assert_eq!(weekend[4], 0.0);
    }

    #[test]
    fn fn_representer_wraps_closures() {
        let rep = FnRepresenter::new("const", 3, |_, _, _| vec![1.0, 2.0, 3.0]);
        let net = CityProfile::Aalborg.generate(1);
        let path = Path::new_unchecked(vec![EdgeId(0)]);
        assert_eq!(rep.represent(&net, &path, SimTime::from_hm(0, 8, 0)), vec![1.0, 2.0, 3.0]);
        assert_eq!(rep.name(), "const");
        assert_eq!(rep.dim(), 3);
    }
}
