//! InfoGraph (Sun et al., ICLR 2020), unsupervised variant: a path is treated
//! as a graph whose "nodes" are its edges; an MLP encoder produces per-edge
//! local representations, mean-pooled into a global representation. A
//! dot-product discriminator maximizes local–global mutual information: the
//! global vector should score high against its own edges and low against
//! edges of other paths in the batch (Jensen-Shannon estimator in BCE form).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_datagen::TemporalPathSample;
use wsccl_nn::layers::Linear;
use wsccl_nn::{Graph, NodeId, Parameters, Tensor};
use wsccl_roadnet::RoadNetwork;
use wsccl_train::{NoopObserver, TrainObserver, TrainSpec, Trainable, Trainer};

use crate::common::{EdgeFeaturizer, FnRepresenter};

/// InfoGraph configuration.
pub struct InfoGraphConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    pub batch: usize,
    /// Edge samples per side per query.
    pub samples: usize,
    pub seed: u64,
}

impl Default for InfoGraphConfig {
    fn default() -> Self {
        Self { dim: 24, epochs: 3, lr: 3e-3, batch: 8, samples: 4, seed: 0 }
    }
}

/// Per-edge local representation and pooled global representation.
fn encode(
    g: &mut Graph<'_>,
    l1: &Linear,
    l2: &Linear,
    feats: &[Vec<f64>],
) -> (NodeId, Vec<NodeId>) {
    let locals: Vec<NodeId> = feats
        .iter()
        .map(|f| {
            let x = g.input(Tensor::row(f.clone()));
            let h = l1.forward(g, x);
            let h = g.relu(h);
            l2.forward(g, h)
        })
        .collect();
    let stacked = g.concat_rows(&locals);
    let global = g.mean_rows(stacked);
    (global, locals)
}

/// Local–global MI maximization, as seen by the engine. Each step samples its
/// own batch of paths from the per-step shard RNG.
struct InfoGraphTrainable<'a> {
    l1: &'a Linear,
    l2: &'a Linear,
    ef: &'a EdgeFeaturizer,
    pool: &'a [TemporalPathSample],
    batch: usize,
    samples: usize,
    steps: usize,
}

impl Trainable for InfoGraphTrainable<'_> {
    type Batch = ();

    fn epoch_batches(&mut self, _epoch: u64, _rng: &mut StdRng) -> Vec<()> {
        vec![(); self.steps]
    }

    fn build_loss(&self, g: &mut Graph<'_>, _batch: &(), rng: &mut StdRng) -> Option<NodeId> {
        let batch: Vec<&TemporalPathSample> =
            (0..self.batch).map(|_| &self.pool[rng.random_range(0..self.pool.len())]).collect();
        let encoded: Vec<(NodeId, Vec<NodeId>)> =
            batch.iter().map(|s| encode(g, self.l1, self.l2, &self.ef.path(&s.path))).collect();

        let mut terms = Vec::new();
        for (i, (global, locals)) in encoded.iter().enumerate() {
            for _ in 0..self.samples {
                // Positive: own edge.
                let own = locals[rng.random_range(0..locals.len())];
                let pos = g.dot(*global, own);
                let pos_sig = g.sigmoid(pos);
                let pos_ln = g.ln(pos_sig);
                terms.push(pos_ln);
                // Negative: edge of a different path in the batch.
                if encoded.len() > 1 {
                    let mut j = rng.random_range(0..encoded.len());
                    if j == i {
                        j = (j + 1) % encoded.len();
                    }
                    let other = encoded[j].1[rng.random_range(0..encoded[j].1.len())];
                    let neg = g.dot(*global, other);
                    let neg_arg = g.scale(neg, -1.0);
                    let neg_sig = g.sigmoid(neg_arg);
                    let neg_ln = g.ln(neg_sig);
                    terms.push(neg_ln);
                }
            }
        }
        let mean = g.mean_scalars(&terms);
        Some(g.scale(mean, -1.0))
    }
}

/// Train InfoGraph on the unlabeled pool.
pub fn train(
    net: &RoadNetwork,
    pool: &[TemporalPathSample],
    cfg: &InfoGraphConfig,
) -> FnRepresenter {
    train_observed(net, pool, cfg, &mut NoopObserver)
}

/// [`train`] with a [`TrainObserver`] receiving per-step records.
pub fn train_observed(
    net: &RoadNetwork,
    pool: &[TemporalPathSample],
    cfg: &InfoGraphConfig,
    observer: &mut dyn TrainObserver,
) -> FnRepresenter {
    assert!(!pool.is_empty(), "InfoGraph needs a non-empty pool");
    let ef = EdgeFeaturizer::new(net);
    let mut params = Parameters::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x16F0);
    let l1 = Linear::new(&mut params, &mut rng, "ig.l1", ef.dim(), cfg.dim);
    let l2 = Linear::new(&mut params, &mut rng, "ig.l2", cfg.dim, cfg.dim);

    let mut trainer = Trainer::new(TrainSpec::adam(cfg.lr, cfg.epochs, cfg.seed));
    let mut t = InfoGraphTrainable {
        l1: &l1,
        l2: &l2,
        ef: &ef,
        pool,
        batch: cfg.batch,
        samples: cfg.samples,
        steps: (pool.len() / cfg.batch).max(1),
    };
    trainer.run(&mut t, &mut params, cfg.epochs, observer);
    drop(t);

    let dim = cfg.dim;
    FnRepresenter::new("InfoGraph", dim, move |_net, path, _dep| {
        let mut g = Graph::new(&params);
        let feats = ef.path(path);
        let locals: Vec<NodeId> = feats
            .iter()
            .map(|f| {
                let x = g.input(Tensor::row(f.clone()));
                let h = l1.forward(&mut g, x);
                let h = g.relu(h);
                l2.forward(&mut g, h)
            })
            .collect();
        let stacked = g.concat_rows(&locals);
        let global = g.mean_rows(stacked);
        // Sum view (see DESIGN.md): magnitude carries path length.
        let mut v = g.value(global).data().to_vec();
        let n = path.len() as f64;
        v.iter_mut().for_each(|x| *x *= n);
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_core::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::SimTime;

    #[test]
    fn trains_and_represents() {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Harbin, 10));
        let pool: Vec<_> = ds.unlabeled.iter().take(20).cloned().collect();
        let rep = train(&ds.net, &pool, &InfoGraphConfig { epochs: 1, ..Default::default() });
        let v = rep.represent(&ds.net, &pool[0].path, SimTime::from_hm(1, 8, 0));
        assert_eq!(v.len(), rep.dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
