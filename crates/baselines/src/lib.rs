//! The baseline methods of the paper's evaluation (§VII-A.3).
//!
//! Seven unsupervised methods:
//! * [`node2vec_path`] — node2vec edge representations averaged over the path.
//! * [`dgi`] — Deep Graph InfoMax: a mean-aggregation GCN encoder trained to
//!   discriminate true node embeddings from feature-shuffled corruptions
//!   against a global summary.
//! * [`gmi`] — Graphical Mutual Information: node embeddings trained to agree
//!   with their own neighborhood's raw features and disagree with random
//!   nodes' features.
//! * [`mb`] — Memory Bank instance discrimination with an LSTM path encoder.
//! * [`bert`] — a small self-attention encoder trained by masked-edge
//!   prediction over paths-as-sentences.
//! * [`infograph`] — path-as-graph local–global mutual information
//!   maximization.
//! * [`pim`] — unsupervised path representation learning via global/local MI
//!   with a single positive per query (the paper's closest prior work), plus
//!   the PIM-Temporal variant (Table IX) that concatenates a frozen temporal
//!   embedding.
//!
//! Five supervised methods:
//! * [`pathrank`] — GRU path encoder regressing a task label; also supports
//!   initialization from a pre-trained WSCCL encoder (Fig. 7).
//! * [`deepgtt`] — travel-time-specific generative-style model: per-edge
//!   speed MLP conditioned on departure time.
//! * [`hmtrl`] — GRU + self-attention multi-task route representation.
//! * [`gcn`] / [`stgcn`] — graph-convolutional per-edge travel-time
//!   predictors (path time = sum of edge times); STGCN adds temporal input.
//!   These two predict travel time directly and do not produce generic
//!   representations (the paper excludes them from ranking/recommendation).

pub mod bert;
pub mod common;
pub mod deepgtt;
pub mod dgi;
pub mod gcn;
pub mod gmi;
pub mod hmtrl;
pub mod infograph;
pub mod mb;
pub mod node2vec_path;
pub mod pathrank;
pub mod pim;

pub use common::{EdgeFeaturizer, FnRepresenter, TravelTimePredictor};
