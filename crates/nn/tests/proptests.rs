//! Property-based tests for the tensor and autodiff layers.

use proptest::prelude::*;
use wsccl_nn::{Graph, Parameters, Tensor};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, len)
}

proptest! {
    /// Matrix multiplication distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes((a, b, c) in (small_vec(6), small_vec(6), small_vec(6))) {
        let a = Tensor::from_vec(2, 3, a);
        let b = Tensor::from_vec(2, 3, b);
        let c = Tensor::from_vec(3, 2, c);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Cosine similarity is bounded in [-1, 1] and symmetric.
    #[test]
    fn cosine_bounded_and_symmetric((a, b) in (small_vec(5), small_vec(5))) {
        let a = Tensor::row(a);
        let b = Tensor::row(b);
        let c1 = a.cosine(&b);
        let c2 = b.cosine(&a);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c1));
        prop_assert!((c1 - c2).abs() < 1e-12);
    }

    /// Cosine similarity is invariant to positive scaling.
    #[test]
    fn cosine_scale_invariant((a, b, s) in (small_vec(4), small_vec(4), 0.1f64..10.0)) {
        let a = Tensor::row(a);
        let b = Tensor::row(b);
        let c1 = a.cosine(&b);
        let c2 = a.scale(s).cosine(&b);
        prop_assert!((c1 - c2).abs() < 1e-9);
    }

    /// mean_rows of a constant matrix is that constant.
    #[test]
    fn mean_rows_of_constant(v in -100.0f64..100.0, rows in 1usize..8, cols in 1usize..8) {
        let t = Tensor::full(rows, cols, v);
        let m = t.mean_rows();
        prop_assert_eq!(m.shape(), (1, cols));
        for x in m.data() {
            prop_assert!((x - v).abs() < 1e-9);
        }
    }

    /// Softmax rows sum to one and are positive.
    #[test]
    fn softmax_rows_is_distribution(data in small_vec(12)) {
        let mut p = Parameters::new();
        let mut g = Graph::new(&mut p);
        let x = g.input(Tensor::from_vec(3, 4, data));
        let s = g.softmax_rows(x);
        let v = g.value(s);
        for r in 0..3 {
            let row = v.row_slice(r);
            prop_assert!(row.iter().all(|&x| x > 0.0));
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// log_sum_exp is ≥ max input and ≤ max + ln(n).
    #[test]
    fn log_sum_exp_bounds(vals in proptest::collection::vec(-50.0f64..50.0, 1..6)) {
        let mut p = Parameters::new();
        let mut g = Graph::new(&mut p);
        let nodes: Vec<_> = vals.iter().map(|&v| g.input(Tensor::scalar(v))).collect();
        let l = g.log_sum_exp(&nodes);
        let out = g.value(l).item();
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(out >= max - 1e-9);
        prop_assert!(out <= max + (vals.len() as f64).ln() + 1e-9);
    }

    /// Cross entropy is non-negative and equals -ln(softmax[target]).
    #[test]
    fn cross_entropy_nonnegative(vals in small_vec(5), target in 0usize..5) {
        let mut p = Parameters::new();
        let mut g = Graph::new(&mut p);
        let x = g.input(Tensor::row(vals.clone()));
        let ce = g.cross_entropy(x, target);
        let out = g.value(ce).item();
        prop_assert!(out >= -1e-9);
        let m = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let z: f64 = vals.iter().map(|v| (v - m).exp()).sum();
        let manual = -( (vals[target] - m).exp() / z ).ln();
        prop_assert!((out - manual).abs() < 1e-9);
    }

    /// Backward through a linear chain gives the product of local derivatives.
    #[test]
    fn chain_rule_scalar(x in -2.0f64..2.0) {
        // f(w) = tanh(sigmoid(w)); f'(w) = (1 - tanh²(s)) · s(1-s)
        let mut p = Parameters::new();
        let w = p.register("w", Tensor::scalar(x));
        let mut g = Graph::new(&p);
        let wn = g.param(w);
        let s = g.sigmoid(wn);
        let t = g.tanh(s);
        let (_, grads) = g.finish(t);
        let sv = 1.0 / (1.0 + (-x).exp());
        let tv = sv.tanh();
        let expect = (1.0 - tv * tv) * sv * (1.0 - sv);
        prop_assert!((grads.grad(w).unwrap().item() - expect).abs() < 1e-9);
    }
}
