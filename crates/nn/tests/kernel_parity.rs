//! Randomized scalar-vs-SIMD backend parity for every [`Kernels`] method.
//!
//! The f64 kernels carry a bitwise contract: on any shape — including column
//! counts whose `% 8` and `% 4` remainders exercise every vector tail — the
//! SIMD backend must reproduce the scalar oracle EXACTLY (0 ULP), because
//! training trajectories must not depend on the backend. The f32 inference
//! kernels are an error-bounded fast path instead: the AVX2 forms use fused
//! multiply-adds (matmul) or evaluate transcendentals in f64 (LSTM gates), so
//! they are compared against the scalar oracle under an explicit, documented
//! ULP/forward-error budget rather than bit equality.

use proptest::prelude::*;
use wsccl_nn::kernels::{Kernels, ScalarKernels, SimdKernels};

const SCALAR: ScalarKernels = ScalarKernels;
const SIMD: SimdKernels = SimdKernels;

fn vecf(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, len..=len)
}

fn vecf32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len..=len)
}

/// Random (m, k, n) with sides up to 33: covers `% 8`, `% 4`, and `% 16`
/// remainders of every blocked kernel, plus the m = 1 hot shapes.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..34, 1usize..34)
}

/// ULP distance between two f32 values of the same sign regime.
fn ulp_f32(a: f32, b: f32) -> u32 {
    let (ia, ib) = (a.to_bits() as i32, b.to_bits() as i32);
    // Map the bit patterns onto a monotonic integer line (sign-magnitude →
    // two's complement) so the distance is meaningful across ±0.
    let fix = |i: i32| if i < 0 { i32::MIN - i } else { i };
    fix(ia).abs_diff(fix(ib))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---------------------------------------------------------- f64: bitwise

    #[test]
    fn matmul_acc_parity((m, k, n) in dims(), seed in any::<u16>()) {
        let s = f64::from(seed) * 1e-3;
        let a: Vec<f64> = (0..m * k).map(|i| ((i as f64 + s) * 0.37).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| ((i as f64 - s) * 0.11).cos()).collect();
        let mut so: Vec<f64> = (0..m * n).map(|i| i as f64 * 1e-2).collect();
        let mut vo = so.clone();
        SCALAR.matmul_acc(m, k, n, &a, &b, &mut so);
        SIMD.matmul_acc(m, k, n, &a, &b, &mut vo);
        prop_assert_eq!(so, vo);
    }

    #[test]
    fn matmul_nt_acc_parity((m, d, n) in dims(), a in vecf(6 * 34), b in vecf(34 * 34)) {
        let a = &a[..m * d];
        let b = &b[..n * d];
        let mut so = vec![0.25f64; m * n];
        let mut vo = so.clone();
        SCALAR.matmul_nt_acc(m, d, n, a, b, &mut so);
        SIMD.matmul_nt_acc(m, d, n, a, b, &mut vo);
        prop_assert_eq!(so, vo);
    }

    #[test]
    fn matmul_tn_acc_parity((k, m, n) in dims(), a in vecf(6 * 34), b in vecf(6 * 34)) {
        let a = &a[..k * m];
        let b = &b[..k * n];
        let mut so = vec![-0.5f64; m * n];
        let mut vo = so.clone();
        SCALAR.matmul_tn_acc(k, m, n, a, b, &mut so);
        SIMD.matmul_tn_acc(k, m, n, a, b, &mut vo);
        prop_assert_eq!(so, vo);
    }

    #[test]
    fn elementwise_parity(len in 1usize..70, a in vecf(70), b in vecf(70), c in -3.0f64..3.0) {
        let (a, b) = (&a[..len], &b[..len]);
        let run = |kn: &dyn Kernels| {
            let mut out = vec![0.0; len];
            kn.add_into(a, b, &mut out);
            let mut acc = out.clone();
            kn.sub_into(a, b, &mut out);
            kn.add_assign(&mut acc, &out);
            kn.mul_into(a, b, &mut out);
            kn.mul_assign(&mut acc, &out);
            kn.scale_assign(&mut acc, c);
            kn.axpy(&mut acc, c, a);
            kn.add_prod(&mut acc, a, b);
            acc
        };
        prop_assert_eq!(run(&SCALAR), run(&SIMD));
    }

    #[test]
    fn dot_parity(len in 1usize..70, a in vecf(70), b in vecf(70)) {
        prop_assert_eq!(
            SCALAR.dot(&a[..len], &b[..len]).to_bits(),
            SIMD.dot(&a[..len], &b[..len]).to_bits()
        );
    }

    #[test]
    fn row_ops_parity((n, d) in (1usize..6, 1usize..34), rows in vecf(6 * 34), row in vecf(34)) {
        let rows = &rows[..n * d];
        let row = &row[..d];
        let run = |kn: &dyn Kernels| {
            let mut dst = rows.to_vec();
            kn.add_row_assign(n, d, &mut dst, row);
            let mut acc = row.to_vec();
            kn.add_rows_acc(n, d, rows, &mut acc);
            (dst, acc)
        };
        prop_assert_eq!(run(&SCALAR), run(&SIMD));
    }

    #[test]
    fn activations_parity(len in 1usize..70, xs in vecf(70)) {
        let fns: [fn(&dyn Kernels, &mut [f64]); 3] = [
            |k, v| k.sigmoid_inplace(v),
            |k, v| k.tanh_inplace(v),
            |k, v| k.relu_inplace(v),
        ];
        for f in fns {
            let mut s = xs[..len].to_vec();
            let mut v = s.clone();
            f(&SCALAR, &mut s);
            f(&SIMD, &mut v);
            prop_assert_eq!(s, v);
        }
    }

    #[test]
    fn adam_parity(len in 1usize..70, g in vecf(70), m0 in vecf(70), v0 in vecf(70), p0 in vecf(70)) {
        let run = |kn: &dyn Kernels| {
            let mut m = m0[..len].to_vec();
            let mut v: Vec<f64> = v0[..len].iter().map(|x| x.abs() * 1e-2).collect();
            let mut p = p0[..len].to_vec();
            kn.adam_moments(&mut m, &mut v, &g[..len], 0.9, 0.999);
            kn.adam_update(&mut p, &m, &v, 3e-3, 0.1, 1e-3, 1e-8);
            (m, v, p)
        };
        prop_assert_eq!(run(&SCALAR), run(&SIMD));
    }

    #[test]
    fn lstm_gates_parity((n, hidden) in (1usize..4, 1usize..20), z in vecf(3 * 19 * 4), c in vecf(3 * 19)) {
        let z = &z[..n * 4 * hidden];
        let c_old = &c[..n * hidden];
        let run = |kn: &dyn Kernels| {
            let mut saved = vec![0.0; n * 5 * hidden];
            let mut out = vec![0.0; n * 2 * hidden];
            kn.lstm_gates(n, hidden, z, c_old, &mut saved, &mut out);
            (saved, out)
        };
        let (s_saved, s_out) = run(&SCALAR);
        let (v_saved, v_out) = run(&SIMD);
        prop_assert_eq!(&s_saved, &v_saved);
        prop_assert_eq!(&s_out, &v_out);

        // Backward through the same saved gates with a random-ish adjoint.
        let adj: Vec<f64> = s_out.iter().map(|x| (x * 7.3).sin()).collect();
        let run_bwd = |kn: &dyn Kernels| {
            let mut dz = vec![0.0; n * 4 * hidden];
            let mut dc = vec![0.0; n * hidden];
            kn.lstm_gates_backward(n, hidden, &s_saved, &adj, c_old, &mut dz, &mut dc);
            (dz, dc)
        };
        prop_assert_eq!(run_bwd(&SCALAR), run_bwd(&SIMD));
    }

    // ------------------------------------------------- f32: ULP/error budget

    /// Budget: the AVX2 form fuses each `acc += a·b` step (one rounding where
    /// the scalar oracle has two), so per output element the difference is
    /// bounded by the classic forward-error envelope
    /// `(k + 2) · ε_f32 · (|out₀| + Σ|aᵢ·bᵢ|)`.
    #[test]
    fn matmul_f32_error_budget((m, k, n) in dims(), a in vecf32(6 * 34), b in vecf32(34 * 34)) {
        let a = &a[..m * k];
        let b = &b[..k * n];
        let mut so = vec![0.1f32; m * n];
        let mut vo = so.clone();
        SCALAR.matmul_acc_f32(m, k, n, a, b, &mut so);
        SIMD.matmul_acc_f32(m, k, n, a, b, &mut vo);
        for i in 0..m {
            for j in 0..n {
                let mag: f32 =
                    0.1 + (0..k).map(|kk| (a[i * k + kk] * b[kk * n + j]).abs()).sum::<f32>();
                let budget = (k as f32 + 2.0) * f32::EPSILON * mag;
                let (s, v) = (so[i * n + j], vo[i * n + j]);
                prop_assert!(
                    (s - v).abs() <= budget,
                    "out[{i},{j}]: scalar {s}, simd {v}, budget {budget}"
                );
            }
        }
    }

    /// Elementwise f32 kernels perform the identical per-element operation in
    /// both backends (no reductions, no FMA), so they stay bitwise equal.
    #[test]
    fn elementwise_f32_parity(len in 1usize..70, a in vecf32(70), b in vecf32(70), c in -3.0f32..3.0) {
        let run = |kn: &dyn Kernels| {
            let mut dst = a[..len].to_vec();
            kn.add_assign_f32(&mut dst, &b[..len]);
            kn.scale_assign_f32(&mut dst, c);
            dst
        };
        prop_assert_eq!(run(&SCALAR), run(&SIMD));
    }

    /// Budget: the scalar oracle evaluates the gates with f32 libm while the
    /// AVX2 form widens to f64, runs the shared `vmath` pipeline, and rounds
    /// once — each gate differs by ≲2 f32 ULP. `c_new = f·c + i·g` can
    /// cancel, so its error is bounded against the PRE-cancellation magnitude
    /// `|f·c| + |i·g| ≤ |c₀| + 1` (gates are bounded by 1), and `h` inherits
    /// that through the 1-Lipschitz `tanh` times `o < 1`. Either 16 ULP or
    /// that forward envelope must hold — both far inside the ~1e-4-relative
    /// drift budget of the whole inference path.
    #[test]
    fn lstm_infer_f32_ulp(hidden in 1usize..20, z in vecf32(4 * 19), c0 in vecf32(19)) {
        let z = &z[..4 * hidden];
        let run = |kn: &dyn Kernels| {
            let mut c = c0[..hidden].to_vec();
            let mut h = vec![0.0f32; hidden];
            kn.lstm_gates_infer_f32(hidden, z, &mut c, &mut h);
            (c, h)
        };
        let (sc, sh) = run(&SCALAR);
        let (vc, vh) = run(&SIMD);
        for k in 0..hidden {
            let envelope = 8.0 * f32::EPSILON * (c0[k].abs() + 1.0);
            let cd = (sc[k] - vc[k]).abs();
            prop_assert!(
                ulp_f32(sc[k], vc[k]) <= 16 || cd <= envelope,
                "c[{k}]: scalar {}, simd {}, envelope {envelope}",
                sc[k],
                vc[k]
            );
            let hd = (sh[k] - vh[k]).abs();
            prop_assert!(
                ulp_f32(sh[k], vh[k]) <= 16 || hd <= envelope + 8.0 * f32::EPSILON,
                "h[{k}]: scalar {}, simd {}, envelope {envelope}",
                sh[k],
                vh[k]
            );
        }
    }
}
