//! Finite-difference verification of every autodiff op and layer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsccl_nn::gradcheck::assert_gradients_close;
use wsccl_nn::layers::{Embedding, Gru, Linear, Lstm, SelfAttention};
use wsccl_nn::{Activation, Graph, Parameters, Tensor, TensorPool};

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-5;

fn rng() -> StdRng {
    StdRng::seed_from_u64(42)
}

fn rand_tensor(rng: &mut StdRng, r: usize, c: usize) -> Tensor {
    wsccl_nn::init::uniform(rng, r, c, -1.0, 1.0)
}

#[test]
fn matmul_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 2, 3));
    let b = p.register("b", rand_tensor(&mut rng, 3, 4));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let c = g.matmul(an, bn);
            let l = g.sum_all(c);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn matmul_nt_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 2, 3));
    let b = p.register("b", rand_tensor(&mut rng, 4, 3));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let c = g.matmul_nt(an, bn);
            // Square to make the loss nonlinear in each factor.
            let sq = g.mul(c, c);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn elementwise_ops_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 3, 3));
    let b = p.register("b", rand_tensor(&mut rng, 3, 3));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let s = g.add(an, bn);
            let d = g.sub(s, bn);
            let m = g.mul(d, bn);
            let sc = g.scale(m, 0.7);
            let l = g.sum_all(sc);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn activations_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 2, 4));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let s = g.sigmoid(an);
            let t = g.tanh(s);
            let l = g.sum_all(t);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn relu_grad_away_from_kink() {
    let mut p = Parameters::new();
    // Keep values away from 0 so finite differences are valid.
    let a = p.register("a", Tensor::from_vec(1, 4, vec![0.5, -0.5, 1.5, -2.0]));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let r = g.relu(an);
            let sq = g.mul(r, r);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn ln_grad() {
    let mut p = Parameters::new();
    let a = p.register("a", Tensor::from_vec(1, 3, vec![0.5, 1.5, 2.5]));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let l0 = g.ln(an);
            let l = g.sum_all(l0);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn add_row_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 3, 4));
    let r = p.register("r", rand_tensor(&mut rng, 1, 4));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let rn = g.param(r);
            let s = g.add_row(an, rn);
            let sq = g.mul(s, s);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn slice_concat_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 2, 6));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let left = g.slice_cols(an, 0, 3);
            let right = g.slice_cols(an, 3, 6);
            let m = g.mul(left, right);
            let back = g.concat_cols(&[m, left]);
            let l = g.sum_all(back);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn concat_rows_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 2, 3));
    let b = p.register("b", rand_tensor(&mut rng, 1, 3));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let s = g.concat_rows(&[an, bn, an]);
            let sq = g.mul(s, s);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn mean_rows_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 4, 3));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let m = g.mean_rows(an);
            let sq = g.mul(m, m);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn softmax_rows_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 3, 4));
    let w = p.register("w", rand_tensor(&mut rng, 3, 4));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let wn = g.param(w);
            let s = g.softmax_rows(an);
            let m = g.mul(s, wn);
            let l = g.sum_all(m);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn cos_sim_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 1, 5));
    let b = p.register("b", rand_tensor(&mut rng, 1, 5));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let c = g.cos_sim(an, bn);
            g.finish(c)
        },
        EPS,
        TOL,
    );
}

#[test]
fn dot_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 1, 5));
    let b = p.register("b", rand_tensor(&mut rng, 1, 5));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let d = g.dot(an, bn);
            let sq = g.mul(d, d);
            g.finish(sq)
        },
        EPS,
        TOL,
    );
}

#[test]
fn log_sum_exp_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 1, 1));
    let b = p.register("b", rand_tensor(&mut rng, 1, 1));
    let c = p.register("c", rand_tensor(&mut rng, 1, 1));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let cn = g.param(c);
            let l = g.log_sum_exp(&[an, bn, cn]);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn cross_entropy_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("logits", rand_tensor(&mut rng, 1, 5));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let l = g.cross_entropy(an, 2);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn embedding_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let emb = Embedding::new(&mut p, &mut rng, "e", 5, 3);
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let e = emb.forward(&mut g, &[0, 2, 2, 4]);
            let sq = g.mul(e, e);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn linear_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let lin = Linear::new(&mut p, &mut rng, "l", 3, 2);
    let x = rand_tensor(&mut rng, 4, 3);
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let xn = g.input(x.clone());
            let y = lin.forward(&mut g, xn);
            let t = g.tanh(y);
            let l = g.sum_all(t);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn lstm_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let lstm = Lstm::new(&mut p, &mut rng, "lstm", 2, 3, 2);
    let xs: Vec<Tensor> = (0..3).map(|_| rand_tensor(&mut rng, 1, 2)).collect();
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let nodes: Vec<_> = xs.iter().map(|x| g.input(x.clone())).collect();
            let h = lstm.forward_last(&mut g, &nodes);
            let sq = g.mul(h, h);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn gru_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let gru = Gru::new(&mut p, &mut rng, "gru", 2, 3);
    let xs: Vec<Tensor> = (0..3).map(|_| rand_tensor(&mut rng, 1, 2)).collect();
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let nodes: Vec<_> = xs.iter().map(|x| g.input(x.clone())).collect();
            let h = gru.forward_last(&mut g, &nodes);
            let sq = g.mul(h, h);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn attention_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let attn = SelfAttention::new(&mut p, &mut rng, "a", 3);
    let x = rand_tensor(&mut rng, 4, 3);
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let xn = g.input(x.clone());
            let y = attn.forward(&mut g, xn);
            let sq = g.mul(y, y);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

/// A composite resembling the actual WSCCL loss: mean over cosine-similarity
/// log-ratios of LSTM-encoded sequences.
#[test]
fn contrastive_composite_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let lstm = Lstm::new(&mut p, &mut rng, "lstm", 2, 3, 1);
    let seqs: Vec<Vec<Tensor>> =
        (0..3).map(|_| (0..2).map(|_| rand_tensor(&mut rng, 1, 2)).collect()).collect();
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let reprs: Vec<_> = seqs
                .iter()
                .map(|seq| {
                    let nodes: Vec<_> = seq.iter().map(|x| g.input(x.clone())).collect();
                    let hs = lstm.forward(&mut g, &nodes);
                    let stacked = g.concat_rows(&hs);
                    g.mean_rows(stacked)
                })
                .collect();
            let pos = g.cos_sim(reprs[0], reprs[1]);
            let neg = g.cos_sim(reprs[0], reprs[2]);
            let lse = g.log_sum_exp(&[neg]);
            let obj = g.sub(pos, lse);
            let loss = g.scale(obj, -1.0);
            g.finish(loss)
        },
        EPS,
        TOL,
    );
}

#[test]
fn layer_norm_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 3, 5));
    let w = p.register("w", rand_tensor(&mut rng, 3, 5));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let wn = g.param(w);
            let ln = g.layer_norm_rows(an, 1e-5);
            let m = g.mul(ln, wn);
            let l = g.sum_all(m);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn affine_grad_all_activations() {
    for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh, Activation::Relu] {
        let mut rng = rng();
        let mut p = Parameters::new();
        let w = p.register("w", rand_tensor(&mut rng, 3, 2));
        let b = p.register("b", rand_tensor(&mut rng, 1, 2));
        let x = p.register("x", rand_tensor(&mut rng, 4, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let xn = g.param(x);
                let y = g.affine(xn, w, Some(b), act);
                let sq = g.mul(y, y);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }
}

#[test]
fn affine_grad_without_bias() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let w = p.register("w", rand_tensor(&mut rng, 3, 2));
    let x = p.register("x", rand_tensor(&mut rng, 4, 3));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let xn = g.param(x);
            let y = g.affine(xn, w, None, Activation::Tanh);
            let l = g.sum_all(y);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

#[test]
fn lstm_cell_grad() {
    let (in_dim, hidden) = (2, 3);
    let mut rng = rng();
    let mut p = Parameters::new();
    let wx = p.register("wx", rand_tensor(&mut rng, in_dim, 4 * hidden));
    let wh = p.register("wh", rand_tensor(&mut rng, hidden, 4 * hidden));
    let b = p.register("b", rand_tensor(&mut rng, 1, 4 * hidden));
    let x = p.register("x", rand_tensor(&mut rng, 2, in_dim));
    let h = p.register("h", rand_tensor(&mut rng, 2, hidden));
    let c = p.register("c", rand_tensor(&mut rng, 2, hidden));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let xn = g.param(x);
            let hn = g.param(h);
            let cn = g.param(c);
            let hc = g.lstm_cell(xn, hn, cn, wx, wh, b, hidden);
            // Square so both the h and c halves feed the loss nonlinearly.
            let sq = g.mul(hc, hc);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

/// Two chained LSTM cells: the recurrent path (dh, dc flowing into the
/// previous cell) is what the closed-form backward most easily gets wrong.
#[test]
fn lstm_cell_chained_grad() {
    let (in_dim, hidden) = (2, 2);
    let mut rng = rng();
    let mut p = Parameters::new();
    let wx = p.register("wx", rand_tensor(&mut rng, in_dim, 4 * hidden));
    let wh = p.register("wh", rand_tensor(&mut rng, hidden, 4 * hidden));
    let b = p.register("b", rand_tensor(&mut rng, 1, 4 * hidden));
    let x0 = p.register("x0", rand_tensor(&mut rng, 1, in_dim));
    let x1 = p.register("x1", rand_tensor(&mut rng, 1, in_dim));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let x0n = g.param(x0);
            let x1n = g.param(x1);
            let h0 = g.input_zeros(1, hidden);
            let c0 = g.input_zeros(1, hidden);
            let hc1 = g.lstm_cell(x0n, h0, c0, wx, wh, b, hidden);
            let h1 = g.slice_cols(hc1, 0, hidden);
            let c1 = g.slice_cols(hc1, hidden, 2 * hidden);
            let hc2 = g.lstm_cell(x1n, h1, c1, wx, wh, b, hidden);
            let h2 = g.slice_cols(hc2, 0, hidden);
            let sq = g.mul(h2, h2);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

/// In-place variants must be gradient-identical to their allocating forms,
/// both when the steal succeeds (fresh single-consumer operands) and when it
/// falls back (operand op whose backward reads its own output).
#[test]
fn inplace_elementwise_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 3, 4));
    let b = p.register("b", rand_tensor(&mut rng, 3, 4));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let bn = g.param(b);
            let s = g.add(an, bn);
            let sc = g.scale_inplace(s, 0.7); // steals s (Add)
            let t = g.tanh_inplace(sc); // steals sc (Scale)
            let d = g.sub_inplace(t, bn); // falls back: Tanh reads own value
            let sg = g.sigmoid_inplace(d); // steals d (Sub)
            let l = g.sum_all(sg);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}

/// The pooled tape must produce the same gradients as the fresh-alloc tape —
/// run the same gradcheck through a dirtied pool.
#[test]
fn pooled_graph_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let w = p.register("w", rand_tensor(&mut rng, 3, 2));
    let b = p.register("b", rand_tensor(&mut rng, 1, 2));
    let x = p.register("x", rand_tensor(&mut rng, 4, 3));
    let mut pool = TensorPool::new();
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new_in(p, &mut pool);
            let xn = g.param(x);
            let y = g.affine(xn, w, Some(b), Activation::Sigmoid);
            let sq = g.mul(y, y);
            let l = g.sum_all(sq);
            g.finish(l)
        },
        EPS,
        TOL,
    );
    assert!(pool.stats().reuses > 0, "pool was never reused across gradcheck evaluations");
}

/// Completeness sweep: every [`OpKind`] the tape can record must map to a
/// registered finite-difference check, so adding a new op without a gradcheck
/// fails this test rather than silently shipping an unverified backward.
mod sweep {
    use super::*;
    use wsccl_nn::OpKind;

    /// Param, Mul, SumAll.
    fn params_square() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 2, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let sq = g.mul(an, an);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// Input (constant operand mixed into a param-dependent loss).
    fn input_times_param() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 2, 3));
        let x = rand_tensor(&mut rng, 2, 3);
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let xn = g.input(x.clone());
                let m = g.mul(an, xn);
                let l = g.sum_all(m);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// MatMul.
    fn matmul() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 2, 3));
        let b = p.register("b", rand_tensor(&mut rng, 3, 4));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, bn) = (g.param(a), g.param(b));
                let c = g.matmul(an, bn);
                let l = g.sum_all(c);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// MatMulNt.
    fn matmul_nt() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 2, 3));
        let b = p.register("b", rand_tensor(&mut rng, 4, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, bn) = (g.param(a), g.param(b));
                let c = g.matmul_nt(an, bn);
                let sq = g.mul(c, c);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// Add, Sub, Scale.
    fn elementwise() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 3, 3));
        let b = p.register("b", rand_tensor(&mut rng, 3, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, bn) = (g.param(a), g.param(b));
                let s = g.add(an, bn);
                let d = g.sub(s, bn);
                let sc = g.scale(d, 0.7);
                let m = g.mul(sc, bn);
                let l = g.sum_all(m);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// AddRow.
    fn add_row() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 3, 4));
        let r = p.register("r", rand_tensor(&mut rng, 1, 4));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, rn) = (g.param(a), g.param(r));
                let s = g.add_row(an, rn);
                let sq = g.mul(s, s);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// Sigmoid, Tanh.
    fn activations() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 2, 4));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let s = g.sigmoid(an);
                let t = g.tanh(s);
                let l = g.sum_all(t);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// Relu, at points away from the kink.
    fn relu() {
        let mut p = Parameters::new();
        let a = p.register("a", Tensor::from_vec(1, 4, vec![0.5, -0.5, 1.5, -2.0]));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let r = g.relu(an);
                let sq = g.mul(r, r);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// Ln, on strictly positive values.
    fn ln() {
        let mut p = Parameters::new();
        let a = p.register("a", Tensor::from_vec(1, 3, vec![0.5, 1.5, 2.5]));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let l0 = g.ln(an);
                let l = g.sum_all(l0);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// SliceCols, ConcatCols.
    fn slice_concat_cols() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 2, 6));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let left = g.slice_cols(an, 0, 3);
                let right = g.slice_cols(an, 3, 6);
                let m = g.mul(left, right);
                let back = g.concat_cols(&[m, left]);
                let l = g.sum_all(back);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// SliceRows, ConcatRows (with overlapping slices).
    fn slice_concat_rows() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 5, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let top = g.slice_rows(an, 0, 2);
                let mid = g.slice_rows(an, 1, 4);
                let tail = g.slice_rows(an, 3, 4);
                let joined = g.concat_rows(&[top, tail]);
                let prod = g.mul(mid, joined);
                let l = g.sum_all(prod);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// MeanRows.
    fn mean_rows() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 4, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let m = g.mean_rows(an);
                let sq = g.mul(m, m);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// SoftmaxRows.
    fn softmax() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 3, 4));
        let w = p.register("w", rand_tensor(&mut rng, 3, 4));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, wn) = (g.param(a), g.param(w));
                let s = g.softmax_rows(an);
                let m = g.mul(s, wn);
                let l = g.sum_all(m);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// CosSim.
    fn cos_sim() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 1, 5));
        let b = p.register("b", rand_tensor(&mut rng, 1, 5));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, bn) = (g.param(a), g.param(b));
                let c = g.cos_sim(an, bn);
                g.finish(c)
            },
            EPS,
            TOL,
        );
    }

    /// Dot.
    fn dot() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 1, 5));
        let b = p.register("b", rand_tensor(&mut rng, 1, 5));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, bn) = (g.param(a), g.param(b));
                let d = g.dot(an, bn);
                let sq = g.mul(d, d);
                g.finish(sq)
            },
            EPS,
            TOL,
        );
    }

    /// LogSumExp.
    fn log_sum_exp() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 1, 1));
        let b = p.register("b", rand_tensor(&mut rng, 1, 1));
        let c = p.register("c", rand_tensor(&mut rng, 1, 1));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, bn, cn) = (g.param(a), g.param(b), g.param(c));
                let l = g.log_sum_exp(&[an, bn, cn]);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// CrossEntropy.
    fn cross_entropy() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("logits", rand_tensor(&mut rng, 1, 5));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let an = g.param(a);
                let l = g.cross_entropy(an, 2);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// EmbedLookup, with a repeated index so gradients accumulate per row.
    fn embed_lookup() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let table = p.register("table", rand_tensor(&mut rng, 5, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let e = g.embed_lookup(table, &[0, 2, 2, 4]);
                let sq = g.mul(e, e);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// GatherRow: fused const/table-row gather, with one row spliced in twice
    /// so its gradient must accumulate.
    fn gather_row() {
        use wsccl_nn::GatherPart;
        let mut rng = rng();
        let mut p = Parameters::new();
        let t1 = p.register("t1", rand_tensor(&mut rng, 4, 3));
        let t2 = p.register("t2", rand_tensor(&mut rng, 2, 2));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let konst = [0.3, -0.7];
                let x = g.gather_concat_row(&[
                    GatherPart::Row(t1, 2),
                    GatherPart::Const(&konst),
                    GatherPart::Row(t2, 0),
                    GatherPart::Row(t1, 2),
                ]);
                let sq = g.mul(x, x);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// LayerNormRows.
    fn layer_norm() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let a = p.register("a", rand_tensor(&mut rng, 3, 5));
        let w = p.register("w", rand_tensor(&mut rng, 3, 5));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (an, wn) = (g.param(a), g.param(w));
                let ln = g.layer_norm_rows(an, 1e-5);
                let m = g.mul(ln, wn);
                let l = g.sum_all(m);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// Affine (fused matmul + bias + activation).
    fn affine() {
        let mut rng = rng();
        let mut p = Parameters::new();
        let w = p.register("w", rand_tensor(&mut rng, 3, 2));
        let b = p.register("b", rand_tensor(&mut rng, 1, 2));
        let x = p.register("x", rand_tensor(&mut rng, 4, 3));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let xn = g.param(x);
                let y = g.affine(xn, w, Some(b), Activation::Tanh);
                let sq = g.mul(y, y);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// LstmCell (fused step, both halves of the h‖c output in the loss).
    fn lstm_cell() {
        let (in_dim, hidden) = (2, 3);
        let mut rng = rng();
        let mut p = Parameters::new();
        let wx = p.register("wx", rand_tensor(&mut rng, in_dim, 4 * hidden));
        let wh = p.register("wh", rand_tensor(&mut rng, hidden, 4 * hidden));
        let b = p.register("b", rand_tensor(&mut rng, 1, 4 * hidden));
        let x = p.register("x", rand_tensor(&mut rng, 2, in_dim));
        let h = p.register("h", rand_tensor(&mut rng, 2, hidden));
        let c = p.register("c", rand_tensor(&mut rng, 2, hidden));
        assert_gradients_close(
            &mut p,
            |p| {
                let mut g = Graph::new(p);
                let (xn, hn, cn) = (g.param(x), g.param(h), g.param(c));
                let hc = g.lstm_cell(xn, hn, cn, wx, wh, b, hidden);
                let sq = g.mul(hc, hc);
                let l = g.sum_all(sq);
                g.finish(l)
            },
            EPS,
            TOL,
        );
    }

    /// The registry: every tape op kind → the check that exercises it. A
    /// check may cover several kinds, but every kind must appear.
    fn registry() -> Vec<(OpKind, fn())> {
        vec![
            (OpKind::Input, input_times_param),
            (OpKind::Param, params_square),
            (OpKind::MatMul, matmul),
            (OpKind::MatMulNt, matmul_nt),
            (OpKind::Add, elementwise),
            (OpKind::AddRow, add_row),
            (OpKind::Sub, elementwise),
            (OpKind::Mul, params_square),
            (OpKind::Scale, elementwise),
            (OpKind::Sigmoid, activations),
            (OpKind::Tanh, activations),
            (OpKind::Relu, relu),
            (OpKind::SliceCols, slice_concat_cols),
            (OpKind::ConcatCols, slice_concat_cols),
            (OpKind::ConcatRows, slice_concat_rows),
            (OpKind::MeanRows, mean_rows),
            (OpKind::SumAll, params_square),
            (OpKind::SoftmaxRows, softmax),
            (OpKind::CosSim, cos_sim),
            (OpKind::Dot, dot),
            (OpKind::LogSumExp, log_sum_exp),
            (OpKind::CrossEntropy, cross_entropy),
            (OpKind::EmbedLookup, embed_lookup),
            (OpKind::GatherRow, gather_row),
            (OpKind::Ln, ln),
            (OpKind::LayerNormRows, layer_norm),
            (OpKind::SliceRows, slice_concat_rows),
            (OpKind::Affine, affine),
            (OpKind::LstmCell, lstm_cell),
        ]
    }

    #[test]
    fn every_op_kind_has_a_registered_gradcheck() {
        let checks = registry();
        let missing: Vec<&str> = OpKind::ALL
            .iter()
            .filter(|kind| !checks.iter().any(|(k, _)| k == *kind))
            .map(|kind| kind.name())
            .collect();
        assert!(
            missing.is_empty(),
            "op kinds without a finite-difference gradcheck: {missing:?} — \
             register one in sweep::registry()"
        );
        // Run each distinct check once per kernel backend: the finite
        // differences must validate the scalar oracle AND the SIMD kernels.
        let mut fns: Vec<fn()> = checks.iter().map(|&(_, f)| f).collect();
        fns.sort_by_key(|f| *f as usize);
        fns.dedup_by_key(|f| *f as usize);
        use wsccl_nn::kernels::{self, KernelBackend};
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            kernels::force(backend);
            for f in &fns {
                f();
            }
        }
        kernels::force(KernelBackend::Auto);
    }
}

#[test]
fn slice_rows_grad() {
    let mut rng = rng();
    let mut p = Parameters::new();
    let a = p.register("a", rand_tensor(&mut rng, 5, 3));
    assert_gradients_close(
        &mut p,
        |p| {
            let mut g = Graph::new(p);
            let an = g.param(a);
            let top = g.slice_rows(an, 0, 2);
            let mid = g.slice_rows(an, 1, 4);
            let top2 = g.slice_rows(an, 3, 4);
            let joined = g.concat_rows(&[top, top2]);
            let prod = g.mul(mid, joined);
            let l = g.sum_all(prod);
            g.finish(l)
        },
        EPS,
        TOL,
    );
}
