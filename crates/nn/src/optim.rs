//! Optimizers: plain SGD and Adam (the paper trains with lr = 3e-4 Adam-style).
//!
//! Optimizers consume a [`GradStore`] produced by one tape (or reduced from
//! several data-parallel shard tapes) and update the shared [`Parameters`].
//! A parameter with no gradient slot is treated as having an exact zero
//! gradient: momentum/moment state still decays, matching dense behavior.

use serde::{Deserialize, Serialize};

use crate::params::{GradStore, Parameters};
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f64) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    pub fn lr(&self) -> f64 {
        self.lr
    }

    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Apply one update step using the given gradients.
    pub fn step(&mut self, params: &mut Parameters, grads: &GradStore) {
        if self.momentum != 0.0 && self.velocity.len() != params.len() {
            self.velocity = params
                .ids()
                .map(|id| {
                    let v = params.value(id);
                    Tensor::zeros(v.rows(), v.cols())
                })
                .collect();
        }
        for id in params.ids().collect::<Vec<_>>() {
            let grad = grads.grad(id);
            if self.momentum != 0.0 {
                let v = &mut self.velocity[id.index()];
                if let Some(g) = grad {
                    for (vv, gv) in v.data_mut().iter_mut().zip(g.data()) {
                        *vv = self.momentum * *vv + gv;
                    }
                } else {
                    v.data_mut().iter_mut().for_each(|vv| *vv *= self.momentum);
                }
                let v = self.velocity[id.index()].clone();
                params.value_mut(id).axpy(-self.lr, &v);
            } else if let Some(g) = grad {
                params.value_mut(id).axpy(-self.lr, g);
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba). Defaults: β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    /// Whether a parameter has ever received a gradient. While false its
    /// moments are exactly zero and the Adam update is a bitwise no-op
    /// (`p − lr·(0/bc₁)/(√(0/bc₂)+ε) ≡ p`), so the dense scan can skip it —
    /// important for frozen embedding tables that dominate the scalar count.
    #[serde(default)]
    touched: Vec<bool>,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            touched: Vec::new(),
        }
    }

    pub fn lr(&self) -> f64 {
        self.lr
    }

    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn ensure_state(&mut self, params: &Parameters) {
        if self.m.len() != params.len() {
            let zeros = |p: &Parameters| {
                p.ids()
                    .map(|id| {
                        let v = p.value(id);
                        Tensor::zeros(v.rows(), v.cols())
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros(params);
            self.v = zeros(params);
            self.t = 0;
            self.touched = vec![false; params.len()];
        }
        if self.touched.len() != self.m.len() {
            // State deserialized from before `touched` existed: assume every
            // parameter has live moments (conservative, preserves behavior).
            self.touched = vec![true; self.m.len()];
        }
    }

    /// Apply one update step using the given gradients.
    pub fn step(&mut self, params: &mut Parameters, grads: &GradStore) {
        self.ensure_state(params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let kernels = crate::kernels::active();
        for id in params.ids().collect::<Vec<_>>() {
            let ix = id.index();
            match grads.grad(id) {
                Some(g) => {
                    self.touched[ix] = true;
                    kernels.adam_moments(
                        self.m[ix].data_mut(),
                        self.v[ix].data_mut(),
                        g.data(),
                        self.beta1,
                        self.beta2,
                    );
                }
                // Never-touched parameter: moments are exactly zero, decay
                // keeps them zero, and the update below would subtract an
                // exact +0.0 — a bitwise no-op. Skip the whole scan.
                None if !self.touched[ix] => continue,
                None => {
                    // Zero gradient: moments decay exactly as dense zeros would.
                    kernels.scale_assign(self.m[ix].data_mut(), self.beta1);
                    kernels.scale_assign(self.v[ix].data_mut(), self.beta2);
                }
            }
            let (m, v) = (&self.m[ix], &self.v[ix]);
            let value = params.value_mut(id);
            kernels.adam_update(value.data_mut(), m.data(), v.data(), self.lr, bc1, bc2, self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimize (w - 5)² and check both optimizers converge.
    fn quadratic_converges(mut step: impl FnMut(&mut Parameters, &GradStore), iters: usize) -> f64 {
        let mut params = Parameters::new();
        let w = params.register("w", Tensor::scalar(0.0));
        for _ in 0..iters {
            let mut g = Graph::new(&params);
            let wn = g.param(w);
            let t = g.input(Tensor::scalar(5.0));
            let d = g.sub(wn, t);
            let loss = g.mul(d, d);
            let (_, grads) = g.finish(loss);
            step(&mut params, &grads);
        }
        params.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_converges(|p, g| opt.step(p, g), 200);
        assert!((w - 5.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = quadratic_converges(|p, g| opt.step(p, g), 300);
        assert!((w - 5.0).abs() < 1e-4, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let w = quadratic_converges(|p, g| opt.step(p, g), 300);
        assert!((w - 5.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_missing_grad_slot_matches_dense_zero() {
        // Two runs: one where a second parameter has an explicit zero grad,
        // one where its slot is absent. Updates must be identical.
        let run = |dense: bool| {
            let mut params = Parameters::new();
            let a = params.register("a", Tensor::scalar(1.0));
            let b = params.register("b", Tensor::scalar(2.0));
            let mut opt = Adam::new(0.1);
            for step in 0..5 {
                let mut grads = GradStore::new();
                *grads.entry(a, 1, 1) = Tensor::scalar(1.0 + step as f64);
                if dense {
                    grads.entry(b, 1, 1); // allocate an all-zero slot
                }
                opt.step(&mut params, &grads);
            }
            (params.value(a).item(), params.value(b).item())
        };
        assert_eq!(run(true), run(false));
    }
}
