//! Frozen f32 inference tensors.
//!
//! Training is strictly `f64` ([`crate::Tensor`]); serving-style inference
//! (single-path embeddings at query time) doesn't need f64 precision and does
//! need latency. An [`InferTensor`] is a dense row-major `f32` matrix
//! converted **once** from trained f64 parameters; its kernels route through
//! [`crate::kernels::active`], so the same backend switch covers both
//! precisions. There is no autodiff here — inference only.

use crate::kernels;
use crate::tensor::Tensor;

/// Dense row-major `f32` matrix for the inference fast path.
#[derive(Clone, Debug, PartialEq)]
pub struct InferTensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl InferTensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Narrow a trained f64 tensor to f32 (round-to-nearest per element).
    pub fn from_tensor(t: &Tensor) -> Self {
        let (rows, cols) = t.shape();
        Self { rows, cols, data: t.data().iter().map(|&v| v as f32).collect() }
    }

    /// Build from a flat row-major f64 slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_f64(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape {rows}x{cols} != data len {}", data.len());
        Self { rows, cols, data: data.iter().map(|&v| v as f32).collect() }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `out += self · other` through the active kernel backend.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn matmul_acc(&self, other: &InferTensor, out: &mut InferTensor) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul output shape mismatch");
        kernels::active().matmul_acc_f32(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrows_and_multiplies_like_f64() {
        let a64 = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b64 = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let expect = a64.matmul(&b64);

        let a = InferTensor::from_tensor(&a64);
        let b = InferTensor::from_tensor(&b64);
        let mut out = InferTensor::zeros(2, 2);
        a.matmul_acc(&b, &mut out);
        for (got, want) in out.data().iter().zip(expect.data()) {
            assert!((f64::from(*got) - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = InferTensor::from_f64(1, 2, &[1.0, 2.0]);
        let b = InferTensor::from_f64(2, 3, &[1.0, 0.0, 1.0, 0.0, 1.0, 1.0]);
        let mut out = InferTensor::from_f64(1, 3, &[10.0, 10.0, 10.0]);
        a.matmul_acc(&b, &mut out);
        assert_eq!(out.data(), &[11.0, 12.0, 13.0]);
    }
}
