//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every forward operation as a node; [`Graph::backward`]
//! walks the tape in reverse, propagating adjoints to inputs and accumulating
//! parameter gradients into the tape's own [`GradStore`]. Parameters are only
//! *read* during forward/backward, so multiple tapes can run concurrently over
//! one shared `&Parameters` — the basis for shard-parallel training. A fresh
//! graph is built per training step, which naturally supports the
//! variable-length paths this paper operates on.
//!
//! # Memory
//!
//! A tape built with [`Graph::new_in`] draws every tensor buffer — node
//! values, adjoints, and parameter-gradient slots — from a caller-owned
//! [`TensorPool`], and returns all of them when the tape is dropped. In steady
//! state (same batch shapes step over step) a training step therefore performs
//! zero tensor heap allocations. [`Graph::new`] keeps the plain allocating
//! behaviour; both paths run the exact same arithmetic, so pooled and unpooled
//! training are bit-for-bit identical.
//!
//! Node gradient buffers are allocated lazily, on first accumulation: nodes
//! that never receive an adjoint (constants, dead branches) cost no memory.
//!
//! The backward pass never clones an operand value: every propagation rule is
//! written against the accumulating kernels in [`crate::tensor`]
//! (`matmul_*_acc`, `axpy`, fused loops) and writes straight into the
//! destination adjoint buffer.
//!
//! # Fused ops
//!
//! The hot compositions the models emit have single-node fused forms:
//! [`Graph::affine`] (matmul + row bias + activation) and
//! [`Graph::lstm_cell`] (all four LSTM gates against the pre-packed weight
//! block, one node per timestep). Both read their weights directly from the
//! parameter store by [`ParamId`], eliminating the per-step parameter-clone
//! nodes the composed forms needed. The `*_inplace` elementwise variants
//! additionally steal the operand's value buffer when the tape's refcount
//! proves no one else will read it.
//!
//! Every op's gradient is verified against central finite differences in the
//! test suite (see `tests/gradcheck.rs` and [`crate::gradcheck`]).

use std::mem;
use std::time::Instant;

use wsccl_obs::TapeProfiler;

use crate::kernels;
use crate::params::{GradStore, ParamId, Parameters};
use crate::pool::TensorPool;
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Activation fused into an [`Graph::affine`] node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Identity,
    Sigmoid,
    Tanh,
    Relu,
}

#[derive(Debug)]
enum Op {
    /// Constant input; receives no gradient.
    Input,
    /// Reference to a trainable parameter.
    Param(ParamId),
    /// `A · B`
    MatMul(NodeId, NodeId),
    /// `A · Bᵀ`
    MatMulNt(NodeId, NodeId),
    /// Elementwise `A + B` (same shape).
    Add(NodeId, NodeId),
    /// `A + 1·r` — add a `1 × d` row vector to every row of `A`.
    AddRow(NodeId, NodeId),
    /// Elementwise `A - B`.
    Sub(NodeId, NodeId),
    /// Elementwise (Hadamard) `A ⊙ B`.
    Mul(NodeId, NodeId),
    /// `c · A`.
    Scale(NodeId, f64),
    /// Elementwise logistic sigmoid.
    Sigmoid(NodeId),
    /// Elementwise tanh.
    Tanh(NodeId),
    /// Elementwise ReLU.
    Relu(NodeId),
    /// Column slice `A[:, start..end]`.
    SliceCols(NodeId, usize, usize),
    /// Horizontal concatenation of several nodes.
    ConcatCols(Vec<NodeId>),
    /// Vertical stack of several nodes (all same `cols`).
    ConcatRows(Vec<NodeId>),
    /// `1 × d` mean over rows.
    MeanRows(NodeId),
    /// `1 × 1` sum of all elements.
    SumAll(NodeId),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Cosine similarity of two same-shaped tensors viewed as flat vectors → `1 × 1`.
    CosSim(NodeId, NodeId),
    /// Dot product of two same-shaped tensors viewed as flat vectors → `1 × 1`.
    Dot(NodeId, NodeId),
    /// `log Σ exp(xᵢ)` over a list of `1 × 1` scalars → `1 × 1`.
    LogSumExp(Vec<NodeId>),
    /// Softmax cross-entropy of `1 × k` logits against a class index → `1 × 1`.
    CrossEntropy(NodeId, usize),
    /// Row gather from a parameter matrix (embedding lookup).
    EmbedLookup(ParamId, Vec<usize>),
    /// Fused constant/embedding-row gather into one `1 × d` row: each entry
    /// splices one embedding-table row in at a column offset
    /// `(table, row, offset)`. Constant segments were copied at build time
    /// and need no backward. Replaces a per-edge chain of `EmbedLookup` +
    /// `Input` + `ConcatCols` nodes on the encoder hot path.
    GatherRow(Vec<(ParamId, usize, usize)>),
    /// Elementwise natural log (inputs must be positive).
    Ln(NodeId),
    /// Row-wise layer normalization (zero mean, unit variance per row).
    LayerNormRows(NodeId, f64),
    /// Row slice `A[start..end, :]`.
    SliceRows(NodeId, usize, usize),
    /// Fused `act(x · W + 1·b)` reading `W`/`b` straight from the store.
    Affine { x: NodeId, w: ParamId, b: Option<ParamId>, act: Activation },
    /// Fused LSTM cell: value is `[h_new | c_new]` (`n × 2h`); `saved` holds
    /// the post-activation gates `[i | f | g | o | tanh(c_new)]` (`n × 5h`)
    /// for the closed-form backward.
    LstmCell {
        x: NodeId,
        h: NodeId,
        c: NodeId,
        wx: ParamId,
        wh: ParamId,
        b: ParamId,
        hidden: usize,
        saved: Tensor,
    },
}

/// One part of a fused [`Graph::gather_concat_row`] input row.
#[derive(Clone, Copy, Debug)]
pub enum GatherPart<'a> {
    /// Constant columns, copied at build time; no gradient flows back.
    Const(&'a [f64]),
    /// One row of an embedding-table parameter: `(table, row_index)`.
    Row(ParamId, usize),
}

/// Discriminant-only view of [`Op`](self), public so tooling can reason about
/// the full op vocabulary: the tape profiler keys its per-op timings on
/// [`OpKind::name`], and the gradcheck sweep (`tests/gradcheck.rs`) enumerates
/// [`OpKind::ALL`] to prove every op has a finite-difference check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Input,
    Param,
    MatMul,
    MatMulNt,
    Add,
    AddRow,
    Sub,
    Mul,
    Scale,
    Sigmoid,
    Tanh,
    Relu,
    SliceCols,
    ConcatCols,
    ConcatRows,
    MeanRows,
    SumAll,
    SoftmaxRows,
    CosSim,
    Dot,
    LogSumExp,
    CrossEntropy,
    EmbedLookup,
    GatherRow,
    Ln,
    LayerNormRows,
    SliceRows,
    Affine,
    LstmCell,
}

impl OpKind {
    /// Every op kind the tape supports, in declaration order. Keep in sync
    /// with [`Op`](self) — `op_kind` fails to compile on a missing arm, and
    /// the gradcheck sweep fails on a missing entry here.
    pub const ALL: [OpKind; 29] = [
        OpKind::Input,
        OpKind::Param,
        OpKind::MatMul,
        OpKind::MatMulNt,
        OpKind::Add,
        OpKind::AddRow,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Scale,
        OpKind::Sigmoid,
        OpKind::Tanh,
        OpKind::Relu,
        OpKind::SliceCols,
        OpKind::ConcatCols,
        OpKind::ConcatRows,
        OpKind::MeanRows,
        OpKind::SumAll,
        OpKind::SoftmaxRows,
        OpKind::CosSim,
        OpKind::Dot,
        OpKind::LogSumExp,
        OpKind::CrossEntropy,
        OpKind::EmbedLookup,
        OpKind::GatherRow,
        OpKind::Ln,
        OpKind::LayerNormRows,
        OpKind::SliceRows,
        OpKind::Affine,
        OpKind::LstmCell,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpKind::Input => "Input",
            OpKind::Param => "Param",
            OpKind::MatMul => "MatMul",
            OpKind::MatMulNt => "MatMulNt",
            OpKind::Add => "Add",
            OpKind::AddRow => "AddRow",
            OpKind::Sub => "Sub",
            OpKind::Mul => "Mul",
            OpKind::Scale => "Scale",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Tanh => "Tanh",
            OpKind::Relu => "Relu",
            OpKind::SliceCols => "SliceCols",
            OpKind::ConcatCols => "ConcatCols",
            OpKind::ConcatRows => "ConcatRows",
            OpKind::MeanRows => "MeanRows",
            OpKind::SumAll => "SumAll",
            OpKind::SoftmaxRows => "SoftmaxRows",
            OpKind::CosSim => "CosSim",
            OpKind::Dot => "Dot",
            OpKind::LogSumExp => "LogSumExp",
            OpKind::CrossEntropy => "CrossEntropy",
            OpKind::EmbedLookup => "EmbedLookup",
            OpKind::GatherRow => "GatherRow",
            OpKind::Ln => "Ln",
            OpKind::LayerNormRows => "LayerNormRows",
            OpKind::SliceRows => "SliceRows",
            OpKind::Affine => "Affine",
            OpKind::LstmCell => "LstmCell",
        }
    }
}

impl Op {
    fn kind(&self) -> OpKind {
        match self {
            Op::Input => OpKind::Input,
            Op::Param(_) => OpKind::Param,
            Op::MatMul(..) => OpKind::MatMul,
            Op::MatMulNt(..) => OpKind::MatMulNt,
            Op::Add(..) => OpKind::Add,
            Op::AddRow(..) => OpKind::AddRow,
            Op::Sub(..) => OpKind::Sub,
            Op::Mul(..) => OpKind::Mul,
            Op::Scale(..) => OpKind::Scale,
            Op::Sigmoid(_) => OpKind::Sigmoid,
            Op::Tanh(_) => OpKind::Tanh,
            Op::Relu(_) => OpKind::Relu,
            Op::SliceCols(..) => OpKind::SliceCols,
            Op::ConcatCols(_) => OpKind::ConcatCols,
            Op::ConcatRows(_) => OpKind::ConcatRows,
            Op::MeanRows(_) => OpKind::MeanRows,
            Op::SumAll(_) => OpKind::SumAll,
            Op::SoftmaxRows(_) => OpKind::SoftmaxRows,
            Op::CosSim(..) => OpKind::CosSim,
            Op::Dot(..) => OpKind::Dot,
            Op::LogSumExp(_) => OpKind::LogSumExp,
            Op::CrossEntropy(..) => OpKind::CrossEntropy,
            Op::EmbedLookup(..) => OpKind::EmbedLookup,
            Op::GatherRow(_) => OpKind::GatherRow,
            Op::Ln(_) => OpKind::Ln,
            Op::LayerNormRows(..) => OpKind::LayerNormRows,
            Op::SliceRows(..) => OpKind::SliceRows,
            Op::Affine { .. } => OpKind::Affine,
            Op::LstmCell { .. } => OpKind::LstmCell,
        }
    }

    /// Whether this op's backward rule reads its **own output** value. The
    /// value buffer of such a node must never be stolen by an in-place op.
    fn backward_reads_own_value(&self) -> bool {
        matches!(
            self,
            Op::Sigmoid(_)
                | Op::Tanh(_)
                | Op::Relu(_)
                | Op::SoftmaxRows(_)
                | Op::LogSumExp(_)
                | Op::LayerNormRows(_, _)
                | Op::Affine { .. }
                | Op::LstmCell { .. }
        )
    }
}

struct Node {
    op: Op,
    value: Tensor,
    /// Value shape, kept separately so adjoints stay sizable after the value
    /// buffer has been stolen by an in-place op.
    shape: (usize, usize),
    /// Adjoint buffer, allocated lazily on first accumulation.
    grad: Option<Tensor>,
    needs_grad: bool,
    /// How many later tape nodes consume this node as an operand.
    uses: u32,
    /// Value buffer was recycled into a later node by an `*_inplace` op;
    /// reading it is a bug and panics.
    stolen: bool,
}

/// Reverse-mode autodiff tape over a shared, read-only parameter store.
pub struct Graph<'p> {
    params: &'p Parameters,
    grads: GradStore,
    nodes: Vec<Node>,
    pool: Option<&'p mut TensorPool>,
    /// Optional per-op timing sink (see [`Graph::set_profiler`]). Like the
    /// pool, pure execution state: attaching one never changes the math.
    profiler: Option<&'p mut TapeProfiler>,
    /// Timestamp of the previous node push while profiling, so forward time
    /// is attributed per op without instrumenting every op method.
    fwd_mark: Option<Instant>,
    /// Named scalar values recorded via [`Graph::track_scalar`] (loss terms).
    tracked: Vec<(&'static str, f64)>,
}

// -------------------------------------------------------------- pool helpers
//
// Free functions over the destructured fields, so the backward pass can hold
// an owned adjoint buffer while borrowing other nodes immutably.

fn pool_take_zero(pool: &mut Option<&mut TensorPool>, rows: usize, cols: usize) -> Tensor {
    match pool.as_deref_mut() {
        Some(p) => p.take(rows, cols),
        None => Tensor::zeros(rows, cols),
    }
}

fn pool_take_raw(pool: &mut Option<&mut TensorPool>, rows: usize, cols: usize) -> Tensor {
    match pool.as_deref_mut() {
        Some(p) => p.take_raw(rows, cols),
        None => Tensor::zeros(rows, cols),
    }
}

fn pool_put(pool: &mut Option<&mut TensorPool>, t: Tensor) {
    if let Some(p) = pool.as_deref_mut() {
        p.put(t);
    }
}

/// Take a node's adjoint buffer out (allocating zeros on first touch) so it
/// can be written while other nodes are borrowed. Put it back with
/// `nodes[id].grad = Some(...)`.
fn take_grad(nodes: &mut [Node], pool: &mut Option<&mut TensorPool>, id: NodeId) -> Tensor {
    match nodes[id.0].grad.take() {
        Some(g) => g,
        None => {
            let (r, c) = nodes[id.0].shape;
            pool_take_zero(pool, r, c)
        }
    }
}

impl Drop for Graph<'_> {
    /// Return every node value, saved fused-op buffer, and adjoint to the
    /// pool. Without a pool this is a plain drop.
    fn drop(&mut self) {
        let Some(pool) = self.pool.as_deref_mut() else { return };
        for node in self.nodes.drain(..) {
            pool.put(node.value);
            if let Some(g) = node.grad {
                pool.put(g);
            }
            if let Op::LstmCell { saved, .. } = node.op {
                pool.put(saved);
            }
        }
    }
}

impl<'p> Graph<'p> {
    /// Start a fresh tape over the given parameter store, allocating every
    /// tensor buffer from the global heap.
    pub fn new(params: &'p Parameters) -> Self {
        Self {
            params,
            grads: GradStore::new(),
            nodes: Vec::with_capacity(256),
            pool: None,
            profiler: None,
            fwd_mark: None,
            tracked: Vec::new(),
        }
    }

    /// Start a fresh tape that draws all tensor buffers from `pool` and
    /// returns them when dropped. Arithmetic is identical to [`Graph::new`].
    pub fn new_in(params: &'p Parameters, pool: &'p mut TensorPool) -> Self {
        Self {
            params,
            grads: GradStore::new(),
            nodes: Vec::with_capacity(256),
            pool: Some(pool),
            profiler: None,
            fwd_mark: None,
            tracked: Vec::new(),
        }
    }

    /// Attach a per-op timing profiler for this tape's lifetime. Forward time
    /// is attributed at node-push (so host-side glue between two pushes bills
    /// to the later op); backward time is measured per node in
    /// [`Graph::backward`]. Observability only — the computed values are
    /// bit-identical with or without a profiler.
    pub fn set_profiler(&mut self, profiler: &'p mut TapeProfiler) {
        self.fwd_mark = Some(Instant::now());
        self.profiler = Some(profiler);
    }

    /// Record the current value of a `1 × 1` node under a stable name —
    /// the hook loss functions use to expose their individual terms to
    /// observers. Read-only: tracking a node never changes the tape.
    pub fn track_scalar(&mut self, name: &'static str, id: NodeId) {
        assert_eq!(self.nodes[id.0].shape, (1, 1), "track_scalar on non-scalar `{name}`");
        let value = self.val(id).item();
        self.tracked.push((name, value));
    }

    /// Scalars recorded by [`Graph::track_scalar`], in recording order.
    pub fn tracked(&self) -> &[(&'static str, f64)] {
        &self.tracked
    }

    /// Take the tracked scalars out of the tape (e.g. before `finish`).
    pub fn take_tracked(&mut self) -> Vec<(&'static str, f64)> {
        mem::take(&mut self.tracked)
    }

    /// Read-only access to the underlying parameters.
    pub fn params(&self) -> &Parameters {
        self.params
    }

    /// Parameter gradients accumulated so far (valid after [`Graph::backward`]).
    pub fn grads(&self) -> &GradStore {
        &self.grads
    }

    /// Consume the tape, keeping only the accumulated parameter gradients.
    /// With a pool, all node buffers are recycled here; the returned store's
    /// buffers are released separately (see [`GradStore::release_into`]).
    pub fn into_grads(mut self) -> GradStore {
        mem::take(&mut self.grads)
    }

    /// Run backward from `loss` and return `(loss value, parameter grads)`,
    /// consuming the tape. The common tail of every training step.
    pub fn finish(mut self, loss: NodeId) -> (f64, GradStore) {
        let value = self.value(loss).item();
        self.backward(loss);
        (value, mem::take(&mut self.grads))
    }

    /// Value of a node.
    ///
    /// # Panics
    /// Panics if the node's buffer was recycled by an `*_inplace` op.
    pub fn value(&self, id: NodeId) -> &Tensor {
        self.val(id)
    }

    /// Adjoint accumulated at a node, if any (valid after [`Graph::backward`];
    /// `None` ⇔ zero).
    pub fn node_grad(&self, id: NodeId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn val(&self, id: NodeId) -> &Tensor {
        let node = &self.nodes[id.0];
        assert!(
            !node.stolen,
            "value of node {} was recycled by an in-place op and must not be read",
            id.0
        );
        &node.value
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> NodeId {
        if let Some(p) = self.profiler.as_deref_mut() {
            let now = Instant::now();
            if let Some(mark) = self.fwd_mark.replace(now) {
                p.record_forward(op.kind().name(), (now - mark).as_nanos() as u64);
            }
        }
        let shape = value.shape();
        self.nodes.push(Node { op, value, shape, grad: None, needs_grad, uses: 0, stolen: false });
        NodeId(self.nodes.len() - 1)
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    /// Record that a new node consumes `id` as an operand.
    fn bump(&mut self, id: NodeId) {
        self.nodes[id.0].uses += 1;
    }

    fn alloc_zero(&mut self, rows: usize, cols: usize) -> Tensor {
        pool_take_zero(&mut self.pool, rows, cols)
    }

    /// A buffer with **stale contents** — callers overwrite every element.
    fn alloc_raw(&mut self, rows: usize, cols: usize) -> Tensor {
        pool_take_raw(&mut self.pool, rows, cols)
    }

    // ---------------------------------------------------------------- inputs

    /// Constant input tensor (no gradient). The buffer is caller-allocated;
    /// prefer [`Graph::input_row`]/[`Graph::input_zeros`] on hot paths so it
    /// comes from the pool instead.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value, false)
    }

    /// Constant `1 × d` input copied from a slice into a pooled buffer.
    pub fn input_row(&mut self, data: &[f64]) -> NodeId {
        let mut v = self.alloc_raw(1, data.len());
        v.data_mut().copy_from_slice(data);
        self.push(Op::Input, v, false)
    }

    /// Constant all-zeros input from the pool (LSTM initial states).
    pub fn input_zeros(&mut self, rows: usize, cols: usize) -> NodeId {
        let v = self.alloc_zero(rows, cols);
        self.push(Op::Input, v, false)
    }

    /// Reference a trainable parameter (the value is copied into a pooled
    /// buffer; fused ops avoid even that copy by reading the store directly).
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let (r, c) = self.params.value(id).shape();
        let mut v = self.alloc_raw(r, c);
        v.copy_from(self.params.value(id));
        self.push(Op::Param(id), v, true)
    }

    /// Embedding lookup: gather `indices` rows of the parameter matrix.
    pub fn embed_lookup(&mut self, id: ParamId, indices: &[usize]) -> NodeId {
        let cols = self.params.value(id).cols();
        let mut out = self.alloc_raw(indices.len(), cols);
        let table = self.params.value(id);
        for (r, &ix) in indices.iter().enumerate() {
            assert!(ix < table.rows(), "embedding index {ix} out of range {}", table.rows());
            out.row_slice_mut(r).copy_from_slice(table.row_slice(ix));
        }
        self.push(Op::EmbedLookup(id, indices.to_vec()), out, true)
    }

    /// Fused gather of constant slices and single embedding-table rows into
    /// one `1 × d` node — the per-edge encoder input assembled in one tape op
    /// instead of an `EmbedLookup`/`Input` node per part plus a `ConcatCols`.
    /// Values and backward accumulation are bit-identical to that chain (pure
    /// copies forward, slice adds into the table gradients backward).
    pub fn gather_concat_row(&mut self, parts: &[GatherPart<'_>]) -> NodeId {
        let width: usize = parts
            .iter()
            .map(|p| match p {
                GatherPart::Const(s) => s.len(),
                GatherPart::Row(id, _) => self.params.value(*id).cols(),
            })
            .sum();
        let mut out = self.alloc_raw(1, width);
        let mut segs = Vec::new();
        let mut off = 0;
        let data = out.data_mut();
        for p in parts {
            match p {
                GatherPart::Const(s) => {
                    data[off..off + s.len()].copy_from_slice(s);
                    off += s.len();
                }
                GatherPart::Row(id, ix) => {
                    let table = self.params.value(*id);
                    assert!(*ix < table.rows(), "gather row {ix} out of range {}", table.rows());
                    let cols = table.cols();
                    data[off..off + cols].copy_from_slice(table.row_slice(*ix));
                    segs.push((*id, *ix, off));
                    off += cols;
                }
            }
        }
        self.push(Op::GatherRow(segs), out, true)
    }

    // ------------------------------------------------------------------- ops

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ar, _) = self.val(a).shape();
        let (_, bc) = self.val(b).shape();
        let mut v = self.alloc_zero(ar, bc);
        self.nodes[a.0].value.matmul_acc(&self.nodes[b.0].value, &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.bump(a);
        self.bump(b);
        self.push(Op::MatMul(a, b), v, ng)
    }

    /// `a · bᵀ`.
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let ar = self.val(a).rows();
        let br = self.val(b).rows();
        let mut v = self.alloc_zero(ar, br);
        self.nodes[a.0].value.matmul_nt_acc(&self.nodes[b.0].value, &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.bump(a);
        self.bump(b);
        self.push(Op::MatMulNt(a, b), v, ng)
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let _ = self.val(b);
        let mut v = self.alloc_raw(r, c);
        self.nodes[a.0].value.add_into(&self.nodes[b.0].value, &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.bump(a);
        self.bump(b);
        self.push(Op::Add(a, b), v, ng)
    }

    /// Like [`Graph::add`], but steals `a`'s (or `b`'s) value buffer for the
    /// result when the tape proves no one else reads it; falls back to a fresh
    /// buffer otherwise. Semantically identical to `add`.
    pub fn add_inplace(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(mut v) = self.try_steal(a) {
            v.add_assign(&self.nodes[b.0].value);
            let ng = self.needs(a) || self.needs(b);
            self.bump(a);
            self.bump(b);
            return self.push(Op::Add(a, b), v, ng);
        }
        if let Some(mut v) = self.try_steal(b) {
            v.add_assign(&self.nodes[a.0].value);
            let ng = self.needs(a) || self.needs(b);
            self.bump(a);
            self.bump(b);
            return self.push(Op::Add(a, b), v, ng);
        }
        self.add(a, b)
    }

    /// Add a `1 × d` row vector to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let rv_shape = self.val(row).shape();
        assert_eq!(rv_shape.0, 1, "add_row: rhs must be a row vector");
        assert_eq!(c, rv_shape.1, "add_row: col mismatch");
        let mut v = self.alloc_raw(r, c);
        let (av, rv) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        for rr in 0..r {
            for ((o, x), y) in v.row_slice_mut(rr).iter_mut().zip(av.row_slice(rr)).zip(rv.data()) {
                *o = x + y;
            }
        }
        let ng = self.needs(a) || self.needs(row);
        self.bump(a);
        self.bump(row);
        self.push(Op::AddRow(a, row), v, ng)
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let _ = self.val(b);
        let mut v = self.alloc_raw(r, c);
        self.nodes[a.0].value.sub_into(&self.nodes[b.0].value, &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.bump(a);
        self.bump(b);
        self.push(Op::Sub(a, b), v, ng)
    }

    /// In-place variant of [`Graph::sub`] (steals `a`'s buffer when allowed).
    pub fn sub_inplace(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(mut v) = self.try_steal(a) {
            let bv = &self.nodes[b.0].value;
            assert_eq!(v.shape(), bv.shape(), "elementwise shape mismatch");
            for (x, y) in v.data_mut().iter_mut().zip(bv.data()) {
                *x -= y;
            }
            let ng = self.needs(a) || self.needs(b);
            self.bump(a);
            self.bump(b);
            return self.push(Op::Sub(a, b), v, ng);
        }
        self.sub(a, b)
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let _ = self.val(b);
        let mut v = self.alloc_raw(r, c);
        self.nodes[a.0].value.mul_into(&self.nodes[b.0].value, &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.bump(a);
        self.bump(b);
        self.push(Op::Mul(a, b), v, ng)
    }

    pub fn scale(&mut self, a: NodeId, c: f64) -> NodeId {
        let (rows, cols) = self.val(a).shape();
        let mut v = self.alloc_raw(rows, cols);
        for (o, x) in v.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
            *o = x * c;
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::Scale(a, c), v, ng)
    }

    /// In-place variant of [`Graph::scale`] (steals `a`'s buffer when allowed).
    pub fn scale_inplace(&mut self, a: NodeId, c: f64) -> NodeId {
        if let Some(mut v) = self.try_steal(a) {
            v.scale_assign(c);
            let ng = self.needs(a);
            self.bump(a);
            return self.push(Op::Scale(a, c), v, ng);
        }
        self.scale(a, c)
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let mut v = self.alloc_raw(r, c);
        for (o, x) in v.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
            *o = 1.0 / (1.0 + (-x).exp());
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::Sigmoid(a), v, ng)
    }

    /// In-place variant of [`Graph::sigmoid`]. Sound because the sigmoid
    /// backward only needs its own output, never the pre-activation input.
    pub fn sigmoid_inplace(&mut self, a: NodeId) -> NodeId {
        if let Some(mut v) = self.try_steal(a) {
            v.data_mut().iter_mut().for_each(|x| *x = 1.0 / (1.0 + (-*x).exp()));
            let ng = self.needs(a);
            self.bump(a);
            return self.push(Op::Sigmoid(a), v, ng);
        }
        self.sigmoid(a)
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let mut v = self.alloc_raw(r, c);
        for (o, x) in v.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
            *o = x.tanh();
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::Tanh(a), v, ng)
    }

    /// In-place variant of [`Graph::tanh`].
    pub fn tanh_inplace(&mut self, a: NodeId) -> NodeId {
        if let Some(mut v) = self.try_steal(a) {
            v.data_mut().iter_mut().for_each(|x| *x = x.tanh());
            let ng = self.needs(a);
            self.bump(a);
            return self.push(Op::Tanh(a), v, ng);
        }
        self.tanh(a)
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let mut v = self.alloc_raw(r, c);
        for (o, x) in v.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
            *o = x.max(0.0);
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::Relu(a), v, ng)
    }

    /// In-place variant of [`Graph::relu`] (the backward uses the output sign,
    /// which equals the input sign for ReLU, so the input is never needed).
    pub fn relu_inplace(&mut self, a: NodeId) -> NodeId {
        if let Some(mut v) = self.try_steal(a) {
            v.data_mut().iter_mut().for_each(|x| *x = x.max(0.0));
            let ng = self.needs(a);
            self.bump(a);
            return self.push(Op::Relu(a), v, ng);
        }
        self.relu(a)
    }

    /// Elementwise natural log. Caller must guarantee strictly positive inputs.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let (r, c) = self.val(a).shape();
        let mut v = self.alloc_raw(r, c);
        for (o, x) in v.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
            *o = x.ln();
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::Ln(a), v, ng)
    }

    /// Steal `a`'s value buffer for reuse by a new node, if the tape allows:
    /// nothing has consumed `a` yet, and `a`'s own backward rule never reads
    /// its output. Marks the node stolen so stray reads panic.
    fn try_steal(&mut self, a: NodeId) -> Option<Tensor> {
        let node = &mut self.nodes[a.0];
        if node.uses == 0 && !node.stolen && !node.op.backward_reads_own_value() {
            node.stolen = true;
            Some(mem::take(&mut node.value))
        } else {
            None
        }
    }

    /// Row slice `a[start..end, :]`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let (rows, cols) = self.val(a).shape();
        assert!(start < end && end <= rows, "slice_rows out of range");
        let mut v = self.alloc_raw(end - start, cols);
        let av = &self.nodes[a.0].value;
        for r in start..end {
            v.row_slice_mut(r - start).copy_from_slice(av.row_slice(r));
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::SliceRows(a, start, end), v, ng)
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let (rows, cols) = self.val(a).shape();
        assert!(start < end && end <= cols, "slice_cols out of range");
        let mut v = self.alloc_raw(rows, end - start);
        let av = &self.nodes[a.0].value;
        for r in 0..rows {
            v.row_slice_mut(r).copy_from_slice(&av.row_slice(r)[start..end]);
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::SliceCols(a, start, end), v, ng)
    }

    /// Horizontal concatenation of the given nodes.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = self.val(parts[0]).rows();
        let cols: usize = parts.iter().map(|&p| self.val(p).cols()).sum();
        let mut v = self.alloc_raw(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                let pv = &self.nodes[p.0].value;
                assert_eq!(pv.rows(), rows, "concat_cols row mismatch");
                let w = pv.cols();
                v.row_slice_mut(r)[off..off + w].copy_from_slice(pv.row_slice(r));
                off += w;
            }
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        for &p in parts {
            self.bump(p);
        }
        self.push(Op::ConcatCols(parts.to_vec()), v, ng)
    }

    /// Vertical stack of the given nodes.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = self.val(parts[0]).cols();
        let rows: usize = parts.iter().map(|&p| self.val(p).rows()).sum();
        let mut v = self.alloc_raw(rows, cols);
        let mut off = 0;
        for p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.cols(), cols, "concat_rows col mismatch");
            for r in 0..pv.rows() {
                v.row_slice_mut(off + r).copy_from_slice(pv.row_slice(r));
            }
            off += pv.rows();
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        for &p in parts {
            self.bump(p);
        }
        self.push(Op::ConcatRows(parts.to_vec()), v, ng)
    }

    /// `1 × d` mean over rows.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let (rows, cols) = self.val(a).shape();
        assert!(rows > 0, "mean_rows of empty tensor");
        let mut v = self.alloc_zero(1, cols);
        let av = &self.nodes[a.0].value;
        for r in 0..rows {
            for (o, x) in v.data_mut().iter_mut().zip(av.row_slice(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / rows as f64;
        v.data_mut().iter_mut().for_each(|x| *x *= inv);
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::MeanRows(a), v, ng)
    }

    /// `1 × 1` sum of every element.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let s = self.val(a).sum();
        let mut v = self.alloc_raw(1, 1);
        v.data_mut()[0] = s;
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::SumAll(a), v, ng)
    }

    /// Row-wise layer normalization: each row is shifted to zero mean and
    /// scaled to unit variance (`eps` stabilizes near-constant rows). Affine
    /// parameters, when wanted, compose via [`Graph::mul`]/[`Graph::add_row`].
    pub fn layer_norm_rows(&mut self, a: NodeId, eps: f64) -> NodeId {
        let (rows, cols) = self.val(a).shape();
        let mut v = self.alloc_raw(rows, cols);
        v.copy_from(&self.nodes[a.0].value);
        for r in 0..rows {
            let row = v.row_slice_mut(r);
            let n = row.len() as f64;
            let mean = row.iter().sum::<f64>() / n;
            let var = row.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            let inv = 1.0 / (var + eps).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) * inv;
            }
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::LayerNormRows(a, eps), v, ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let (rows, cols) = self.val(a).shape();
        let mut v = self.alloc_raw(rows, cols);
        v.copy_from(&self.nodes[a.0].value);
        for r in 0..rows {
            let row = v.row_slice_mut(r);
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                z += *x;
            }
            for x in row.iter_mut() {
                *x /= z;
            }
        }
        let ng = self.needs(a);
        self.bump(a);
        self.push(Op::SoftmaxRows(a), v, ng)
    }

    /// Cosine similarity of two same-shaped tensors (flattened) → `1 × 1`.
    pub fn cos_sim(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let s = self.val(a).cosine(self.val(b));
        let mut v = self.alloc_raw(1, 1);
        v.data_mut()[0] = s;
        let ng = self.needs(a) || self.needs(b);
        self.bump(a);
        self.bump(b);
        self.push(Op::CosSim(a, b), v, ng)
    }

    /// Flat dot product → `1 × 1`.
    pub fn dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let s = self.val(a).flat_dot(self.val(b));
        let mut v = self.alloc_raw(1, 1);
        v.data_mut()[0] = s;
        let ng = self.needs(a) || self.needs(b);
        self.bump(a);
        self.bump(b);
        self.push(Op::Dot(a, b), v, ng)
    }

    /// Numerically stable `log Σᵢ exp(xᵢ)` over `1 × 1` scalar nodes → `1 × 1`.
    pub fn log_sum_exp(&mut self, xs: &[NodeId]) -> NodeId {
        assert!(!xs.is_empty(), "log_sum_exp of nothing");
        let m = xs.iter().map(|&x| self.val(x).item()).fold(f64::NEG_INFINITY, f64::max);
        let s: f64 = xs.iter().map(|&x| (self.nodes[x.0].value.item() - m).exp()).sum();
        let mut v = self.alloc_raw(1, 1);
        v.data_mut()[0] = m + s.ln();
        let ng = xs.iter().any(|&x| self.needs(x));
        for &x in xs {
            self.bump(x);
        }
        self.push(Op::LogSumExp(xs.to_vec()), v, ng)
    }

    /// Softmax cross-entropy of `1 × k` logits vs. class index → `1 × 1`.
    pub fn cross_entropy(&mut self, logits: NodeId, target: usize) -> NodeId {
        let lv = self.val(logits);
        assert_eq!(lv.rows(), 1, "cross_entropy expects 1 x k logits");
        assert!(target < lv.cols(), "cross_entropy target out of range");
        let row = lv.row_slice(0);
        let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = m + row.iter().map(|v| (v - m).exp()).sum::<f64>().ln();
        let s = lse - row[target];
        let mut v = self.alloc_raw(1, 1);
        v.data_mut()[0] = s;
        let ng = self.needs(logits);
        self.bump(logits);
        self.push(Op::CrossEntropy(logits, target), v, ng)
    }

    // ------------------------------------------------------------- fused ops

    /// Fused `act(x · W [+ 1·b])` in one tape node.
    ///
    /// `W` and `b` are read directly from the parameter store — no
    /// parameter-clone nodes on the tape — and the backward computes `dx`,
    /// `dW`, `db` in closed form with accumulating kernels.
    pub fn affine(&mut self, x: NodeId, w: ParamId, b: Option<ParamId>, act: Activation) -> NodeId {
        let (n, din) = self.val(x).shape();
        let (wr, dout) = self.params.value(w).shape();
        assert_eq!(din, wr, "affine: input cols {din} != weight rows {wr}");
        if let Some(bid) = b {
            assert_eq!(self.params.value(bid).shape(), (1, dout), "affine: bias shape mismatch");
        }
        let mut z = self.alloc_zero(n, dout);
        let kn = kernels::active();
        self.nodes[x.0].value.matmul_acc(self.params.value(w), &mut z);
        if let Some(bid) = b {
            kn.add_row_assign(n, dout, z.data_mut(), self.params.value(bid).data());
        }
        match act {
            Activation::Identity => {}
            Activation::Sigmoid => kn.sigmoid_inplace(z.data_mut()),
            Activation::Tanh => kn.tanh_inplace(z.data_mut()),
            Activation::Relu => kn.relu_inplace(z.data_mut()),
        }
        self.bump(x);
        self.push(Op::Affine { x, w, b, act }, z, true)
    }

    /// Fused four-gate LSTM cell in one tape node.
    ///
    /// `x` is `(n, in_dim)`, `h`/`c` are `(n, hidden)`; `wx`/`wh`/`b` are the
    /// layer's pre-packed `[i | f | g | o]` gate blocks. The node value is
    /// `[h_new | c_new]` (`n × 2·hidden`); callers split it with
    /// [`Graph::slice_cols`]. Post-activation gates are saved inside the node
    /// for the closed-form backward.
    #[allow(clippy::too_many_arguments)]
    pub fn lstm_cell(
        &mut self,
        x: NodeId,
        h: NodeId,
        c: NodeId,
        wx: ParamId,
        wh: ParamId,
        b: ParamId,
        hidden: usize,
    ) -> NodeId {
        let (n, din) = self.val(x).shape();
        assert_eq!(self.val(h).shape(), (n, hidden), "lstm_cell: h shape mismatch");
        assert_eq!(self.val(c).shape(), (n, hidden), "lstm_cell: c shape mismatch");
        assert_eq!(self.params.value(wx).shape(), (din, 4 * hidden), "lstm_cell: wx shape");
        assert_eq!(self.params.value(wh).shape(), (hidden, 4 * hidden), "lstm_cell: wh shape");
        assert_eq!(self.params.value(b).shape(), (1, 4 * hidden), "lstm_cell: b shape");

        // z = x·Wx + h·Wh + 1·b, all four gate blocks at once.
        let mut z = self.alloc_zero(n, 4 * hidden);
        let mut saved = self.alloc_raw(n, 5 * hidden);
        let mut out = self.alloc_raw(n, 2 * hidden);
        let kn = kernels::active();
        self.nodes[x.0].value.matmul_acc(self.params.value(wx), &mut z);
        self.nodes[h.0].value.matmul_acc(self.params.value(wh), &mut z);
        kn.add_row_assign(n, 4 * hidden, z.data_mut(), self.params.value(b).data());
        let cv = &self.nodes[c.0].value;
        kn.lstm_gates(n, hidden, z.data(), cv.data(), saved.data_mut(), out.data_mut());
        pool_put(&mut self.pool, z);
        self.bump(x);
        self.bump(h);
        self.bump(c);
        self.push(Op::LstmCell { x, h, c, wx, wh, b, hidden, saved }, out, true)
    }

    // ----------------------------------------------------------- composites

    /// Mean squared error between a prediction node and a constant target.
    pub fn mse_to_const(&mut self, pred: NodeId, target: &Tensor) -> NodeId {
        let (r, c) = target.shape();
        let mut tv = self.alloc_raw(r, c);
        tv.copy_from(target);
        let t = self.push(Op::Input, tv, false);
        let d = self.sub(pred, t);
        let sq = self.mul(d, d);
        let s = self.sum_all(sq);
        self.scale_inplace(s, 1.0 / target.len() as f64)
    }

    /// Mean of several `1 × 1` scalar nodes.
    pub fn mean_scalars(&mut self, xs: &[NodeId]) -> NodeId {
        assert!(!xs.is_empty(), "mean_scalars of nothing");
        let stacked = self.concat_rows(xs);
        let s = self.sum_all(stacked);
        self.scale_inplace(s, 1.0 / xs.len() as f64)
    }

    // ------------------------------------------------------------- backward

    /// Run backpropagation from a `1 × 1` loss node.
    ///
    /// Parameter gradients are **accumulated** into the tape's [`GradStore`]
    /// (see [`Graph::grads`] / [`Graph::into_grads`] / [`Graph::finish`]).
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(self.nodes[loss.0].shape, (1, 1), "backward from non-scalar");
        let Self { params, grads, nodes, pool, profiler, .. } = self;
        let params: &Parameters = params;

        let mut seed = take_grad(nodes, pool, loss);
        seed.data_mut()[0] = 1.0;
        nodes[loss.0].grad = Some(seed);

        for i in (0..nodes.len()).rev() {
            if !nodes[i].needs_grad {
                continue;
            }
            // Take the adjoint and the op out of the node so predecessor
            // buffers can be borrowed freely; both are restored below.
            let Some(g) = nodes[i].grad.take() else { continue };
            let op = mem::replace(&mut nodes[i].op, Op::Input);
            let bwd_mark = profiler.as_ref().map(|_| Instant::now());
            match &op {
                Op::Input => {}
                Op::Param(pid) => {
                    let (rows, cols) = params.value(*pid).shape();
                    grads.entry_pooled(*pid, rows, cols, pool.as_deref_mut()).add_assign(&g);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        g.matmul_nt_acc(&nodes[b.0].value, &mut ga);
                        nodes[a.0].grad = Some(ga);
                    }
                    if nodes[b.0].needs_grad {
                        let mut gb = take_grad(nodes, pool, b);
                        nodes[a.0].value.matmul_tn_acc(&g, &mut gb);
                        nodes[b.0].grad = Some(gb);
                    }
                }
                Op::MatMulNt(a, b) => {
                    // C = A·Bᵀ  ⇒  dA = dC·B ; dB = dCᵀ·A.
                    let (a, b) = (*a, *b);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        g.matmul_acc(&nodes[b.0].value, &mut ga);
                        nodes[a.0].grad = Some(ga);
                    }
                    if nodes[b.0].needs_grad {
                        let mut gb = take_grad(nodes, pool, b);
                        g.matmul_tn_acc(&nodes[a.0].value, &mut gb);
                        nodes[b.0].grad = Some(gb);
                    }
                }
                Op::Add(a, b) => {
                    for &n in &[*a, *b] {
                        if nodes[n.0].needs_grad {
                            let mut gn = take_grad(nodes, pool, n);
                            gn.add_assign(&g);
                            nodes[n.0].grad = Some(gn);
                        }
                    }
                }
                Op::AddRow(a, row) => {
                    let (a, row) = (*a, *row);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        ga.add_assign(&g);
                        nodes[a.0].grad = Some(ga);
                    }
                    if nodes[row.0].needs_grad {
                        let mut gr = take_grad(nodes, pool, row);
                        for r in 0..g.rows() {
                            for (d, v) in gr.data_mut().iter_mut().zip(g.row_slice(r)) {
                                *d += v;
                            }
                        }
                        nodes[row.0].grad = Some(gr);
                    }
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        ga.add_assign(&g);
                        nodes[a.0].grad = Some(ga);
                    }
                    if nodes[b.0].needs_grad {
                        let mut gb = take_grad(nodes, pool, b);
                        gb.axpy(-1.0, &g);
                        nodes[b.0].grad = Some(gb);
                    }
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        ga.add_prod(&g, &nodes[b.0].value);
                        nodes[a.0].grad = Some(ga);
                    }
                    if nodes[b.0].needs_grad {
                        let mut gb = take_grad(nodes, pool, b);
                        gb.add_prod(&g, &nodes[a.0].value);
                        nodes[b.0].grad = Some(gb);
                    }
                }
                Op::Scale(a, c) => {
                    let (a, c) = (*a, *c);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        ga.axpy(c, &g);
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        let y = &nodes[i].value;
                        for ((d, &gv), &yv) in ga.data_mut().iter_mut().zip(g.data()).zip(y.data())
                        {
                            *d += gv * yv * (1.0 - yv);
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::Tanh(a) => {
                    let a = *a;
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        let y = &nodes[i].value;
                        for ((d, &gv), &yv) in ga.data_mut().iter_mut().zip(g.data()).zip(y.data())
                        {
                            *d += gv * (1.0 - yv * yv);
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::Relu(a) => {
                    // y = max(x, 0), so y > 0 ⇔ x > 0: the backward can use
                    // its own output, keeping the op in-place-eligible.
                    let a = *a;
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        let y = &nodes[i].value;
                        for ((d, &gv), &yv) in ga.data_mut().iter_mut().zip(g.data()).zip(y.data())
                        {
                            if yv > 0.0 {
                                *d += gv;
                            }
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::Ln(a) => {
                    let a = *a;
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        let x = &nodes[a.0].value;
                        for ((d, &gv), &xv) in ga.data_mut().iter_mut().zip(g.data()).zip(x.data())
                        {
                            *d += gv / xv;
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::SliceCols(a, start, _end) => {
                    let (a, start) = (*a, *start);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        for r in 0..g.rows() {
                            let dst = &mut ga.row_slice_mut(r)[start..start + g.cols()];
                            for (d, v) in dst.iter_mut().zip(g.row_slice(r)) {
                                *d += v;
                            }
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = nodes[p.0].shape.1;
                        if nodes[p.0].needs_grad {
                            let mut gp = take_grad(nodes, pool, p);
                            for r in 0..g.rows() {
                                let src = &g.row_slice(r)[off..off + w];
                                for (d, v) in gp.row_slice_mut(r).iter_mut().zip(src) {
                                    *d += v;
                                }
                            }
                            nodes[p.0].grad = Some(gp);
                        }
                        off += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let nr = nodes[p.0].shape.0;
                        if nodes[p.0].needs_grad {
                            let mut gp = take_grad(nodes, pool, p);
                            for r in 0..nr {
                                for (d, v) in
                                    gp.row_slice_mut(r).iter_mut().zip(g.row_slice(off + r))
                                {
                                    *d += v;
                                }
                            }
                            nodes[p.0].grad = Some(gp);
                        }
                        off += nr;
                    }
                }
                Op::MeanRows(a) => {
                    let a = *a;
                    if nodes[a.0].needs_grad {
                        let n = nodes[a.0].shape.0;
                        let inv = 1.0 / n as f64;
                        let mut ga = take_grad(nodes, pool, a);
                        for r in 0..n {
                            for (d, v) in ga.row_slice_mut(r).iter_mut().zip(g.row_slice(0)) {
                                *d += v * inv;
                            }
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::SumAll(a) => {
                    let a = *a;
                    if nodes[a.0].needs_grad {
                        let gv = g.item();
                        let mut ga = take_grad(nodes, pool, a);
                        ga.data_mut().iter_mut().for_each(|d| *d += gv);
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::SoftmaxRows(a) => {
                    let a = *a;
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        let y = &nodes[i].value;
                        for r in 0..y.rows() {
                            let yrow = y.row_slice(r);
                            let grow = g.row_slice(r);
                            let dotgy: f64 = yrow.iter().zip(grow).map(|(yv, gv)| yv * gv).sum();
                            for ((d, &yv), &gv) in
                                ga.row_slice_mut(r).iter_mut().zip(yrow).zip(grow)
                            {
                                *d += yv * (gv - dotgy);
                            }
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::CosSim(a, b) => {
                    let (a, b) = (*a, *b);
                    let gv = g.item();
                    let na = nodes[a.0].value.norm();
                    let nb = nodes[b.0].value.norm();
                    if na < 1e-12 || nb < 1e-12 {
                        // Value was defined as 0; treat gradient as 0 too.
                    } else {
                        let c = nodes[a.0].value.flat_dot(&nodes[b.0].value) / (na * nb);
                        if nodes[a.0].needs_grad {
                            // d/da = b/(|a||b|) − c · a/|a|²
                            let mut ga = take_grad(nodes, pool, a);
                            let (s1, s2) = (1.0 / (na * nb), -c / (na * na));
                            for ((d, &xb), &xa) in ga
                                .data_mut()
                                .iter_mut()
                                .zip(nodes[b.0].value.data())
                                .zip(nodes[a.0].value.data())
                            {
                                *d += gv * (xb * s1 + xa * s2);
                            }
                            nodes[a.0].grad = Some(ga);
                        }
                        if nodes[b.0].needs_grad {
                            let mut gb = take_grad(nodes, pool, b);
                            let (s1, s2) = (1.0 / (na * nb), -c / (nb * nb));
                            for ((d, &xa), &xb) in gb
                                .data_mut()
                                .iter_mut()
                                .zip(nodes[a.0].value.data())
                                .zip(nodes[b.0].value.data())
                            {
                                *d += gv * (xa * s1 + xb * s2);
                            }
                            nodes[b.0].grad = Some(gb);
                        }
                    }
                }
                Op::Dot(a, b) => {
                    let (a, b) = (*a, *b);
                    let gv = g.item();
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        ga.axpy(gv, &nodes[b.0].value);
                        nodes[a.0].grad = Some(ga);
                    }
                    if nodes[b.0].needs_grad {
                        let mut gb = take_grad(nodes, pool, b);
                        gb.axpy(gv, &nodes[a.0].value);
                        nodes[b.0].grad = Some(gb);
                    }
                }
                Op::LogSumExp(xs) => {
                    let gv = g.item();
                    let out = nodes[i].value.item();
                    for &x in xs {
                        if nodes[x.0].needs_grad {
                            let w = (nodes[x.0].value.item() - out).exp();
                            let mut gx = take_grad(nodes, pool, x);
                            gx.data_mut()[0] += gv * w;
                            nodes[x.0].grad = Some(gx);
                        }
                    }
                }
                Op::CrossEntropy(logits, target) => {
                    let (logits, target) = (*logits, *target);
                    if nodes[logits.0].needs_grad {
                        let gv = g.item();
                        let mut gl = take_grad(nodes, pool, logits);
                        let row = nodes[logits.0].value.row_slice(0);
                        let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let z: f64 = row.iter().map(|v| (v - m).exp()).sum();
                        for (j, (d, &v)) in gl.row_slice_mut(0).iter_mut().zip(row).enumerate() {
                            let p = (v - m).exp() / z;
                            *d += gv * (p - if j == target { 1.0 } else { 0.0 });
                        }
                        nodes[logits.0].grad = Some(gl);
                    }
                }
                Op::SliceRows(a, start, _end) => {
                    let (a, start) = (*a, *start);
                    if nodes[a.0].needs_grad {
                        let mut ga = take_grad(nodes, pool, a);
                        for r in 0..g.rows() {
                            for (d, v) in ga.row_slice_mut(start + r).iter_mut().zip(g.row_slice(r))
                            {
                                *d += v;
                            }
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::LayerNormRows(a, eps) => {
                    let (a, eps) = (*a, *eps);
                    if nodes[a.0].needs_grad {
                        // With x̂ = (x − μ)/σ:
                        // dx = (1/σ) · (dy − mean(dy) − x̂ · mean(dy ⊙ x̂)).
                        let mut ga = take_grad(nodes, pool, a);
                        let x = &nodes[a.0].value;
                        let xhat = &nodes[i].value;
                        for r in 0..x.rows() {
                            let n = x.cols() as f64;
                            let xrow = x.row_slice(r);
                            let mean = xrow.iter().sum::<f64>() / n;
                            let var = xrow.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                            let inv = 1.0 / (var + eps).sqrt();
                            let grow = g.row_slice(r);
                            let hrow = xhat.row_slice(r);
                            let mean_dy = grow.iter().sum::<f64>() / n;
                            let mean_dyh: f64 =
                                grow.iter().zip(hrow).map(|(d, h)| d * h).sum::<f64>() / n;
                            for ((t, &dy), &h) in ga.row_slice_mut(r).iter_mut().zip(grow).zip(hrow)
                            {
                                *t += inv * (dy - mean_dy - h * mean_dyh);
                            }
                        }
                        nodes[a.0].grad = Some(ga);
                    }
                }
                Op::EmbedLookup(pid, indices) => {
                    let (rows, cols) = params.value(*pid).shape();
                    let table_grad = grads.entry_pooled(*pid, rows, cols, pool.as_deref_mut());
                    for (r, &ix) in indices.iter().enumerate() {
                        for (d, v) in table_grad.row_slice_mut(ix).iter_mut().zip(g.row_slice(r)) {
                            *d += v;
                        }
                    }
                }
                Op::GatherRow(segs) => {
                    let adj = g.row_slice(0);
                    for &(pid, ix, off) in segs.iter() {
                        let (rows, cols) = params.value(pid).shape();
                        let table_grad = grads.entry_pooled(pid, rows, cols, pool.as_deref_mut());
                        kernels::active()
                            .add_assign(table_grad.row_slice_mut(ix), &adj[off..off + cols]);
                    }
                }
                Op::Affine { x, w, b, act } => {
                    let (x, w, b, act) = (*x, *w, *b, *act);
                    let (n, dout) = nodes[i].shape;
                    // dz = dL/d(pre-activation), derived from the node's own
                    // output for every activation (ReLU via the sign trick).
                    let mut dz = pool_take_raw(pool, n, dout);
                    {
                        let y = &nodes[i].value;
                        match act {
                            Activation::Identity => dz.copy_from(&g),
                            Activation::Sigmoid => {
                                for ((d, &gv), &yv) in
                                    dz.data_mut().iter_mut().zip(g.data()).zip(y.data())
                                {
                                    *d = gv * yv * (1.0 - yv);
                                }
                            }
                            Activation::Tanh => {
                                for ((d, &gv), &yv) in
                                    dz.data_mut().iter_mut().zip(g.data()).zip(y.data())
                                {
                                    *d = gv * (1.0 - yv * yv);
                                }
                            }
                            Activation::Relu => {
                                for ((d, &gv), &yv) in
                                    dz.data_mut().iter_mut().zip(g.data()).zip(y.data())
                                {
                                    *d = if yv > 0.0 { gv } else { 0.0 };
                                }
                            }
                        }
                    }
                    if nodes[x.0].needs_grad {
                        let mut gx = take_grad(nodes, pool, x);
                        dz.matmul_nt_acc(params.value(w), &mut gx);
                        nodes[x.0].grad = Some(gx);
                    }
                    let (din, _) = params.value(w).shape();
                    let gw = grads.entry_pooled(w, din, dout, pool.as_deref_mut());
                    nodes[x.0].value.matmul_tn_acc(&dz, gw);
                    if let Some(bid) = b {
                        let gb = grads.entry_pooled(bid, 1, dout, pool.as_deref_mut());
                        kernels::active().add_rows_acc(n, dout, dz.data(), gb.data_mut());
                    }
                    pool_put(pool, dz);
                }
                Op::LstmCell { x, h, c, wx, wh, b, hidden, saved } => {
                    let (x, h, c) = (*x, *h, *c);
                    let (wx, wh, b, hidden) = (*wx, *wh, *b, *hidden);
                    let n = nodes[i].shape.0;
                    // Adjoint g is n × 2h over [h_new | c_new]. Push it back
                    // through the gates into dz (n × 4h, pre-activation) and
                    // dc_old (n × h).
                    let mut dz = pool_take_raw(pool, n, 4 * hidden);
                    let mut dc_old = pool_take_raw(pool, n, hidden);
                    kernels::active().lstm_gates_backward(
                        n,
                        hidden,
                        saved.data(),
                        g.data(),
                        nodes[c.0].value.data(),
                        dz.data_mut(),
                        dc_old.data_mut(),
                    );
                    if nodes[x.0].needs_grad {
                        let mut gx = take_grad(nodes, pool, x);
                        dz.matmul_nt_acc(params.value(wx), &mut gx);
                        nodes[x.0].grad = Some(gx);
                    }
                    if nodes[h.0].needs_grad {
                        let mut gh = take_grad(nodes, pool, h);
                        dz.matmul_nt_acc(params.value(wh), &mut gh);
                        nodes[h.0].grad = Some(gh);
                    }
                    if nodes[c.0].needs_grad {
                        let mut gc = take_grad(nodes, pool, c);
                        gc.add_assign(&dc_old);
                        nodes[c.0].grad = Some(gc);
                    }
                    let (din, _) = params.value(wx).shape();
                    let gwx = grads.entry_pooled(wx, din, 4 * hidden, pool.as_deref_mut());
                    nodes[x.0].value.matmul_tn_acc(&dz, gwx);
                    let gwh = grads.entry_pooled(wh, hidden, 4 * hidden, pool.as_deref_mut());
                    nodes[h.0].value.matmul_tn_acc(&dz, gwh);
                    let gb = grads.entry_pooled(b, 1, 4 * hidden, pool.as_deref_mut());
                    kernels::active().add_rows_acc(n, 4 * hidden, dz.data(), gb.data_mut());
                    pool_put(pool, dz);
                    pool_put(pool, dc_old);
                }
            }
            if let (Some(p), Some(mark)) = (profiler.as_deref_mut(), bwd_mark) {
                p.record_backward(op.kind().name(), mark.elapsed().as_nanos() as u64);
            }
            nodes[i].op = op;
            nodes[i].grad = Some(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_with(values: &[(&str, Tensor)]) -> (Parameters, Vec<ParamId>) {
        let mut p = Parameters::new();
        let ids = values.iter().map(|(n, t)| p.register(*n, t.clone())).collect();
        (p, ids)
    }

    #[test]
    fn forward_matmul_add_sigmoid() {
        let (p, ids) = params_with(&[
            ("w", Tensor::from_vec(2, 1, vec![1.0, -1.0])),
            ("b", Tensor::scalar(0.5)),
        ]);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::row(vec![2.0, 1.0]));
        let w = g.param(ids[0]);
        let b = g.param(ids[1]);
        let wx = g.matmul(x, w);
        let z = g.add(wx, b);
        let y = g.sigmoid(z);
        // z = 2 - 1 + 0.5 = 1.5
        let expect = 1.0 / (1.0 + (-1.5f64).exp());
        assert!((g.value(y).item() - expect).abs() < 1e-12);
    }

    #[test]
    fn backward_simple_linear() {
        // loss = (w·x)² with x = 3, w = 2 → loss = 36, dL/dw = 2·w·x² = 36.
        let (p, ids) = params_with(&[("w", Tensor::scalar(2.0))]);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::scalar(3.0));
        let w = g.param(ids[0]);
        let wx = g.mul(w, x);
        let loss = g.mul(wx, wx);
        g.backward(loss);
        assert!((g.grads().grad(ids[0]).unwrap().item() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn backward_accumulates_across_uses() {
        // loss = w + w → dL/dw = 2.
        let (p, ids) = params_with(&[("w", Tensor::scalar(1.0))]);
        let mut g = Graph::new(&p);
        let w = g.param(ids[0]);
        let loss = g.add(w, w);
        g.backward(loss);
        assert!((g.grads().grad(ids[0]).unwrap().item() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finish_returns_loss_and_grads() {
        let (p, ids) = params_with(&[("w", Tensor::scalar(2.0))]);
        let mut g = Graph::new(&p);
        let w = g.param(ids[0]);
        let loss = g.mul(w, w);
        let (value, grads) = g.finish(loss);
        assert!((value - 4.0).abs() < 1e-12);
        assert!((grads.grad(ids[0]).unwrap().item() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn node_grads_allocate_lazily() {
        let (p, ids) = params_with(&[("w", Tensor::scalar(1.0))]);
        let mut g = Graph::new(&p);
        let dead = g.input(Tensor::zeros(8, 8));
        let w = g.param(ids[0]);
        let loss = g.mul(w, w);
        g.backward(loss);
        assert!(g.node_grad(dead).is_none(), "constant input must never allocate a grad");
        assert!(g.node_grad(loss).is_some());
    }

    #[test]
    fn two_tapes_share_one_parameter_store() {
        // Data parallelism in miniature: two tapes over the same &Parameters,
        // reduced in fixed order, equals one tape over the combined loss.
        let (p, ids) = params_with(&[("w", Tensor::scalar(3.0))]);
        let run = |x: f64| {
            let mut g = Graph::new(&p);
            let xn = g.input(Tensor::scalar(x));
            let w = g.param(ids[0]);
            let wx = g.mul(w, xn);
            let loss = g.mul(wx, wx);
            g.finish(loss).1
        };
        let (g1, g2) = (run(2.0), run(5.0));
        let mut reduced = GradStore::new();
        reduced.accumulate(&g1);
        reduced.accumulate(&g2);
        // d/dw [ (2w)² + (5w)² ] = 2w·(4 + 25) = 174 at w = 3.
        assert!((reduced.grad(ids[0]).unwrap().item() - 174.0).abs() < 1e-9);
    }

    #[test]
    fn embed_lookup_scatter_grad() {
        let (p, ids) = params_with(&[("e", Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]))]);
        let mut g = Graph::new(&p);
        let e = g.embed_lookup(ids[0], &[2, 0, 2]);
        assert_eq!(g.value(e).row_slice(0), &[5.0, 6.0]);
        let s = g.sum_all(e);
        g.backward(s);
        // Row 2 used twice, row 0 once, row 1 never.
        let gr = g.grads().grad(ids[0]).unwrap();
        assert_eq!(gr.row_slice(0), &[1.0, 1.0]);
        assert_eq!(gr.row_slice(1), &[0.0, 0.0]);
        assert_eq!(gr.row_slice(2), &[2.0, 2.0]);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_inputs() {
        let (p, _) = params_with(&[]);
        let mut g = Graph::new(&p);
        let a = g.input(Tensor::scalar(1000.0));
        let b = g.input(Tensor::scalar(1000.0));
        let l = g.log_sum_exp(&[a, b]);
        assert!((g.value(l).item() - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let (p, ids) = params_with(&[("l", Tensor::row(vec![1.0, 2.0, 3.0]))]);
        let mut g = Graph::new(&p);
        let l = g.param(ids[0]);
        let ce = g.cross_entropy(l, 1);
        let z: f64 = [1.0f64, 2.0, 3.0].iter().map(|v| v.exp()).sum();
        assert!((g.value(ce).item() - (z.ln() - 2.0)).abs() < 1e-9);
        g.backward(ce);
        let soft: Vec<f64> = [1.0f64, 2.0, 3.0].iter().map(|v| v.exp() / z).collect();
        let gr = g.grads().grad(ids[0]).unwrap();
        assert!((gr.get(0, 0) - soft[0]).abs() < 1e-9);
        assert!((gr.get(0, 1) - (soft[1] - 1.0)).abs() < 1e-9);
        assert!((gr.get(0, 2) - soft[2]).abs() < 1e-9);
    }

    #[test]
    fn cos_sim_of_identical_vectors_has_zero_grad() {
        // d cos(a,a)/da = 0 since cos is scale-invariant.
        let (p, ids) = params_with(&[("a", Tensor::row(vec![1.0, 2.0]))]);
        let mut g = Graph::new(&p);
        let a = g.param(ids[0]);
        let c = g.cos_sim(a, a);
        assert!((g.value(c).item() - 1.0).abs() < 1e-12);
        g.backward(c);
        if let Some(gr) = g.grads().grad(ids[0]) {
            for v in gr.data() {
                assert!(v.abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "backward from non-scalar")]
    fn backward_from_matrix_panics() {
        let (p, _) = params_with(&[]);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }

    // ------------------------------------------------------ pool integration

    #[test]
    fn pooled_tape_reuses_buffers_across_steps() {
        let (p, ids) = params_with(&[("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]))]);
        let mut pool = TensorPool::new();
        let run = |pool: &mut TensorPool| {
            let mut g = Graph::new_in(&p, pool);
            let x = g.input_row(&[1.0, -1.0]);
            let y = g.affine(x, ids[0], None, Activation::Tanh);
            let s = g.sum_all(y);
            let loss = g.mul(s, s);
            let (v, grads) = g.finish(loss);
            grads.release_into(pool);
            v
        };
        let v1 = run(&mut pool);
        let after_warmup = pool.stats().fresh_allocs;
        assert!(after_warmup > 0);
        let v2 = run(&mut pool);
        assert_eq!(v1, v2);
        assert_eq!(
            pool.stats().fresh_allocs,
            after_warmup,
            "steady-state step must allocate nothing"
        );
        assert!(pool.stats().reuses > 0);
        assert_eq!(pool.live(), 0, "all buffers must come home after the tape drops");
    }

    #[test]
    fn pooled_and_unpooled_runs_are_bit_identical() {
        let (p, ids) = params_with(&[
            ("w", Tensor::from_vec(2, 3, vec![0.3, -1.0, 0.5, 2.0, 0.1, -0.7])),
            ("b", Tensor::row(vec![0.1, -0.2, 0.3])),
        ]);
        let build = |g: &mut Graph<'_>| {
            let x = g.input_row(&[1.5, -2.5]);
            let y = g.affine(x, ids[0], Some(ids[1]), Activation::Sigmoid);
            let s = g.sum_all(y);
            g.mul(s, s)
        };
        let mut g1 = Graph::new(&p);
        let l1 = build(&mut g1);
        let (v1, gr1) = g1.finish(l1);

        let mut pool = TensorPool::new();
        // Dirty the pool so reuse actually exercises stale buffers.
        for _ in 0..3 {
            let mut g = Graph::new_in(&p, &mut pool);
            let l = build(&mut g);
            let (_, grads) = g.finish(l);
            grads.release_into(&mut pool);
        }
        let mut g2 = Graph::new_in(&p, &mut pool);
        let l2 = build(&mut g2);
        let (v2, gr2) = g2.finish(l2);

        assert_eq!(v1.to_bits(), v2.to_bits());
        for id in [ids[0], ids[1]] {
            let (a, b) = (gr1.grad(id).unwrap(), gr2.grad(id).unwrap());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn affine_matches_composed_ops() {
        let (p, ids) = params_with(&[
            ("w", Tensor::from_vec(3, 2, vec![0.5, -0.2, 1.0, 0.3, -0.4, 0.8])),
            ("b", Tensor::row(vec![0.25, -0.5])),
        ]);
        let x_data = Tensor::from_vec(2, 3, vec![1.0, -1.0, 2.0, 0.5, 0.0, -2.0]);

        let mut g1 = Graph::new(&p);
        let x1 = g1.input(x_data.clone());
        let y1 = g1.affine(x1, ids[0], Some(ids[1]), Activation::Tanh);
        let s1 = g1.sum_all(y1);
        let (v1, gr1) = g1.finish(s1);

        let mut g2 = Graph::new(&p);
        let x2 = g2.input(x_data);
        let w = g2.param(ids[0]);
        let b = g2.param(ids[1]);
        let xw = g2.matmul(x2, w);
        let z = g2.add_row(xw, b);
        let y2 = g2.tanh(z);
        let s2 = g2.sum_all(y2);
        let (v2, gr2) = g2.finish(s2);

        assert!((v1 - v2).abs() < 1e-12);
        for id in [ids[0], ids[1]] {
            let (a, b) = (gr1.grad(id).unwrap(), gr2.grad(id).unwrap());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-12, "affine grad mismatch: {x} vs {y}");
            }
        }
    }

    #[test]
    fn lstm_cell_matches_composed_gates() {
        let hidden = 3;
        let din = 2;
        let mk = |seed: usize, n: usize| {
            (0..n).map(|i| ((i + seed) as f64 * 0.37).sin() * 0.8).collect::<Vec<_>>()
        };
        let (p, ids) = params_with(&[
            ("wx", Tensor::from_vec(din, 4 * hidden, mk(1, din * 4 * hidden))),
            ("wh", Tensor::from_vec(hidden, 4 * hidden, mk(2, hidden * 4 * hidden))),
            ("b", Tensor::from_vec(1, 4 * hidden, mk(3, 4 * hidden))),
        ]);
        let xd = Tensor::from_vec(1, din, vec![0.7, -1.2]);
        let hd = Tensor::from_vec(1, hidden, vec![0.1, -0.3, 0.6]);
        let cd = Tensor::from_vec(1, hidden, vec![-0.5, 0.2, 0.9]);

        // Fused cell.
        let mut g1 = Graph::new(&p);
        let (x, h, c) = (g1.input(xd.clone()), g1.input(hd.clone()), g1.input(cd.clone()));
        let hc = g1.lstm_cell(x, h, c, ids[0], ids[1], ids[2], hidden);
        let h_new = g1.slice_cols(hc, 0, hidden);
        let s1 = g1.sum_all(h_new);
        let (v1, gr1) = g1.finish(s1);

        // Composed reference (the pre-fusion LstmLayer::step).
        let mut g2 = Graph::new(&p);
        let (x, h, c) = (g2.input(xd), g2.input(hd), g2.input(cd));
        let wx = g2.param(ids[0]);
        let wh = g2.param(ids[1]);
        let b = g2.param(ids[2]);
        let xw = g2.matmul(x, wx);
        let hw = g2.matmul(h, wh);
        let pre0 = g2.add(xw, hw);
        let pre = g2.add_row(pre0, b);
        let i_pre = g2.slice_cols(pre, 0, hidden);
        let f_pre = g2.slice_cols(pre, hidden, 2 * hidden);
        let g_pre = g2.slice_cols(pre, 2 * hidden, 3 * hidden);
        let o_pre = g2.slice_cols(pre, 3 * hidden, 4 * hidden);
        let i = g2.sigmoid(i_pre);
        let f = g2.sigmoid(f_pre);
        let cand = g2.tanh(g_pre);
        let o = g2.sigmoid(o_pre);
        let fc = g2.mul(f, c);
        let ig = g2.mul(i, cand);
        let c_new = g2.add(fc, ig);
        let c_tanh = g2.tanh(c_new);
        let h_new = g2.mul(o, c_tanh);
        let s2 = g2.sum_all(h_new);
        let (v2, gr2) = g2.finish(s2);

        assert!((v1 - v2).abs() < 1e-12, "forward mismatch: {v1} vs {v2}");
        for id in [ids[0], ids[1], ids[2]] {
            let (a, b) = (gr1.grad(id).unwrap(), gr2.grad(id).unwrap());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-10, "lstm_cell grad mismatch: {x} vs {y}");
            }
        }
    }

    #[test]
    fn inplace_ops_steal_only_when_sole_consumer() {
        let (p, ids) = params_with(&[("w", Tensor::row(vec![2.0, -1.0]))]);
        let mut g = Graph::new(&p);
        let w = g.param(ids[0]);
        let a = g.scale(w, 2.0);
        // `a` has no consumers yet → in-place steal is allowed.
        let b = g.tanh_inplace(a);
        assert!(g.node_grad(a).is_none());
        assert_eq!(g.value(b).data(), &[4.0f64.tanh(), (-2.0f64).tanh()]);
        // `b` now consumed by `s`, so an in-place op on `b` must fall back.
        let s = g.sum_all(b);
        let _also_uses_b = g.scale(b, 3.0);
        let d = g.scale_inplace(b, 5.0);
        assert_eq!(g.value(b).data(), &[4.0f64.tanh(), (-2.0f64).tanh()], "fallback must copy");
        assert_eq!(g.value(d).data()[0], 4.0f64.tanh() * 5.0);
        let loss = g.mul(s, s);
        g.backward(loss);
        assert!(g.grads().grad(ids[0]).is_some());
    }

    #[test]
    #[should_panic(expected = "recycled by an in-place op")]
    fn reading_a_stolen_value_panics() {
        let (p, ids) = params_with(&[("w", Tensor::row(vec![1.0, 2.0]))]);
        let mut g = Graph::new(&p);
        let w = g.param(ids[0]);
        let a = g.scale(w, 2.0);
        let _b = g.sigmoid_inplace(a);
        let _ = g.value(a);
    }

    #[test]
    fn inplace_chain_matches_plain_ops() {
        let (p, ids) = params_with(&[("w", Tensor::row(vec![0.5, -1.5, 2.0]))]);
        let run = |inplace: bool| {
            let mut g = Graph::new(&p);
            let w = g.param(ids[0]);
            let x = g.input_row(&[1.0, 2.0, 3.0]);
            let t = g.mul(w, x);
            let (sc, ac, rl) = if inplace {
                let sc = g.scale_inplace(t, -0.5);
                let ac = g.add_inplace(sc, w);
                (sc, ac, g.relu_inplace(ac))
            } else {
                let sc = g.scale(t, -0.5);
                let ac = g.add(sc, w);
                (sc, ac, g.relu(ac))
            };
            let _ = (sc, ac);
            let su = g.sum_all(rl);
            let loss = g.mul(su, su);
            g.finish(loss)
        };
        let (v1, gr1) = run(false);
        let (v2, gr2) = run(true);
        assert_eq!(v1.to_bits(), v2.to_bits());
        let (a, b) = (gr1.grad(ids[0]).unwrap(), gr2.grad(ids[0]).unwrap());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
