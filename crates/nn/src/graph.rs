//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every forward operation as a node; [`Graph::backward`]
//! walks the tape in reverse, propagating adjoints to inputs and accumulating
//! parameter gradients into the tape's own [`GradStore`]. Parameters are only
//! *read* during forward/backward, so multiple tapes can run concurrently over
//! one shared `&Parameters` — the basis for shard-parallel training. A fresh
//! graph is built per training step, which naturally supports the
//! variable-length paths this paper operates on.
//!
//! Node gradient buffers are allocated lazily, on first accumulation: nodes
//! that never receive an adjoint (constants, dead branches) cost no memory.
//!
//! Every op's gradient is verified against central finite differences in the
//! test suite (see `tests/gradcheck.rs` and [`crate::gradcheck`]).

use crate::params::{GradStore, ParamId, Parameters};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug)]
enum Op {
    /// Constant input; receives no gradient.
    Input,
    /// Reference to a trainable parameter.
    Param(ParamId),
    /// `A · B`
    MatMul(NodeId, NodeId),
    /// `A · Bᵀ`
    MatMulNt(NodeId, NodeId),
    /// Elementwise `A + B` (same shape).
    Add(NodeId, NodeId),
    /// `A + 1·r` — add a `1 × d` row vector to every row of `A`.
    AddRow(NodeId, NodeId),
    /// Elementwise `A - B`.
    Sub(NodeId, NodeId),
    /// Elementwise (Hadamard) `A ⊙ B`.
    Mul(NodeId, NodeId),
    /// `c · A`.
    Scale(NodeId, f64),
    /// Elementwise logistic sigmoid.
    Sigmoid(NodeId),
    /// Elementwise tanh.
    Tanh(NodeId),
    /// Elementwise ReLU.
    Relu(NodeId),
    /// Column slice `A[:, start..end]`.
    SliceCols(NodeId, usize, usize),
    /// Horizontal concatenation of several nodes.
    ConcatCols(Vec<NodeId>),
    /// Vertical stack of several nodes (all same `cols`).
    ConcatRows(Vec<NodeId>),
    /// `1 × d` mean over rows.
    MeanRows(NodeId),
    /// `1 × 1` sum of all elements.
    SumAll(NodeId),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Cosine similarity of two same-shaped tensors viewed as flat vectors → `1 × 1`.
    CosSim(NodeId, NodeId),
    /// Dot product of two same-shaped tensors viewed as flat vectors → `1 × 1`.
    Dot(NodeId, NodeId),
    /// `log Σ exp(xᵢ)` over a list of `1 × 1` scalars → `1 × 1`.
    LogSumExp(Vec<NodeId>),
    /// Softmax cross-entropy of `1 × k` logits against a class index → `1 × 1`.
    CrossEntropy(NodeId, usize),
    /// Row gather from a parameter matrix (embedding lookup).
    EmbedLookup(ParamId, Vec<usize>),
    /// Elementwise natural log (inputs must be positive).
    Ln(NodeId),
    /// Row-wise layer normalization (zero mean, unit variance per row).
    LayerNormRows(NodeId, f64),
    /// Row slice `A[start..end, :]`.
    SliceRows(NodeId, usize, usize),
}

struct Node {
    op: Op,
    value: Tensor,
    /// Adjoint buffer, allocated lazily on first accumulation.
    grad: Option<Tensor>,
    needs_grad: bool,
}

/// Reverse-mode autodiff tape over a shared, read-only parameter store.
pub struct Graph<'p> {
    params: &'p Parameters,
    grads: GradStore,
    nodes: Vec<Node>,
}

impl<'p> Graph<'p> {
    /// Start a fresh tape over the given parameter store.
    pub fn new(params: &'p Parameters) -> Self {
        Self { params, grads: GradStore::new(), nodes: Vec::with_capacity(256) }
    }

    /// Read-only access to the underlying parameters.
    pub fn params(&self) -> &Parameters {
        self.params
    }

    /// Parameter gradients accumulated so far (valid after [`Graph::backward`]).
    pub fn grads(&self) -> &GradStore {
        &self.grads
    }

    /// Consume the tape, keeping only the accumulated parameter gradients.
    pub fn into_grads(self) -> GradStore {
        self.grads
    }

    /// Run backward from `loss` and return `(loss value, parameter grads)`,
    /// consuming the tape. The common tail of every training step.
    pub fn finish(mut self, loss: NodeId) -> (f64, GradStore) {
        let value = self.value(loss).item();
        self.backward(loss);
        (value, self.grads)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Adjoint accumulated at a node, if any (valid after [`Graph::backward`];
    /// `None` ⇔ zero).
    pub fn node_grad(&self, id: NodeId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> NodeId {
        self.nodes.push(Node { op, value, grad: None, needs_grad });
        NodeId(self.nodes.len() - 1)
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    /// Node adjoint buffer, allocated as zeros on first touch.
    fn grad_entry(&mut self, id: NodeId) -> &mut Tensor {
        let node = &mut self.nodes[id.0];
        let (rows, cols) = node.value.shape();
        node.grad.get_or_insert_with(|| Tensor::zeros(rows, cols))
    }

    // ---------------------------------------------------------------- inputs

    /// Constant input tensor (no gradient).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value, false)
    }

    /// Reference a trainable parameter.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let value = self.params.value(id).clone();
        self.push(Op::Param(id), value, true)
    }

    /// Embedding lookup: gather `indices` rows of the parameter matrix.
    pub fn embed_lookup(&mut self, id: ParamId, indices: &[usize]) -> NodeId {
        let table = self.params.value(id);
        let cols = table.cols();
        let mut out = Tensor::zeros(indices.len(), cols);
        for (r, &ix) in indices.iter().enumerate() {
            assert!(ix < table.rows(), "embedding index {ix} out of range {}", table.rows());
            out.row_slice_mut(r).copy_from_slice(table.row_slice(ix));
        }
        self.push(Op::EmbedLookup(id, indices.to_vec()), out, true)
    }

    // ------------------------------------------------------------------- ops

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMul(a, b), v, ng)
    }

    /// `a · bᵀ`.
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul_nt(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMulNt(a, b), v, ng)
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Add(a, b), v, ng)
    }

    /// Add a `1 × d` row vector to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (av, rv) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        assert_eq!(rv.rows(), 1, "add_row: rhs must be a row vector");
        assert_eq!(av.cols(), rv.cols(), "add_row: col mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            for (x, y) in v.row_slice_mut(r).iter_mut().zip(rv.data()) {
                *x += y;
            }
        }
        let ng = self.needs(a) || self.needs(row);
        self.push(Op::AddRow(a, row), v, ng)
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Sub(a, b), v, ng)
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Mul(a, b), v, ng)
    }

    pub fn scale(&mut self, a: NodeId, c: f64) -> NodeId {
        let v = self.nodes[a.0].value.scale(c);
        let ng = self.needs(a);
        self.push(Op::Scale(a, c), v, ng)
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.needs(a);
        self.push(Op::Sigmoid(a), v, ng)
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f64::tanh);
        let ng = self.needs(a);
        self.push(Op::Tanh(a), v, ng)
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(Op::Relu(a), v, ng)
    }

    /// Elementwise natural log. Caller must guarantee strictly positive inputs.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f64::ln);
        let ng = self.needs(a);
        self.push(Op::Ln(a), v, ng)
    }

    /// Row slice `a[start..end, :]`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let av = &self.nodes[a.0].value;
        assert!(start < end && end <= av.rows(), "slice_rows out of range");
        let mut v = Tensor::zeros(end - start, av.cols());
        for r in start..end {
            v.row_slice_mut(r - start).copy_from_slice(av.row_slice(r));
        }
        let ng = self.needs(a);
        self.push(Op::SliceRows(a, start, end), v, ng)
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let av = &self.nodes[a.0].value;
        assert!(start < end && end <= av.cols(), "slice_cols out of range");
        let mut v = Tensor::zeros(av.rows(), end - start);
        for r in 0..av.rows() {
            v.row_slice_mut(r).copy_from_slice(&av.row_slice(r)[start..end]);
        }
        let ng = self.needs(a);
        self.push(Op::SliceCols(a, start, end), v, ng)
    }

    /// Horizontal concatenation of the given nodes.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = self.nodes[parts[0].0].value.rows();
        let cols: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut v = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                let pv = &self.nodes[p.0].value;
                assert_eq!(pv.rows(), rows, "concat_cols row mismatch");
                let w = pv.cols();
                v.row_slice_mut(r)[off..off + w].copy_from_slice(pv.row_slice(r));
                off += w;
            }
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(Op::ConcatCols(parts.to_vec()), v, ng)
    }

    /// Vertical stack of the given nodes.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let refs: Vec<&Tensor> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Tensor::stack_rows(&refs);
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(Op::ConcatRows(parts.to_vec()), v, ng)
    }

    /// `1 × d` mean over rows.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.mean_rows();
        let ng = self.needs(a);
        self.push(Op::MeanRows(a), v, ng)
    }

    /// `1 × 1` sum of every element.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        let ng = self.needs(a);
        self.push(Op::SumAll(a), v, ng)
    }

    /// Row-wise layer normalization: each row is shifted to zero mean and
    /// scaled to unit variance (`eps` stabilizes near-constant rows). Affine
    /// parameters, when wanted, compose via [`Graph::mul`]/[`Graph::add_row`].
    pub fn layer_norm_rows(&mut self, a: NodeId, eps: f64) -> NodeId {
        let av = &self.nodes[a.0].value;
        let mut v = av.clone();
        for r in 0..v.rows() {
            let row = v.row_slice_mut(r);
            let n = row.len() as f64;
            let mean = row.iter().sum::<f64>() / n;
            let var = row.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            let inv = 1.0 / (var + eps).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) * inv;
            }
        }
        let ng = self.needs(a);
        self.push(Op::LayerNormRows(a, eps), v, ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let av = &self.nodes[a.0].value;
        let mut v = av.clone();
        for r in 0..v.rows() {
            let row = v.row_slice_mut(r);
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                z += *x;
            }
            for x in row.iter_mut() {
                *x /= z;
            }
        }
        let ng = self.needs(a);
        self.push(Op::SoftmaxRows(a), v, ng)
    }

    /// Cosine similarity of two same-shaped tensors (flattened) → `1 × 1`.
    pub fn cos_sim(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a.0].value.cosine(&self.nodes[b.0].value));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::CosSim(a, b), v, ng)
    }

    /// Flat dot product → `1 × 1`.
    pub fn dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a.0].value.flat_dot(&self.nodes[b.0].value));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Dot(a, b), v, ng)
    }

    /// Numerically stable `log Σᵢ exp(xᵢ)` over `1 × 1` scalar nodes → `1 × 1`.
    pub fn log_sum_exp(&mut self, xs: &[NodeId]) -> NodeId {
        assert!(!xs.is_empty(), "log_sum_exp of nothing");
        let vals: Vec<f64> = xs.iter().map(|&x| self.nodes[x.0].value.item()).collect();
        let m = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s: f64 = vals.iter().map(|v| (v - m).exp()).sum();
        let v = Tensor::scalar(m + s.ln());
        let ng = xs.iter().any(|&x| self.needs(x));
        self.push(Op::LogSumExp(xs.to_vec()), v, ng)
    }

    /// Softmax cross-entropy of `1 × k` logits vs. class index → `1 × 1`.
    pub fn cross_entropy(&mut self, logits: NodeId, target: usize) -> NodeId {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.rows(), 1, "cross_entropy expects 1 x k logits");
        assert!(target < lv.cols(), "cross_entropy target out of range");
        let row = lv.row_slice(0);
        let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = m + row.iter().map(|v| (v - m).exp()).sum::<f64>().ln();
        let v = Tensor::scalar(lse - row[target]);
        let ng = self.needs(logits);
        self.push(Op::CrossEntropy(logits, target), v, ng)
    }

    // ----------------------------------------------------------- composites

    /// Mean squared error between a prediction node and a constant target.
    pub fn mse_to_const(&mut self, pred: NodeId, target: &Tensor) -> NodeId {
        let t = self.input(target.clone());
        let d = self.sub(pred, t);
        let sq = self.mul(d, d);
        let s = self.sum_all(sq);
        self.scale(s, 1.0 / target.len() as f64)
    }

    /// Mean of several `1 × 1` scalar nodes.
    pub fn mean_scalars(&mut self, xs: &[NodeId]) -> NodeId {
        assert!(!xs.is_empty(), "mean_scalars of nothing");
        let stacked = self.concat_rows(xs);
        let s = self.sum_all(stacked);
        self.scale(s, 1.0 / xs.len() as f64)
    }

    // ------------------------------------------------------------- backward

    /// Run backpropagation from a `1 × 1` loss node.
    ///
    /// Parameter gradients are **accumulated** into the tape's [`GradStore`]
    /// (see [`Graph::grads`] / [`Graph::into_grads`] / [`Graph::finish`]).
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "backward from non-scalar");
        *self.grad_entry(loss) = Tensor::scalar(1.0);

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            // Take the node's grad out to satisfy the borrow checker while we
            // mutate predecessor grads; a node never touched has zero adjoint.
            let Some(g) = self.nodes[i].grad.take() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => {
                    let pid = *pid;
                    let (rows, cols) = self.params.value(pid).shape();
                    self.grads.entry(pid, rows, cols).add_assign(&g);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        let da = g.matmul_nt(&self.nodes[b.0].value);
                        self.grad_entry(a).add_assign(&da);
                    }
                    if self.needs(b) {
                        let db = self.nodes[a.0].value.matmul_tn(&g);
                        self.grad_entry(b).add_assign(&db);
                    }
                }
                Op::MatMulNt(a, b) => {
                    // C = A·Bᵀ  ⇒  dA = dC·B ; dB = dCᵀ·A.
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        let da = g.matmul(&self.nodes[b.0].value);
                        self.grad_entry(a).add_assign(&da);
                    }
                    if self.needs(b) {
                        let db = g.matmul_tn(&self.nodes[a.0].value);
                        self.grad_entry(b).add_assign(&db);
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        self.grad_entry(a).add_assign(&g);
                    }
                    if self.needs(b) {
                        self.grad_entry(b).add_assign(&g);
                    }
                }
                Op::AddRow(a, row) => {
                    let (a, row) = (*a, *row);
                    if self.needs(a) {
                        self.grad_entry(a).add_assign(&g);
                    }
                    if self.needs(row) {
                        let cols = g.cols();
                        let mut dr = Tensor::zeros(1, cols);
                        for r in 0..g.rows() {
                            for (d, v) in dr.data_mut().iter_mut().zip(g.row_slice(r)) {
                                *d += v;
                            }
                        }
                        self.grad_entry(row).add_assign(&dr);
                    }
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        self.grad_entry(a).add_assign(&g);
                    }
                    if self.needs(b) {
                        self.grad_entry(b).axpy(-1.0, &g);
                    }
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        let da = g.mul(&self.nodes[b.0].value);
                        self.grad_entry(a).add_assign(&da);
                    }
                    if self.needs(b) {
                        let db = g.mul(&self.nodes[a.0].value);
                        self.grad_entry(b).add_assign(&db);
                    }
                }
                Op::Scale(a, c) => {
                    let (a, c) = (*a, *c);
                    if self.needs(a) {
                        self.grad_entry(a).axpy(c, &g);
                    }
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let y = &self.nodes[i].value;
                        let da = g.zip_with(y, |gv, yv| gv * yv * (1.0 - yv));
                        self.grad_entry(a).add_assign(&da);
                    }
                }
                Op::Tanh(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let y = &self.nodes[i].value;
                        let da = g.zip_with(y, |gv, yv| gv * (1.0 - yv * yv));
                        self.grad_entry(a).add_assign(&da);
                    }
                }
                Op::Relu(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let x = &self.nodes[a.0].value;
                        let da = g.zip_with(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                        self.grad_entry(a).add_assign(&da);
                    }
                }
                Op::Ln(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let x = &self.nodes[a.0].value;
                        let da = g.zip_with(x, |gv, xv| gv / xv);
                        self.grad_entry(a).add_assign(&da);
                    }
                }
                Op::SliceCols(a, start, _end) => {
                    let (a, start) = (*a, *start);
                    if self.needs(a) {
                        let target = self.grad_entry(a);
                        for r in 0..g.rows() {
                            let dst = &mut target.row_slice_mut(r)[start..start + g.cols()];
                            for (d, v) in dst.iter_mut().zip(g.row_slice(r)) {
                                *d += v;
                            }
                        }
                    }
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let mut off = 0;
                    for p in parts {
                        let w = self.nodes[p.0].value.cols();
                        if self.needs(p) {
                            let target = self.grad_entry(p);
                            for r in 0..g.rows() {
                                let src = &g.row_slice(r)[off..off + w];
                                for (d, v) in target.row_slice_mut(r).iter_mut().zip(src) {
                                    *d += v;
                                }
                            }
                        }
                        off += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let parts = parts.clone();
                    let mut off = 0;
                    for p in parts {
                        let nr = self.nodes[p.0].value.rows();
                        if self.needs(p) {
                            let target = self.grad_entry(p);
                            for r in 0..nr {
                                let src = g.row_slice(off + r);
                                for (d, v) in target.row_slice_mut(r).iter_mut().zip(src) {
                                    *d += v;
                                }
                            }
                        }
                        off += nr;
                    }
                }
                Op::MeanRows(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let n = self.nodes[a.0].value.rows();
                        let inv = 1.0 / n as f64;
                        let target = self.grad_entry(a);
                        for r in 0..n {
                            for (d, v) in target.row_slice_mut(r).iter_mut().zip(g.row_slice(0)) {
                                *d += v * inv;
                            }
                        }
                    }
                }
                Op::SumAll(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let gv = g.item();
                        self.grad_entry(a).data_mut().iter_mut().for_each(|d| *d += gv);
                    }
                }
                Op::SoftmaxRows(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let y = self.nodes[i].value.clone();
                        let target = self.grad_entry(a);
                        for r in 0..y.rows() {
                            let yrow = y.row_slice(r);
                            let grow = g.row_slice(r);
                            let dotgy: f64 = yrow.iter().zip(grow).map(|(yv, gv)| yv * gv).sum();
                            for ((d, &yv), &gv) in
                                target.row_slice_mut(r).iter_mut().zip(yrow).zip(grow)
                            {
                                *d += yv * (gv - dotgy);
                            }
                        }
                    }
                }
                Op::CosSim(a, b) => {
                    let (a, b) = (*a, *b);
                    let gv = g.item();
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    let na = av.norm();
                    let nb = bv.norm();
                    if na < 1e-12 || nb < 1e-12 {
                        // Value was defined as 0; treat gradient as 0 too.
                    } else {
                        let c = av.flat_dot(&bv) / (na * nb);
                        if self.needs(a) {
                            // d/da = b/(|a||b|) − c · a/|a|²
                            let mut da = bv.scale(1.0 / (na * nb));
                            da.axpy(-c / (na * na), &av);
                            self.grad_entry(a).axpy(gv, &da);
                        }
                        if self.needs(b) {
                            let mut db = av.scale(1.0 / (na * nb));
                            db.axpy(-c / (nb * nb), &bv);
                            self.grad_entry(b).axpy(gv, &db);
                        }
                    }
                }
                Op::Dot(a, b) => {
                    let (a, b) = (*a, *b);
                    let gv = g.item();
                    if self.needs(a) {
                        let bv = self.nodes[b.0].value.clone();
                        self.grad_entry(a).axpy(gv, &bv);
                    }
                    if self.needs(b) {
                        let av = self.nodes[a.0].value.clone();
                        self.grad_entry(b).axpy(gv, &av);
                    }
                }
                Op::LogSumExp(xs) => {
                    let xs = xs.clone();
                    let gv = g.item();
                    let out = self.nodes[i].value.item();
                    for x in xs {
                        if self.needs(x) {
                            let w = (self.nodes[x.0].value.item() - out).exp();
                            self.grad_entry(x).data_mut()[0] += gv * w;
                        }
                    }
                }
                Op::CrossEntropy(logits, target) => {
                    let (logits, target) = (*logits, *target);
                    if self.needs(logits) {
                        let gv = g.item();
                        let lv = self.nodes[logits.0].value.clone();
                        let row = lv.row_slice(0);
                        let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let z: f64 = row.iter().map(|v| (v - m).exp()).sum();
                        let dst = self.grad_entry(logits).row_slice_mut(0);
                        for (j, (d, &v)) in dst.iter_mut().zip(row).enumerate() {
                            let p = (v - m).exp() / z;
                            *d += gv * (p - if j == target { 1.0 } else { 0.0 });
                        }
                    }
                }
                Op::SliceRows(a, start, _end) => {
                    let (a, start) = (*a, *start);
                    if self.needs(a) {
                        let target = self.grad_entry(a);
                        for r in 0..g.rows() {
                            for (d, v) in
                                target.row_slice_mut(start + r).iter_mut().zip(g.row_slice(r))
                            {
                                *d += v;
                            }
                        }
                    }
                }
                Op::LayerNormRows(a, eps) => {
                    let (a, eps) = (*a, *eps);
                    if self.needs(a) {
                        // With x̂ = (x − μ)/σ:
                        // dx = (1/σ) · (dy − mean(dy) − x̂ · mean(dy ⊙ x̂)).
                        let x = self.nodes[a.0].value.clone();
                        let xhat = self.nodes[i].value.clone();
                        let target = self.grad_entry(a);
                        for r in 0..x.rows() {
                            let n = x.cols() as f64;
                            let xrow = x.row_slice(r);
                            let mean = xrow.iter().sum::<f64>() / n;
                            let var = xrow.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                            let inv = 1.0 / (var + eps).sqrt();
                            let grow = g.row_slice(r);
                            let hrow = xhat.row_slice(r);
                            let mean_dy = grow.iter().sum::<f64>() / n;
                            let mean_dyh: f64 =
                                grow.iter().zip(hrow).map(|(d, h)| d * h).sum::<f64>() / n;
                            for ((t, &dy), &h) in
                                target.row_slice_mut(r).iter_mut().zip(grow).zip(hrow)
                            {
                                *t += inv * (dy - mean_dy - h * mean_dyh);
                            }
                        }
                    }
                }
                Op::EmbedLookup(pid, indices) => {
                    let pid = *pid;
                    let indices = indices.clone();
                    let (rows, cols) = self.params.value(pid).shape();
                    let table_grad = self.grads.entry(pid, rows, cols);
                    for (r, ix) in indices.into_iter().enumerate() {
                        for (d, v) in table_grad.row_slice_mut(ix).iter_mut().zip(g.row_slice(r)) {
                            *d += v;
                        }
                    }
                }
            }
            self.nodes[i].grad = Some(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_with(values: &[(&str, Tensor)]) -> (Parameters, Vec<ParamId>) {
        let mut p = Parameters::new();
        let ids = values.iter().map(|(n, t)| p.register(*n, t.clone())).collect();
        (p, ids)
    }

    #[test]
    fn forward_matmul_add_sigmoid() {
        let (p, ids) = params_with(&[
            ("w", Tensor::from_vec(2, 1, vec![1.0, -1.0])),
            ("b", Tensor::scalar(0.5)),
        ]);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::row(vec![2.0, 1.0]));
        let w = g.param(ids[0]);
        let b = g.param(ids[1]);
        let wx = g.matmul(x, w);
        let z = g.add(wx, b);
        let y = g.sigmoid(z);
        // z = 2 - 1 + 0.5 = 1.5
        let expect = 1.0 / (1.0 + (-1.5f64).exp());
        assert!((g.value(y).item() - expect).abs() < 1e-12);
    }

    #[test]
    fn backward_simple_linear() {
        // loss = (w·x)² with x = 3, w = 2 → loss = 36, dL/dw = 2·w·x² = 36.
        let (p, ids) = params_with(&[("w", Tensor::scalar(2.0))]);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::scalar(3.0));
        let w = g.param(ids[0]);
        let wx = g.mul(w, x);
        let loss = g.mul(wx, wx);
        g.backward(loss);
        assert!((g.grads().grad(ids[0]).unwrap().item() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn backward_accumulates_across_uses() {
        // loss = w + w → dL/dw = 2.
        let (p, ids) = params_with(&[("w", Tensor::scalar(1.0))]);
        let mut g = Graph::new(&p);
        let w = g.param(ids[0]);
        let loss = g.add(w, w);
        g.backward(loss);
        assert!((g.grads().grad(ids[0]).unwrap().item() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finish_returns_loss_and_grads() {
        let (p, ids) = params_with(&[("w", Tensor::scalar(2.0))]);
        let mut g = Graph::new(&p);
        let w = g.param(ids[0]);
        let loss = g.mul(w, w);
        let (value, grads) = g.finish(loss);
        assert!((value - 4.0).abs() < 1e-12);
        assert!((grads.grad(ids[0]).unwrap().item() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn node_grads_allocate_lazily() {
        let (p, ids) = params_with(&[("w", Tensor::scalar(1.0))]);
        let mut g = Graph::new(&p);
        let dead = g.input(Tensor::zeros(8, 8));
        let w = g.param(ids[0]);
        let loss = g.mul(w, w);
        g.backward(loss);
        assert!(g.node_grad(dead).is_none(), "constant input must never allocate a grad");
        assert!(g.node_grad(loss).is_some());
    }

    #[test]
    fn two_tapes_share_one_parameter_store() {
        // Data parallelism in miniature: two tapes over the same &Parameters,
        // reduced in fixed order, equals one tape over the combined loss.
        let (p, ids) = params_with(&[("w", Tensor::scalar(3.0))]);
        let run = |x: f64| {
            let mut g = Graph::new(&p);
            let xn = g.input(Tensor::scalar(x));
            let w = g.param(ids[0]);
            let wx = g.mul(w, xn);
            let loss = g.mul(wx, wx);
            g.finish(loss).1
        };
        let (g1, g2) = (run(2.0), run(5.0));
        let mut reduced = GradStore::new();
        reduced.accumulate(&g1);
        reduced.accumulate(&g2);
        // d/dw [ (2w)² + (5w)² ] = 2w·(4 + 25) = 174 at w = 3.
        assert!((reduced.grad(ids[0]).unwrap().item() - 174.0).abs() < 1e-9);
    }

    #[test]
    fn embed_lookup_scatter_grad() {
        let (p, ids) = params_with(&[("e", Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]))]);
        let mut g = Graph::new(&p);
        let e = g.embed_lookup(ids[0], &[2, 0, 2]);
        assert_eq!(g.value(e).row_slice(0), &[5.0, 6.0]);
        let s = g.sum_all(e);
        g.backward(s);
        // Row 2 used twice, row 0 once, row 1 never.
        let gr = g.grads().grad(ids[0]).unwrap();
        assert_eq!(gr.row_slice(0), &[1.0, 1.0]);
        assert_eq!(gr.row_slice(1), &[0.0, 0.0]);
        assert_eq!(gr.row_slice(2), &[2.0, 2.0]);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_inputs() {
        let (p, _) = params_with(&[]);
        let mut g = Graph::new(&p);
        let a = g.input(Tensor::scalar(1000.0));
        let b = g.input(Tensor::scalar(1000.0));
        let l = g.log_sum_exp(&[a, b]);
        assert!((g.value(l).item() - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let (p, ids) = params_with(&[("l", Tensor::row(vec![1.0, 2.0, 3.0]))]);
        let mut g = Graph::new(&p);
        let l = g.param(ids[0]);
        let ce = g.cross_entropy(l, 1);
        let z: f64 = [1.0f64, 2.0, 3.0].iter().map(|v| v.exp()).sum();
        assert!((g.value(ce).item() - (z.ln() - 2.0)).abs() < 1e-9);
        g.backward(ce);
        let soft: Vec<f64> = [1.0f64, 2.0, 3.0].iter().map(|v| v.exp() / z).collect();
        let gr = g.grads().grad(ids[0]).unwrap();
        assert!((gr.get(0, 0) - soft[0]).abs() < 1e-9);
        assert!((gr.get(0, 1) - (soft[1] - 1.0)).abs() < 1e-9);
        assert!((gr.get(0, 2) - soft[2]).abs() < 1e-9);
    }

    #[test]
    fn cos_sim_of_identical_vectors_has_zero_grad() {
        // d cos(a,a)/da = 0 since cos is scale-invariant.
        let (p, ids) = params_with(&[("a", Tensor::row(vec![1.0, 2.0]))]);
        let mut g = Graph::new(&p);
        let a = g.param(ids[0]);
        let c = g.cos_sim(a, a);
        assert!((g.value(c).item() - 1.0).abs() < 1e-12);
        g.backward(c);
        if let Some(gr) = g.grads().grad(ids[0]) {
            for v in gr.data() {
                assert!(v.abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "backward from non-scalar")]
    fn backward_from_matrix_panics() {
        let (p, _) = params_with(&[]);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }
}
