//! Size-bucketed recycling of tensor buffers.
//!
//! Training rebuilds a fresh tape every step, and every intermediate value,
//! adjoint, and parameter gradient of that tape is a heap-allocated
//! `Vec<f64>`. A [`TensorPool`] keeps the buffers of finished tapes in
//! free-lists bucketed by exact element count, so the next step's tape (which
//! has the same shapes in steady state) performs zero tensor allocations: see
//! `Graph::new_in`. Buffers are recycled *within* one shard worker — the pool
//! is deliberately not `Sync`; cross-thread recycling is wired explicitly by
//! the training engine's worker pool, which routes freed buffers back to the
//! worker that allocated them.
//!
//! The pool never affects results: a reused buffer is either zeroed on
//! handout ([`TensorPool::take`]) or handed out raw for ops that overwrite
//! every element ([`TensorPool::take_raw`]), so pooled and unpooled runs are
//! bit-for-bit identical (asserted by the engine's determinism tests).

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Counters exposed for the allocation-counting test harness and the kernel
/// benchmarks. `fresh_allocs` must stop growing once a training loop reaches
/// steady state — that is the "zero allocations per step" contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers the pool had to heap-allocate (free-list misses).
    pub fresh_allocs: u64,
    /// Buffers served from a free-list (hits).
    pub reuses: u64,
    /// High-water mark of buffers handed out and not yet returned.
    pub peak_live: usize,
}

/// Size-bucketed free-lists of tensor buffers.
#[derive(Debug, Default)]
pub struct TensorPool {
    /// Exact element count → stack of returned buffers of that size.
    buckets: HashMap<usize, Vec<Vec<f64>>>,
    stats: PoolStats,
    live: usize,
}

impl TensorPool {
    pub fn new() -> Self {
        Self::default()
    }

    fn take_buffer(&mut self, len: usize) -> Vec<f64> {
        self.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        match self.buckets.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                self.stats.reuses += 1;
                buf
            }
            None => {
                self.stats.fresh_allocs += 1;
                vec![0.0; len]
            }
        }
    }

    /// Take a zeroed `rows × cols` tensor, reusing a returned buffer of the
    /// exact size when one is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut buf = self.take_buffer(rows * cols);
        buf.iter_mut().for_each(|v| *v = 0.0);
        Tensor::from_vec(rows, cols, buf)
    }

    /// Take a tensor **without zeroing**: the buffer holds stale (but
    /// initialized) values from its previous life. Only for callers that
    /// overwrite every element before any read.
    pub fn take_raw(&mut self, rows: usize, cols: usize) -> Tensor {
        let buf = self.take_buffer(rows * cols);
        Tensor::from_vec(rows, cols, buf)
    }

    /// Return a tensor's buffer to the pool. Empty tensors are ignored.
    pub fn put(&mut self, t: Tensor) {
        self.put_buffer(t.into_data());
    }

    /// Return a raw buffer (e.g. shipped back from another thread).
    pub fn put_buffer(&mut self, buf: Vec<f64>) {
        if buf.is_empty() {
            return;
        }
        self.live = self.live.saturating_sub(1);
        self.buckets.entry(buf.len()).or_default().push(buf);
    }

    /// Allocation counters since construction.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Buffers currently handed out and not yet returned.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Drop every cached buffer (counters are kept).
    pub fn clear(&mut self) {
        self.buckets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_hits_after_return() {
        let mut pool = TensorPool::new();
        let t = pool.take(2, 3);
        assert_eq!(pool.stats().fresh_allocs, 1);
        pool.put(t);
        let t = pool.take(2, 3);
        assert_eq!(pool.stats().fresh_allocs, 1, "same-size take must reuse");
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(t.data(), &[0.0; 6], "reused buffers are zeroed");
    }

    #[test]
    fn reuse_is_by_element_count_not_shape() {
        let mut pool = TensorPool::new();
        pool.put(Tensor::from_vec(2, 3, vec![1.0; 6]));
        let t = pool.take_raw(3, 2);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(t.data(), &[1.0; 6], "take_raw hands out stale contents");
    }

    #[test]
    fn distinct_sizes_do_not_alias() {
        let mut pool = TensorPool::new();
        pool.put(Tensor::zeros(1, 4));
        let t = pool.take(1, 5);
        assert_eq!(t.len(), 5);
        assert_eq!(pool.stats().fresh_allocs, 1);
    }

    #[test]
    fn live_tracks_outstanding_buffers() {
        let mut pool = TensorPool::new();
        let a = pool.take(1, 2);
        let b = pool.take(1, 2);
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.stats().peak_live, 2);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.stats().peak_live, 2);
    }
}
