//! Minimal neural-network substrate for the WSCCL reproduction.
//!
//! The paper trains its models with PyTorch on GPUs; this crate replaces that
//! stack with a small, dependency-free, CPU-only implementation:
//!
//! * [`tensor::Tensor`] — a dense row-major `f64` matrix with the handful of
//!   BLAS-like operations the models need.
//! * [`graph::Graph`] — a tape-based reverse-mode autodiff graph. Every forward
//!   pass builds a fresh tape over shared [`params::Parameters`]; `backward`
//!   accumulates parameter gradients which an [`optim`] optimizer then applies.
//! * [`layers`] — `Linear`, `Embedding`, `Lstm`, `Gru`, and single-head
//!   self-attention, all expressed in terms of graph ops so gradients are exact.
//! * [`gradcheck`] — finite-difference gradient verification used heavily by the
//!   test suite; every op and layer in this crate is gradient-checked.
//! * [`kernels`] — the pluggable compute backend (scalar oracle vs. AVX2 SIMD)
//!   every blocked loop above routes through, and [`infer`] — the frozen f32
//!   inference tensors built on its f32 kernels.
//!
//! The API is deliberately small: WSCCL and all twelve baselines in
//! `wsccl-baselines` are built exclusively from these pieces.

pub mod gradcheck;
pub mod graph;
pub mod infer;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod optim;
pub mod params;
pub mod pool;
pub mod tensor;

pub use graph::{Activation, GatherPart, Graph, NodeId, OpKind};
pub use infer::InferTensor;
pub use kernels::{KernelBackend, Kernels, ScalarKernels, SimdKernels};
pub use params::{GradStore, ParamId, Parameters};
pub use pool::{PoolStats, TensorPool};
pub use tensor::Tensor;
