//! Dense row-major `f64` matrices.
//!
//! A [`Tensor`] is always two-dimensional; vectors are `1 × d` row matrices and
//! scalars are `1 × 1`. This keeps the autodiff op set small while covering
//! everything the paper's models need.

use serde::{Deserialize, Serialize};

use crate::kernels;

/// Dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Tensor {
    /// An empty `0 × 0` tensor — the placeholder left behind when a buffer is
    /// taken out of a tape node (`mem::take`) for recycling.
    fn default() -> Self {
        Self { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape {rows}x{cols} != data len {}", data.len());
        Self { rows, cols, data }
    }

    /// A `1 × d` row vector.
    pub fn row(data: Vec<f64>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// A `1 × 1` scalar tensor.
    pub fn scalar(v: f64) -> Self {
        Self { rows: 1, cols: 1, data: vec![v] }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the tensor, yielding its backing buffer (for pool recycling).
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Overwrite every element with `other`'s contents (shapes must match).
    pub fn copy_from(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Extract the single element of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 × 1`.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other` — a thin wrapper over
    /// [`Tensor::matmul_acc`] on a zeroed output, like the `nt`/`tn` variants.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_acc(other, &mut out);
        out
    }

    /// `out += self · other` — the allocation-free core of [`Tensor::matmul`],
    /// used by the backward pass to accumulate straight into adjoint buffers.
    /// i-k-j loop order: the inner loop walks both `other` and `out` rows
    /// contiguously, which matters for the LSTM hot path.
    pub fn matmul_acc(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul output shape mismatch");
        kernels::active().matmul_acc(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Matrix product `self · otherᵀ`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_nt_acc(other, &mut out);
        out
    }

    /// `out += self · otherᵀ`, blocked four output columns at a time.
    ///
    /// `other` is stored row-major, so its rows are contiguous and row-dot-row
    /// needs no transpose pack; the 4-way block reuses each loaded `self` row
    /// element across four independent accumulators, which is the difference
    /// between memory-bound and ALU-bound on the LSTM-sized operands.
    pub fn matmul_nt_acc(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        assert_eq!(out.shape(), (self.rows, other.rows), "matmul_nt output shape mismatch");
        kernels::active().matmul_nt_acc(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Matrix product `selfᵀ · other`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// `out += selfᵀ · other` — accumulating form used for weight gradients.
    pub fn matmul_tn_acc(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(out.shape(), (self.cols, other.cols), "matmul_tn output shape mismatch");
        kernels::active().matmul_tn_acc(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Elementwise `self + other` (kernel-backed — this is on the tape hot
    /// path and the closure-generic `zip_with` doesn't reliably vectorize).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols);
        kernels::active().add_into(&self.data, &other.data, &mut out.data);
        out
    }

    /// Elementwise `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols);
        kernels::active().sub_into(&self.data, &other.data, &mut out.data);
        out
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols);
        kernels::active().mul_into(&self.data, &other.data, &mut out.data);
        out
    }

    /// `out = self + other`, overwriting a caller-provided buffer.
    pub fn add_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        assert_eq!(out.shape(), self.shape(), "elementwise output shape mismatch");
        kernels::active().add_into(&self.data, &other.data, &mut out.data);
    }

    /// `out = self - other`, overwriting a caller-provided buffer.
    pub fn sub_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        assert_eq!(out.shape(), self.shape(), "elementwise output shape mismatch");
        kernels::active().sub_into(&self.data, &other.data, &mut out.data);
    }

    /// `out = self ⊙ other`, overwriting a caller-provided buffer.
    pub fn mul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        assert_eq!(out.shape(), self.shape(), "elementwise output shape mismatch");
        kernels::active().mul_into(&self.data, &other.data, &mut out.data);
    }

    /// In-place `self ⊙= other` — the backward pass reuses the incoming
    /// adjoint buffer instead of allocating the product.
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "mul_assign shape mismatch");
        kernels::active().mul_assign(&mut self.data, &other.data);
    }

    /// In-place `self *= c`.
    pub fn scale_assign(&mut self, c: f64) {
        kernels::active().scale_assign(&mut self.data, c);
    }

    /// Elementwise combine with the same-shaped `other`.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&a| f(a)).collect() }
    }

    /// Multiply every element by `c` (direct loop — hot in `GradStore::scale`
    /// and the scalar loss chains).
    pub fn scale(&self, c: f64) -> Tensor {
        let data = self.data.iter().map(|a| a * c).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        kernels::active().add_assign(&mut self.data, &other.data);
    }

    /// In-place `self += c * other` (axpy).
    pub fn axpy(&mut self, c: f64, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        kernels::active().axpy(&mut self.data, c, &other.data);
    }

    /// In-place `self += x ⊙ y` — the Hadamard-product accumulate the
    /// backward pass of `Mul` needs, without materializing the product.
    pub fn add_prod(&mut self, x: &Tensor, y: &Tensor) {
        assert_eq!(self.shape(), x.shape(), "add_prod shape mismatch");
        assert_eq!(self.shape(), y.shape(), "add_prod shape mismatch");
        kernels::active().add_prod(&mut self.data, &x.data, &y.data);
    }

    /// Set all elements to zero, keeping the shape.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Dot product of two tensors viewed as flat vectors.
    pub fn flat_dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape(), "flat_dot shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `1 × cols` mean over rows.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows > 0, "mean_rows of empty tensor");
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, v) in out.data.iter_mut().zip(self.row_slice(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f64;
        out.data.iter_mut().for_each(|v| *v *= inv);
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row_slice(r));
            data.extend_from_slice(other.row_slice(r));
        }
        Tensor { rows: self.rows, cols, data }
    }

    /// Stack rows of the given tensors (all must share `cols`).
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "stack_rows col mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Cosine similarity between two tensors viewed as flat vectors.
    ///
    /// Returns 0.0 when either vector has (near-)zero norm.
    pub fn cosine(&self, other: &Tensor) -> f64 {
        let na = self.norm();
        let nb = other.norm();
        if na < 1e-12 || nb < 1e-12 {
            return 0.0;
        }
        self.flat_dot(other) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_by_hand() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|v| v as f64).collect());
        let bt = {
            let mut t = Tensor::zeros(3, 4);
            for r in 0..4 {
                for c in 0..3 {
                    t.set(c, r, b.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_nt(&b), a.matmul(&bt));
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = Tensor::from_vec(3, 2, (0..6).map(|v| v as f64).collect());
        let b = Tensor::from_vec(3, 4, (0..12).map(|v| v as f64).collect());
        let at = {
            let mut t = Tensor::zeros(2, 3);
            for r in 0..3 {
                for c in 0..2 {
                    t.set(c, r, a.get(r, c));
                }
            }
            t
        };
        assert_eq!(a.matmul_tn(&b), at.matmul(&b));
    }

    #[test]
    fn mean_rows_averages() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mean_rows().data(), &[2.0, 3.0]);
    }

    #[test]
    fn concat_and_stack() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);

        let s = Tensor::stack_rows(&[&a, &a]);
        assert_eq!(s.shape(), (4, 1));
    }

    #[test]
    fn cosine_bounds_and_degenerate() {
        let a = Tensor::row(vec![1.0, 0.0]);
        let b = Tensor::row(vec![0.0, 1.0]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        assert!(a.cosine(&b).abs() < 1e-12);
        let z = Tensor::row(vec![0.0, 0.0]);
        assert_eq!(a.cosine(&z), 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn acc_kernels_accumulate_on_top() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Tensor::full(2, 2, 1.0);
        a.matmul_acc(&b, &mut out);
        assert_eq!(out.data(), &[59.0, 65.0, 140.0, 155.0]);

        let mut nt = Tensor::full(2, 2, 0.5);
        let mut expect = a.matmul_nt(&a);
        a.matmul_nt_acc(&a, &mut nt);
        expect.data_mut().iter_mut().for_each(|v| *v += 0.5);
        assert_eq!(nt, expect);

        let mut tn = Tensor::zeros(3, 3);
        a.matmul_tn_acc(&a, &mut tn);
        assert_eq!(tn, a.matmul_tn(&a));
    }

    #[test]
    fn blocked_nt_matches_naive_for_odd_widths() {
        // Column blocking must handle n remainders. `matmul_nt` reduces each
        // dot with the fixed interleaved order (see `kernels::scalar::dot`),
        // which differs bitwise from `matmul`'s k-ascending accumulation, so
        // compare to the plain product within rounding tolerance only.
        for n in 1..=9 {
            let a = Tensor::from_vec(3, 5, (0..15).map(|v| v as f64 * 0.3 - 2.0).collect());
            let b = Tensor::from_vec(n, 5, (0..5 * n).map(|v| (v as f64).sin()).collect());
            let bt = {
                let mut t = Tensor::zeros(5, n);
                for r in 0..n {
                    for c in 0..5 {
                        t.set(c, r, b.get(r, c));
                    }
                }
                t
            };
            let nt = a.matmul_nt(&b);
            let naive = a.matmul(&bt);
            for (x, y) in nt.data().iter().zip(naive.data()) {
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0), "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let a = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![0.5, 2.0, -1.0, 3.0]);
        let mut out = Tensor::zeros(2, 2);
        a.add_into(&b, &mut out);
        assert_eq!(out, a.add(&b));
        a.sub_into(&b, &mut out);
        assert_eq!(out, a.sub(&b));
        a.mul_into(&b, &mut out);
        assert_eq!(out, a.mul(&b));
        let mut c = a.clone();
        c.mul_assign(&b);
        assert_eq!(c, a.mul(&b));
        let mut d = a.clone();
        d.scale_assign(2.5);
        assert_eq!(d, a.scale(2.5));
    }

    #[test]
    fn into_data_roundtrip() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let buf = t.into_data();
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(Tensor::default().is_empty());
    }
}
