//! Finite-difference gradient verification.
//!
//! Every autodiff op and every layer in this crate is validated by comparing
//! analytic parameter gradients against central differences of the loss.

use crate::params::{GradStore, ParamId, Parameters};

/// Result of a gradient check for one parameter element.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckFailure {
    pub param: ParamId,
    pub element: usize,
    pub analytic: f64,
    pub numeric: f64,
}

/// Check analytic gradients of `loss_fn` against central finite differences.
///
/// `loss_fn` must be a deterministic function of the parameter values that
/// builds a graph over `&Parameters` and returns the scalar loss together
/// with the tape's gradients (typically via [`crate::Graph::finish`]).
/// Numeric gradients perturb each element by `eps`; a parameter with no slot
/// in the returned [`GradStore`] counts as having zero analytic gradient.
///
/// Returns all elements whose relative error exceeds `tol`.
pub fn check_gradients(
    params: &mut Parameters,
    mut loss_fn: impl FnMut(&Parameters) -> (f64, GradStore),
    eps: f64,
    tol: f64,
) -> Vec<GradCheckFailure> {
    let (_, grads) = loss_fn(params);
    let analytic: Vec<Vec<f64>> = params
        .ids()
        .map(|id| match grads.grad(id) {
            Some(g) => g.data().to_vec(),
            None => vec![0.0; params.value(id).len()],
        })
        .collect();

    let mut failures = Vec::new();
    let ids: Vec<ParamId> = params.ids().collect();
    for &id in &ids {
        let n = params.value(id).len();
        for e in 0..n {
            let orig = params.value(id).data()[e];
            params.value_mut(id).data_mut()[e] = orig + eps;
            let (up, _) = loss_fn(params);
            params.value_mut(id).data_mut()[e] = orig - eps;
            let (down, _) = loss_fn(params);
            params.value_mut(id).data_mut()[e] = orig;

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[id.index()][e];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            if (a - numeric).abs() / denom > tol {
                failures.push(GradCheckFailure { param: id, element: e, analytic: a, numeric });
            }
        }
    }
    failures
}

/// Panic with a readable report if any gradient fails the check.
pub fn assert_gradients_close(
    params: &mut Parameters,
    loss_fn: impl FnMut(&Parameters) -> (f64, GradStore),
    eps: f64,
    tol: f64,
) {
    let failures = check_gradients(params, loss_fn, eps, tol);
    if !failures.is_empty() {
        let mut msg = format!("{} gradient mismatches:\n", failures.len());
        for f in failures.iter().take(10) {
            msg.push_str(&format!(
                "  param {:?} [{}]: analytic {:.6e} vs numeric {:.6e}\n",
                f.param, f.element, f.analytic, f.numeric
            ));
        }
        panic!("{msg}");
    }
}
