//! Pluggable compute kernels behind the tape.
//!
//! Every blocked microkernel the autodiff hot path runs — the matmul family,
//! the elementwise accumulate family, and the fused-op activation/gate loops —
//! lives behind the [`Kernels`] trait with two implementations:
//!
//! * [`ScalarKernels`] — straight-line one-element-at-a-time loops, the
//!   correctness oracle;
//! * [`SimdKernels`] — x86_64 AVX2 via `core::arch` intrinsics with runtime
//!   `is_x86_feature_detected!` dispatch, falling back to the scalar loops on
//!   other targets (or when AVX2/FMA are absent).
//!
//! # Bit-identity contract (f64)
//!
//! Training is `f64` and must be **bit-for-bit identical** under either
//! backend — checkpoints, loss curves, and the engine's thread-count
//! determinism tests all rely on it. The SIMD f64 kernels therefore:
//!
//! * fuse every multiply-add **symmetrically**: the scalar oracle uses
//!   `f64::mul_add` wherever the vector form uses `_mm256_fmadd_pd`. Both are
//!   the correctly-rounded IEEE 754 fusedMultiplyAdd, so a fused site computes
//!   the same bits on either backend; Rust never contracts `a * b + c` on its
//!   own, so any site left unfused stays a separately-rounded mul + add on
//!   both sides. (On FMA hardware the scalar `mul_add` is re-dispatched
//!   through a `#[target_feature(enable = "fma")]` copy of the same body —
//!   see `fma_dispatch!` — so it costs one instruction, not a libm call.);
//! * keep each output element's reduction order exactly equal to the scalar
//!   loop — either by vectorizing across *output* lanes only, or, where a
//!   horizontal reduction is unavoidable (`matmul_nt_acc`), by defining the
//!   scalar oracle itself as the fixed four-lane interleaved [`scalar::dot`]
//!   that the vector form evaluates in-register;
//! * keep the `a == 0.0` skip of the scalar i-k-j kernels;
//! * evaluate transcendental activations (sigmoid/tanh, and the fused LSTM
//!   gate loop) through [`vmath`], a fixed-operation-order `exp` built purely
//!   from mul/add/div/floor/min/max and the fused multiply-add — `libm`'s
//!   `exp`/`tanh` have no bit-reproducible vector form, so both backends
//!   share this one algorithm, evaluated one lane at a time (scalar) or four
//!   lanes at a time (AVX2) with an identical operation sequence per element.
//!
//! The **f32 inference** kernels are exempt: they are compared to the f64
//! oracle by an error bound, not by bits (see `DESIGN.md`).
//!
//! # Selection
//!
//! The backend is resolved once per process: the first call to [`select`] (or
//! lazily, the first kernel invocation) latches the choice. The env var
//! `WSCCL_KERNELS=scalar|simd|auto` overrides any configured choice so CI can
//! force both paths over the whole suite. Tests and benches may flip the
//! backend mid-process with [`force`] — sound precisely because of the f64
//! bit-identity contract above.

use std::sync::atomic::{AtomicU8, Ordering};

use serde::{Deserialize, Serialize};

/// Which kernel backend to use. `Auto` picks SIMD when the CPU supports
/// AVX2 + FMA, scalar otherwise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelBackend {
    #[default]
    Auto,
    Scalar,
    Simd,
}

/// The kernel set shared by the f64 tape and the f32 inference path.
///
/// All matrices are dense row-major slices; `out`/`dst` lengths are the
/// caller's responsibility ([`crate::Tensor`] asserts shapes before
/// delegating).
pub trait Kernels: Send + Sync {
    fn name(&self) -> &'static str;

    // ------------------------------------------------------ f64 matmul family

    /// `out (m×n) += a (m×k) · b (k×n)`.
    fn matmul_acc(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]);

    /// `out (m×n) += a (m×d) · b (n×d)ᵀ`.
    fn matmul_nt_acc(&self, m: usize, d: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]);

    /// `out (m×n) += a (k×m)ᵀ · b (k×n)`.
    fn matmul_tn_acc(&self, k: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]);

    // ------------------------------------------------------- f64 elementwise

    /// `out = a + b`.
    fn add_into(&self, a: &[f64], b: &[f64], out: &mut [f64]);
    /// `out = a - b`.
    fn sub_into(&self, a: &[f64], b: &[f64], out: &mut [f64]);
    /// `out = a ⊙ b`.
    fn mul_into(&self, a: &[f64], b: &[f64], out: &mut [f64]);
    /// `dst += src`.
    fn add_assign(&self, dst: &mut [f64], src: &[f64]);
    /// `dst ⊙= src`.
    fn mul_assign(&self, dst: &mut [f64], src: &[f64]);
    /// `dst *= c`.
    fn scale_assign(&self, dst: &mut [f64], c: f64);
    /// `dst += c · src`.
    fn axpy(&self, dst: &mut [f64], c: f64, src: &[f64]);
    /// `dst += x ⊙ y`.
    fn add_prod(&self, dst: &mut [f64], x: &[f64], y: &[f64]);
    /// Interleaved dot product `Σᵢ aᵢ·bᵢ` — the fixed four-lane reduction of
    /// [`scalar::dot`]. Both backends share the one implementation (its
    /// FMA-dispatched body autovectorizes), so the default is never
    /// overridden and the value is backend-independent by construction.
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        scalar::dot(a, b)
    }

    /// Add the `1×d` row `row` to each of the `n` rows of `dst` (bias add).
    fn add_row_assign(&self, n: usize, d: usize, dst: &mut [f64], row: &[f64]);
    /// `acc (1×d) += Σ_r rows[r]` — column-sum accumulate (bias gradients).
    fn add_rows_acc(&self, n: usize, d: usize, rows: &[f64], acc: &mut [f64]);

    // ------------------------------------------------------ f64 optimizer
    // The Adam hot loops touch every parameter every step. Division and
    // square root are correctly rounded in both scalar and AVX2 form, so
    // these vectorize bit-identically like the rest of the f64 family.

    /// Adam moment update with the exact scalar grouping:
    /// `m = β₁·m + (1−β₁)·g` and `v = β₂·v + ((1−β₂)·g)·g`.
    fn adam_moments(&self, m: &mut [f64], v: &mut [f64], g: &[f64], beta1: f64, beta2: f64);

    /// Adam parameter update: `p -= lr · (m/bc1) / (√(v/bc2) + ε)`.
    fn adam_update(
        &self,
        p: &mut [f64],
        m: &[f64],
        v: &[f64],
        lr: f64,
        bc1: f64,
        bc2: f64,
        eps: f64,
    );

    // ----------------------------------------------------- f64 activations
    // Provided methods default to the shared [`vmath`] scalar evaluation;
    // `SimdKernels` overrides them with the 4-lane AVX2 form of the *same*
    // operation sequence, so every backend produces identical bits.

    fn sigmoid_inplace(&self, xs: &mut [f64]) {
        scalar::sigmoid_inplace(xs);
    }

    fn tanh_inplace(&self, xs: &mut [f64]) {
        scalar::tanh_inplace(xs);
    }

    fn relu_inplace(&self, xs: &mut [f64]) {
        scalar::relu_inplace(xs);
    }

    /// Fused LSTM gate nonlinearity: from pre-activations `z (n×4h)` and the
    /// previous cell `c_old (n×h)`, fill `saved (n×5h)` with
    /// `[i | f | g | o | tanh(c_new)]` and `out (n×2h)` with
    /// `[h_new | c_new]`. Transcendentals go through the shared [`vmath`]
    /// pipeline, so the AVX2 override is bit-identical.
    fn lstm_gates(
        &self,
        n: usize,
        hidden: usize,
        z: &[f64],
        c_old: &[f64],
        saved: &mut [f64],
        out: &mut [f64],
    ) {
        scalar::lstm_gates(n, hidden, z, c_old, saved, out);
    }

    /// Backward of [`Kernels::lstm_gates`]: push the adjoint `g (n×2h)` of
    /// `[h_new | c_new]` through the saved gates into the pre-activation
    /// adjoint `dz (n×4h)` and the previous-cell adjoint `dc_old (n×h)`.
    /// Pure per-element arithmetic, so the SIMD form is bit-identical.
    fn lstm_gates_backward(
        &self,
        n: usize,
        hidden: usize,
        saved: &[f64],
        g: &[f64],
        c_old: &[f64],
        dz: &mut [f64],
        dc_old: &mut [f64],
    ) {
        scalar::lstm_gates_backward(n, hidden, saved, g, c_old, dz, dc_old);
    }

    // ------------------------------------------------- f32 inference kernels
    // Used only by the frozen inference path; compared to the f64 oracle by an
    // error bound, so FMA is allowed here.

    /// `out (m×n) += a (m×k) · b (k×n)` in f32.
    fn matmul_acc_f32(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]);

    /// `dst += src` in f32.
    fn add_assign_f32(&self, dst: &mut [f32], src: &[f32]);

    /// `dst *= c` in f32.
    fn scale_assign_f32(&self, dst: &mut [f32], c: f32);

    /// Single-row LSTM gate step for inference: given `z (1×4h)` and the cell
    /// state `c (1×h)`, update `c` and write `h = o ⊙ tanh(c_new)`.
    fn lstm_gates_infer_f32(&self, hidden: usize, z: &[f32], c: &mut [f32], h: &mut [f32]) {
        scalar::lstm_gates_infer_f32(hidden, z, c, h);
    }

    /// Batched [`Kernels::lstm_gates_infer_f32`]: `n` independent rows of
    /// `z (n×4h)`, `c (n×h)`, `h (n×h)`. Defined as the row loop over the
    /// single-row kernel, so each batched row is **bitwise identical** to the
    /// corresponding one-at-a-time call on either backend — the batched
    /// serving path relies on this for its parity-with-`embed` contract.
    fn lstm_gates_infer_batch_f32(
        &self,
        n: usize,
        hidden: usize,
        z: &[f32],
        c: &mut [f32],
        h: &mut [f32],
    ) {
        for r in 0..n {
            self.lstm_gates_infer_f32(
                hidden,
                &z[r * 4 * hidden..(r + 1) * 4 * hidden],
                &mut c[r * hidden..(r + 1) * hidden],
                &mut h[r * hidden..(r + 1) * hidden],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar backend: the original tensor.rs / graph.rs loops, verbatim.
// ---------------------------------------------------------------------------

/// Compiles a `mul_add`-based kernel body twice — once plain, once with the
/// `fma` target feature — and dispatches on [`simd_available`] at run time.
///
/// `f64::mul_add` is the IEEE 754 fusedMultiplyAdd: correctly rounded in both
/// its libm software form and the `vfmadd` hardware instruction, so the
/// dispatch can never change a result — only whether each fused multiply-add
/// costs a libm call or a single instruction. This is what lets the scalar
/// oracle use the same fused operations as the AVX2 backend (bit-identity)
/// without paying a function call per element on FMA hardware.
macro_rules! fma_dispatch {
    ($impl_fn:ident, $fma_fn:ident,
     $(#[$meta:meta])* pub fn $name:ident($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)? $body:block) => {
        #[inline(always)]
        fn $impl_fn($($arg: $ty),*) $(-> $ret)? $body

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "fma")]
        unsafe fn $fma_fn($($arg: $ty),*) $(-> $ret)? {
            $impl_fn($($arg),*)
        }

        $(#[$meta])*
        #[inline]
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            if crate::kernels::simd_available() {
                // SAFETY: `simd_available` implies the `fma` CPU feature.
                return unsafe { $fma_fn($($arg),*) };
            }
            $impl_fn($($arg),*)
        }
    };
}

/// Reference backend — straight-line loops defining the training semantics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarKernels;

/// The shared scalar loop bodies. `SimdKernels` falls back here on non-x86_64
/// targets and for remainder lanes, so both backends literally share tails.
pub(crate) mod scalar {
    fma_dispatch!(
        matmul_acc_impl,
        matmul_acc_fma,
        pub fn matmul_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
            for i in 0..m {
                for kk in 0..k {
                    let av = a[i * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (c, o) in crow.iter_mut().zip(brow) {
                        *c = av.mul_add(*o, *c);
                    }
                }
            }
        }
    );

    fma_dispatch!(
        matmul_nt_acc_impl,
        matmul_nt_acc_fma,
        pub fn matmul_nt_acc(m: usize, d: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
            for i in 0..m {
                let arow = &a[i * d..(i + 1) * d];
                let crow = &mut out[i * n..(i + 1) * n];
                for (j, c) in crow.iter_mut().enumerate() {
                    *c += dot_impl(arow, &b[j * d..(j + 1) * d]);
                }
            }
        }
    );

    fma_dispatch!(
        dot_impl,
        dot_fma,
        /// Dot product with a fixed four-lane interleaved reduction — the one
        /// `matmul_nt_acc` algorithm shared by both backends. Lane `p` sums
        /// elements `p, p+4, …` with fused multiply-adds, the lanes combine as
        /// `(l0 + l2) + (l1 + l3)`, and the `len % 4` remainder accumulates onto
        /// the combined sum in ascending order. The AVX2 form holds the four
        /// lanes in one register and performs the identical operation sequence,
        /// so results are bit-identical.
        pub fn dot(a: &[f64], b: &[f64]) -> f64 {
            let d = a.len().min(b.len());
            let mut l = [0.0f64; 4];
            let mut kk = 0;
            while kk + 4 <= d {
                l[0] = a[kk].mul_add(b[kk], l[0]);
                l[1] = a[kk + 1].mul_add(b[kk + 1], l[1]);
                l[2] = a[kk + 2].mul_add(b[kk + 2], l[2]);
                l[3] = a[kk + 3].mul_add(b[kk + 3], l[3]);
                kk += 4;
            }
            let mut s = (l[0] + l[2]) + (l[1] + l[3]);
            while kk < d {
                s = a[kk].mul_add(b[kk], s);
                kk += 1;
            }
            s
        }
    );

    fma_dispatch!(
        matmul_tn_acc_impl,
        matmul_tn_acc_fma,
        pub fn matmul_tn_acc(k: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
            for kk in 0..k {
                let arow = &a[kk * m..(kk + 1) * m];
                let brow = &b[kk * n..(kk + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (c, bv) in crow.iter_mut().zip(brow) {
                        *c = av.mul_add(*bv, *c);
                    }
                }
            }
        }
    );

    #[inline]
    pub fn add_into(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
            *o = x + y;
        }
    }

    #[inline]
    pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
            *o = x - y;
        }
    }

    #[inline]
    pub fn mul_into(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
            *o = x * y;
        }
    }

    #[inline]
    pub fn add_assign(dst: &mut [f64], src: &[f64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    #[inline]
    pub fn mul_assign(dst: &mut [f64], src: &[f64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d *= s;
        }
    }

    #[inline]
    pub fn scale_assign(dst: &mut [f64], c: f64) {
        dst.iter_mut().for_each(|v| *v *= c);
    }

    fma_dispatch!(
        axpy_impl,
        axpy_fma,
        pub fn axpy(dst: &mut [f64], c: f64, src: &[f64]) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = c.mul_add(*s, *d);
            }
        }
    );

    fma_dispatch!(
        add_prod_impl,
        add_prod_fma,
        pub fn add_prod(dst: &mut [f64], x: &[f64], y: &[f64]) {
            for ((d, a), b) in dst.iter_mut().zip(x).zip(y) {
                *d = a.mul_add(*b, *d);
            }
        }
    );

    #[inline]
    pub fn add_row_assign(n: usize, d: usize, dst: &mut [f64], row: &[f64]) {
        for r in 0..n {
            add_assign(&mut dst[r * d..(r + 1) * d], row);
        }
    }

    #[inline]
    pub fn add_rows_acc(n: usize, d: usize, rows: &[f64], acc: &mut [f64]) {
        for r in 0..n {
            add_assign(acc, &rows[r * d..(r + 1) * d]);
        }
    }

    #[inline]
    pub fn sigmoid_inplace(xs: &mut [f64]) {
        xs.iter_mut().for_each(|v| *v = super::vmath::sigmoid(*v));
    }

    #[inline]
    pub fn tanh_inplace(xs: &mut [f64]) {
        xs.iter_mut().for_each(|v| *v = super::vmath::tanh(*v));
    }

    #[inline]
    pub fn relu_inplace(xs: &mut [f64]) {
        xs.iter_mut().for_each(|v| *v = v.max(0.0));
    }

    pub fn lstm_gates(
        n: usize,
        hidden: usize,
        z: &[f64],
        c_old: &[f64],
        saved: &mut [f64],
        out: &mut [f64],
    ) {
        for r in 0..n {
            let zrow = &z[r * 4 * hidden..(r + 1) * 4 * hidden];
            let crow = &c_old[r * hidden..(r + 1) * hidden];
            let srow = &mut saved[r * 5 * hidden..(r + 1) * 5 * hidden];
            let orow = &mut out[r * 2 * hidden..(r + 1) * 2 * hidden];
            for k in 0..hidden {
                lstm_gate_forward_lane(zrow, crow, srow, orow, hidden, k);
            }
        }
    }

    /// One lane of the LSTM gate forward — also the SIMD remainder tail.
    #[inline]
    pub fn lstm_gate_forward_lane(
        zrow: &[f64],
        crow: &[f64],
        srow: &mut [f64],
        orow: &mut [f64],
        hidden: usize,
        k: usize,
    ) {
        let i = super::vmath::sigmoid(zrow[k]);
        let f = super::vmath::sigmoid(zrow[hidden + k]);
        let g = super::vmath::tanh(zrow[2 * hidden + k]);
        let o = super::vmath::sigmoid(zrow[3 * hidden + k]);
        let c_new = super::vmath::fmadd(i, g, f * crow[k]);
        let tc = super::vmath::tanh(c_new);
        srow[k] = i;
        srow[hidden + k] = f;
        srow[2 * hidden + k] = g;
        srow[3 * hidden + k] = o;
        srow[4 * hidden + k] = tc;
        orow[k] = o * tc;
        orow[hidden + k] = c_new;
    }

    pub fn lstm_gates_backward(
        n: usize,
        hidden: usize,
        saved: &[f64],
        g: &[f64],
        c_old: &[f64],
        dz: &mut [f64],
        dc_old: &mut [f64],
    ) {
        for r in 0..n {
            let srow = &saved[r * 5 * hidden..(r + 1) * 5 * hidden];
            let grow = &g[r * 2 * hidden..(r + 1) * 2 * hidden];
            let crow = &c_old[r * hidden..(r + 1) * hidden];
            let dzrow = &mut dz[r * 4 * hidden..(r + 1) * 4 * hidden];
            let dcrow = &mut dc_old[r * hidden..(r + 1) * hidden];
            for k in 0..hidden {
                lstm_gate_backward_lane(srow, grow, crow, dzrow, dcrow, hidden, k);
            }
        }
    }

    /// One lane of the LSTM gate backward — also the SIMD remainder tail.
    #[inline]
    pub fn lstm_gate_backward_lane(
        srow: &[f64],
        grow: &[f64],
        crow: &[f64],
        dzrow: &mut [f64],
        dcrow: &mut [f64],
        hidden: usize,
        k: usize,
    ) {
        let iv = srow[k];
        let fv = srow[hidden + k];
        let gtv = srow[2 * hidden + k];
        let ov = srow[3 * hidden + k];
        let tc = srow[4 * hidden + k];
        let gh = grow[k];
        let gc = grow[hidden + k];
        // c_new receives gradient directly and through h_new = o ⊙ tanh(c_new).
        // The two `1 − x·x` terms and the `gc + …` accumulation are fused
        // multiply-adds, mirrored by `vfnmadd`/`vfmadd` in the AVX2 form.
        let dtc = super::vmath::fmadd(-tc, tc, 1.0);
        let dct = super::vmath::fmadd(gh * ov, dtc, gc);
        dcrow[k] = dct * fv;
        let dgo = gh * tc;
        dzrow[3 * hidden + k] = dgo * ov * (1.0 - ov);
        let di = dct * gtv;
        dzrow[k] = di * iv * (1.0 - iv);
        let df = dct * crow[k];
        dzrow[hidden + k] = df * fv * (1.0 - fv);
        let dg = dct * iv;
        dzrow[2 * hidden + k] = dg * super::vmath::fmadd(-gtv, gtv, 1.0);
    }

    // ---------------------------------------------------------- optimizer

    pub fn adam_moments(m: &mut [f64], v: &mut [f64], g: &[f64], beta1: f64, beta2: f64) {
        let om1 = 1.0 - beta1;
        let om2 = 1.0 - beta2;
        for ((mv, vv), gv) in m.iter_mut().zip(v.iter_mut()).zip(g) {
            *mv = beta1 * *mv + om1 * gv;
            *vv = beta2 * *vv + om2 * gv * gv;
        }
    }

    pub fn adam_update(p: &mut [f64], m: &[f64], v: &[f64], lr: f64, bc1: f64, bc2: f64, eps: f64) {
        for ((pv, mv), vv) in p.iter_mut().zip(m).zip(v) {
            let mhat = mv / bc1;
            let vhat = vv / bc2;
            *pv -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    // -------------------------------------------------------- f32 inference

    #[inline]
    pub fn matmul_acc_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let crow = &mut out[i * n..(i + 1) * n];
                for (c, o) in crow.iter_mut().zip(brow) {
                    *c += av * o;
                }
            }
        }
    }

    #[inline]
    pub fn add_assign_f32(dst: &mut [f32], src: &[f32]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    #[inline]
    pub fn scale_assign_f32(dst: &mut [f32], c: f32) {
        dst.iter_mut().for_each(|v| *v *= c);
    }

    #[inline]
    pub fn lstm_gates_infer_f32(hidden: usize, z: &[f32], c: &mut [f32], h: &mut [f32]) {
        for k in 0..hidden {
            let i = 1.0 / (1.0 + (-z[k]).exp());
            let f = 1.0 / (1.0 + (-z[hidden + k]).exp());
            let g = z[2 * hidden + k].tanh();
            let o = 1.0 / (1.0 + (-z[3 * hidden + k]).exp());
            let c_new = f * c[k] + i * g;
            c[k] = c_new;
            h[k] = o * c_new.tanh();
        }
    }
}

// ---------------------------------------------------------------------------
// Shared deterministic transcendentals.
// ---------------------------------------------------------------------------

pub mod vmath {
    //! Deterministic `exp` / `sigmoid` / `tanh` shared by both backends.
    //!
    //! `libm`'s `exp` and `tanh` are scalar-only — no vector form reproduces
    //! their bits — so using them would pin the fused activation loops to
    //! scalar speed forever. Instead both backends evaluate one fixed
    //! algorithm built purely from mul/add/div/floor/min/max and the
    //! correctly-rounded fused multiply-add: clamp,
    //! argument reduction against a hi/lo split of ln 2, a degree-13 Horner
    //! polynomial for `e^r` on |r| ≤ ln 2 / 2, and exponent reassembly
    //! through the f64 bit pattern. The scalar form here and the 4-lane AVX2
    //! form in the `avx2` module perform the identical operation sequence per
    //! element, so the backends stay bit-for-bit identical. Accuracy vs
    //! `libm` is a few ulp (asserted by tests below); `tanh` loses relative
    //! (not absolute) accuracy below |x| ≈ 1e-8 to the `(e^{2x}−1)` form,
    //! which is far below training's noise floor.
    //!
    //! Comparison helpers mirror `vminpd`/`vmaxpd` semantics (`if a < b { a }
    //! else { b }`: the second operand wins on NaN), so scalar and vector
    //! agree on non-finite inputs too.

    /// Clamp bound: `e^±708` is finite and normal in f64, so no special
    /// overflow/underflow lanes are needed.
    pub const HI: f64 = 708.0;
    pub const LO: f64 = -708.0;
    pub const LOG2E: f64 = core::f64::consts::LOG2_E;
    /// ln 2 split into an exactly-representable head and a small tail, so
    /// `x - n·LN2_HI` is exact and the reduced argument keeps full precision.
    pub const LN2_HI: f64 = 0.693_145_751_953_125;
    pub const LN2_LO: f64 = 1.428_606_820_309_417_232_12e-6;
    /// Taylor coefficients `1/k!`. Truncation error of the degree-13 Horner
    /// evaluation at |r| ≤ ln 2 / 2 is r¹⁴/14! < 5e-18 — below rounding.
    pub const TAYLOR: [f64; 14] = [
        1.0,
        1.0,
        1.0 / 2.0,
        1.0 / 6.0,
        1.0 / 24.0,
        1.0 / 120.0,
        1.0 / 720.0,
        1.0 / 5040.0,
        1.0 / 40320.0,
        1.0 / 362_880.0,
        1.0 / 3_628_800.0,
        1.0 / 39_916_800.0,
        1.0 / 479_001_600.0,
        1.0 / 6_227_020_800.0,
    ];

    /// `vminpd` semantics: second operand on NaN.
    #[inline]
    fn min_like(a: f64, b: f64) -> f64 {
        if a < b {
            a
        } else {
            b
        }
    }

    /// `vmaxpd` semantics: second operand on NaN.
    #[inline]
    fn max_like(a: f64, b: f64) -> f64 {
        if a > b {
            a
        } else {
            b
        }
    }

    fma_dispatch!(
        fmadd_impl,
        fmadd_fma,
        /// Correctly-rounded fused `a·b + c`, the scalar twin of
        /// `_mm256_fmadd_pd`. Exposed so fused-op call sites outside this module
        /// (the LSTM cell update) hit the hardware instruction instead of a libm
        /// call per element.
        pub fn fmadd(a: f64, b: f64, c: f64) -> f64 {
            a.mul_add(b, c)
        }
    );

    fma_dispatch!(
        exp_impl,
        exp_fma,
        /// Fixed-operation-order `e^x`; a few ulp from `libm` (tested). The
        /// reduction and the Horner steps are fused multiply-adds, mirrored by
        /// `vfmadd`/`vfnmadd` in the AVX2 form.
        pub fn exp(x: f64) -> f64 {
            let x = max_like(min_like(x, HI), LO);
            let n = x.mul_add(LOG2E, 0.5).floor();
            let r = (-n).mul_add(LN2_HI, x);
            let r = (-n).mul_add(LN2_LO, r);
            let mut p = TAYLOR[13];
            for idx in (0..13).rev() {
                p = p.mul_add(r, TAYLOR[idx]);
            }
            // 2^n via the exponent bits; n ∈ [-1022, 1021] after the clamp, so
            // the biased exponent stays normal.
            let scale = f64::from_bits((((n as i64) + 1023) << 52) as u64);
            p * scale
        }
    );

    /// `1 / (1 + e^{-x})`.
    #[inline]
    pub fn sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + exp(-x))
    }

    /// `(e^{2x} − 1) / (e^{2x} + 1)`; saturates exactly to ±1.0 past
    /// |x| ≈ 19.1 because the clamp in [`exp`] caps the ratio.
    #[inline]
    pub fn tanh(x: f64) -> f64 {
        let e = exp(2.0 * x);
        (e - 1.0) / (e + 1.0)
    }
}

impl Kernels for ScalarKernels {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul_acc(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        scalar::matmul_acc(m, k, n, a, b, out);
    }

    fn matmul_nt_acc(&self, m: usize, d: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        scalar::matmul_nt_acc(m, d, n, a, b, out);
    }

    fn matmul_tn_acc(&self, k: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        scalar::matmul_tn_acc(k, m, n, a, b, out);
    }

    fn add_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        scalar::add_into(a, b, out);
    }

    fn sub_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        scalar::sub_into(a, b, out);
    }

    fn mul_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        scalar::mul_into(a, b, out);
    }

    fn add_assign(&self, dst: &mut [f64], src: &[f64]) {
        scalar::add_assign(dst, src);
    }

    fn mul_assign(&self, dst: &mut [f64], src: &[f64]) {
        scalar::mul_assign(dst, src);
    }

    fn scale_assign(&self, dst: &mut [f64], c: f64) {
        scalar::scale_assign(dst, c);
    }

    fn axpy(&self, dst: &mut [f64], c: f64, src: &[f64]) {
        scalar::axpy(dst, c, src);
    }

    fn add_prod(&self, dst: &mut [f64], x: &[f64], y: &[f64]) {
        scalar::add_prod(dst, x, y);
    }

    fn add_row_assign(&self, n: usize, d: usize, dst: &mut [f64], row: &[f64]) {
        scalar::add_row_assign(n, d, dst, row);
    }

    fn add_rows_acc(&self, n: usize, d: usize, rows: &[f64], acc: &mut [f64]) {
        scalar::add_rows_acc(n, d, rows, acc);
    }

    fn adam_moments(&self, m: &mut [f64], v: &mut [f64], g: &[f64], beta1: f64, beta2: f64) {
        scalar::adam_moments(m, v, g, beta1, beta2);
    }

    fn adam_update(
        &self,
        p: &mut [f64],
        m: &[f64],
        v: &[f64],
        lr: f64,
        bc1: f64,
        bc2: f64,
        eps: f64,
    ) {
        scalar::adam_update(p, m, v, lr, bc1, bc2, eps);
    }

    fn matmul_acc_f32(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        scalar::matmul_acc_f32(m, k, n, a, b, out);
    }

    fn add_assign_f32(&self, dst: &mut [f32], src: &[f32]) {
        scalar::add_assign_f32(dst, src);
    }

    fn scale_assign_f32(&self, dst: &mut [f32], c: f32) {
        scalar::scale_assign_f32(dst, c);
    }
}

// ---------------------------------------------------------------------------
// SIMD backend: AVX2 on x86_64, scalar fallback elsewhere.
// ---------------------------------------------------------------------------

/// AVX2 backend. Every method dispatches on a cached runtime feature check,
/// so constructing it is always safe; without AVX2 + FMA it *is* the scalar
/// backend under another name.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimdKernels;

/// Cached `is_x86_feature_detected!("avx2") && ("fma")`. Always false off
/// x86_64.
#[inline]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // 0 = unknown, 1 = no, 2 = yes.
        static CACHE: AtomicU8 = AtomicU8::new(0);
        match CACHE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma");
                CACHE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 kernel bodies. All f64 kernels follow the bit-identity rules
    //! from the module docs: fused multiply-adds mirrored exactly by the
    //! scalar oracle's `mul_add` sites, scalar-order reductions, shared
    //! scalar tails.
    use core::arch::x86_64::*;

    use super::scalar;

    /// `out += a · b`, register-blocked: 16 output columns live in four
    /// accumulators across the whole `k` loop, so `out` is loaded and stored
    /// once per block instead of once per `k`. Each output element still
    /// accumulates `a[i][kk] · b[kk][j]` in ascending `kk` starting from the
    /// original `out` value — exactly the scalar order — and the `a == 0.0`
    /// skip is retained.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        let bp = b.as_ptr();
        for i in 0..m {
            let arow = a.as_ptr().add(i * k);
            let crow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            while j + 16 <= n {
                let mut acc0 = _mm256_loadu_pd(crow.add(j));
                let mut acc1 = _mm256_loadu_pd(crow.add(j + 4));
                let mut acc2 = _mm256_loadu_pd(crow.add(j + 8));
                let mut acc3 = _mm256_loadu_pd(crow.add(j + 12));
                for kk in 0..k {
                    let av = *arow.add(kk);
                    if av == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_pd(av);
                    let brow = bp.add(kk * n + j);
                    acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow), acc0);
                    acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow.add(4)), acc1);
                    acc2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow.add(8)), acc2);
                    acc3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow.add(12)), acc3);
                }
                _mm256_storeu_pd(crow.add(j), acc0);
                _mm256_storeu_pd(crow.add(j + 4), acc1);
                _mm256_storeu_pd(crow.add(j + 8), acc2);
                _mm256_storeu_pd(crow.add(j + 12), acc3);
                j += 16;
            }
            while j + 4 <= n {
                let mut acc = _mm256_loadu_pd(crow.add(j));
                for kk in 0..k {
                    let av = *arow.add(kk);
                    if av == 0.0 {
                        continue;
                    }
                    let vb = _mm256_loadu_pd(bp.add(kk * n + j));
                    acc = _mm256_fmadd_pd(_mm256_set1_pd(av), vb, acc);
                }
                _mm256_storeu_pd(crow.add(j), acc);
                j += 4;
            }
            while j < n {
                let mut s = *crow.add(j);
                for kk in 0..k {
                    let av = *arow.add(kk);
                    if av == 0.0 {
                        continue;
                    }
                    s = av.mul_add(*bp.add(kk * n + j), s);
                }
                *crow.add(j) = s;
                j += 1;
            }
        }
    }

    // `matmul_tn_acc` has no intrinsic body on purpose: the rank-1 update is
    // a row of fused axpys, and the autovectorized scalar body wins — see
    // `SimdKernels::matmul_tn_acc`.

    /// The four-lane interleaved reduction of [`scalar::dot`] held in one
    /// register: lane `p` sums elements `p, p+4, …` with fused multiply-adds,
    /// the lanes combine as `(l0 + l2) + (l1 + l3)`, the remainder
    /// accumulates onto the combined sum in ascending order — the identical
    /// operation sequence, so results are bit-identical.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum_dot(acc: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd::<1>(acc);
        let pair = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
        _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair))
    }

    /// `out += a · bᵀ` — the reduction kernel. Each output column is the
    /// interleaved [`scalar::dot`]; eight columns run at once so eight
    /// independent FMA chains share every load of `a`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_nt_acc(
        m: usize,
        d: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        for i in 0..m {
            let arow = a.as_ptr().add(i * d);
            let crow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            while j + 8 <= n {
                let b0 = b.as_ptr().add(j * d);
                let b1 = b.as_ptr().add((j + 1) * d);
                let b2 = b.as_ptr().add((j + 2) * d);
                let b3 = b.as_ptr().add((j + 3) * d);
                let b4 = b.as_ptr().add((j + 4) * d);
                let b5 = b.as_ptr().add((j + 5) * d);
                let b6 = b.as_ptr().add((j + 6) * d);
                let b7 = b.as_ptr().add((j + 7) * d);
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut acc2 = _mm256_setzero_pd();
                let mut acc3 = _mm256_setzero_pd();
                let mut acc4 = _mm256_setzero_pd();
                let mut acc5 = _mm256_setzero_pd();
                let mut acc6 = _mm256_setzero_pd();
                let mut acc7 = _mm256_setzero_pd();
                let mut kk = 0;
                while kk + 4 <= d {
                    let va = _mm256_loadu_pd(arow.add(kk));
                    acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b0.add(kk)), acc0);
                    acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b1.add(kk)), acc1);
                    acc2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b2.add(kk)), acc2);
                    acc3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b3.add(kk)), acc3);
                    acc4 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b4.add(kk)), acc4);
                    acc5 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b5.add(kk)), acc5);
                    acc6 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b6.add(kk)), acc6);
                    acc7 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b7.add(kk)), acc7);
                    kk += 4;
                }
                let mut s = [
                    hsum_dot(acc0),
                    hsum_dot(acc1),
                    hsum_dot(acc2),
                    hsum_dot(acc3),
                    hsum_dot(acc4),
                    hsum_dot(acc5),
                    hsum_dot(acc6),
                    hsum_dot(acc7),
                ];
                while kk < d {
                    let av = *arow.add(kk);
                    s[0] = av.mul_add(*b0.add(kk), s[0]);
                    s[1] = av.mul_add(*b1.add(kk), s[1]);
                    s[2] = av.mul_add(*b2.add(kk), s[2]);
                    s[3] = av.mul_add(*b3.add(kk), s[3]);
                    s[4] = av.mul_add(*b4.add(kk), s[4]);
                    s[5] = av.mul_add(*b5.add(kk), s[5]);
                    s[6] = av.mul_add(*b6.add(kk), s[6]);
                    s[7] = av.mul_add(*b7.add(kk), s[7]);
                    kk += 1;
                }
                for (p, sv) in s.iter().enumerate() {
                    *crow.add(j + p) += sv;
                }
                j += 8;
            }
            while j < n {
                let arow_s = core::slice::from_raw_parts(arow, d);
                let brow_s = core::slice::from_raw_parts(b.as_ptr().add(j * d), d);
                *crow.add(j) += scalar::dot(arow_s, brow_s);
                j += 1;
            }
        }
    }

    macro_rules! ew_binary {
        ($name:ident, $vop:ident, $sop:tt) => {
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn $name(a: &[f64], b: &[f64], out: &mut [f64]) {
                let len = out.len().min(a.len()).min(b.len());
                let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
                let mut i = 0;
                while i + 4 <= len {
                    let va = _mm256_loadu_pd(pa.add(i));
                    let vb = _mm256_loadu_pd(pb.add(i));
                    _mm256_storeu_pd(po.add(i), $vop(va, vb));
                    i += 4;
                }
                while i < len {
                    *po.add(i) = *pa.add(i) $sop *pb.add(i);
                    i += 1;
                }
            }
        };
    }

    ew_binary!(add_into, _mm256_add_pd, +);
    ew_binary!(sub_into, _mm256_sub_pd, -);
    ew_binary!(mul_into, _mm256_mul_pd, *);

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_assign(dst: &mut [f64], src: &[f64]) {
        let len = dst.len().min(src.len());
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 4 <= len {
            let vd = _mm256_loadu_pd(pd.add(i));
            let vs = _mm256_loadu_pd(ps.add(i));
            _mm256_storeu_pd(pd.add(i), _mm256_add_pd(vd, vs));
            i += 4;
        }
        while i < len {
            *pd.add(i) += *ps.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mul_assign(dst: &mut [f64], src: &[f64]) {
        let len = dst.len().min(src.len());
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 4 <= len {
            let vd = _mm256_loadu_pd(pd.add(i));
            let vs = _mm256_loadu_pd(ps.add(i));
            _mm256_storeu_pd(pd.add(i), _mm256_mul_pd(vd, vs));
            i += 4;
        }
        while i < len {
            *pd.add(i) *= *ps.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale_assign(dst: &mut [f64], c: f64) {
        let vc = _mm256_set1_pd(c);
        let pd = dst.as_mut_ptr();
        let len = dst.len();
        let mut i = 0;
        while i + 4 <= len {
            let vd = _mm256_loadu_pd(pd.add(i));
            _mm256_storeu_pd(pd.add(i), _mm256_mul_pd(vd, vc));
            i += 4;
        }
        while i < len {
            *pd.add(i) *= c;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(dst: &mut [f64], c: f64, src: &[f64]) {
        let vc = _mm256_set1_pd(c);
        let len = dst.len().min(src.len());
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 4 <= len {
            let vd = _mm256_loadu_pd(pd.add(i));
            let vs = _mm256_loadu_pd(ps.add(i));
            _mm256_storeu_pd(pd.add(i), _mm256_fmadd_pd(vc, vs, vd));
            i += 4;
        }
        while i < len {
            *pd.add(i) = c.mul_add(*ps.add(i), *pd.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn adam_moments(m: &mut [f64], v: &mut [f64], g: &[f64], beta1: f64, beta2: f64) {
        let len = m.len().min(v.len()).min(g.len());
        let (vb1, vo1) = (_mm256_set1_pd(beta1), _mm256_set1_pd(1.0 - beta1));
        let (vb2, vo2) = (_mm256_set1_pd(beta2), _mm256_set1_pd(1.0 - beta2));
        let (pm, pv, pg) = (m.as_mut_ptr(), v.as_mut_ptr(), g.as_ptr());
        let mut i = 0;
        while i + 4 <= len {
            let gv = _mm256_loadu_pd(pg.add(i));
            let mv = _mm256_loadu_pd(pm.add(i));
            let vv = _mm256_loadu_pd(pv.add(i));
            // Exact scalar grouping: β₁·m + (1−β₁)·g and β₂·v + ((1−β₂)·g)·g.
            let m_new = _mm256_add_pd(_mm256_mul_pd(vb1, mv), _mm256_mul_pd(vo1, gv));
            let v_new =
                _mm256_add_pd(_mm256_mul_pd(vb2, vv), _mm256_mul_pd(_mm256_mul_pd(vo2, gv), gv));
            _mm256_storeu_pd(pm.add(i), m_new);
            _mm256_storeu_pd(pv.add(i), v_new);
            i += 4;
        }
        if i < len {
            scalar::adam_moments(&mut m[i..len], &mut v[i..len], &g[i..len], beta1, beta2);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn adam_update(
        p: &mut [f64],
        m: &[f64],
        v: &[f64],
        lr: f64,
        bc1: f64,
        bc2: f64,
        eps: f64,
    ) {
        let len = p.len().min(m.len()).min(v.len());
        let (vlr, vbc1) = (_mm256_set1_pd(lr), _mm256_set1_pd(bc1));
        let (vbc2, veps) = (_mm256_set1_pd(bc2), _mm256_set1_pd(eps));
        let (pp, pm, pv) = (p.as_mut_ptr(), m.as_ptr(), v.as_ptr());
        let mut i = 0;
        while i + 4 <= len {
            let mv = _mm256_loadu_pd(pm.add(i));
            let vv = _mm256_loadu_pd(pv.add(i));
            let pvv = _mm256_loadu_pd(pp.add(i));
            // Division and sqrt are correctly rounded, so this matches the
            // scalar `lr·(m/bc1)/(√(v/bc2)+ε)` bit for bit.
            let mhat = _mm256_div_pd(mv, vbc1);
            let vhat = _mm256_div_pd(vv, vbc2);
            let denom = _mm256_add_pd(_mm256_sqrt_pd(vhat), veps);
            let step = _mm256_div_pd(_mm256_mul_pd(vlr, mhat), denom);
            _mm256_storeu_pd(pp.add(i), _mm256_sub_pd(pvv, step));
            i += 4;
        }
        if i < len {
            scalar::adam_update(&mut p[i..len], &m[i..len], &v[i..len], lr, bc1, bc2, eps);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_prod(dst: &mut [f64], x: &[f64], y: &[f64]) {
        let len = dst.len().min(x.len()).min(y.len());
        let (pd, px, py) = (dst.as_mut_ptr(), x.as_ptr(), y.as_ptr());
        let mut i = 0;
        while i + 4 <= len {
            let vd = _mm256_loadu_pd(pd.add(i));
            let vx = _mm256_loadu_pd(px.add(i));
            let vy = _mm256_loadu_pd(py.add(i));
            _mm256_storeu_pd(pd.add(i), _mm256_fmadd_pd(vx, vy, vd));
            i += 4;
        }
        while i < len {
            *pd.add(i) = (*px.add(i)).mul_add(*py.add(i), *pd.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_row_assign(n: usize, d: usize, dst: &mut [f64], row: &[f64]) {
        for r in 0..n {
            add_assign(&mut dst[r * d..(r + 1) * d], row);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_rows_acc(n: usize, d: usize, rows: &[f64], acc: &mut [f64]) {
        for r in 0..n {
            add_assign(acc, &rows[r * d..(r + 1) * d]);
        }
    }

    /// Vectorized LSTM gate backward. Per-element arithmetic only, with the
    /// exact operator grouping of the scalar lane, so results are
    /// bit-identical.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn lstm_gates_backward(
        n: usize,
        hidden: usize,
        saved: &[f64],
        g: &[f64],
        c_old: &[f64],
        dz: &mut [f64],
        dc_old: &mut [f64],
    ) {
        let one = _mm256_set1_pd(1.0);
        for r in 0..n {
            let srow = saved.as_ptr().add(r * 5 * hidden);
            let grow = g.as_ptr().add(r * 2 * hidden);
            let crow = c_old.as_ptr().add(r * hidden);
            let dzrow = dz.as_mut_ptr().add(r * 4 * hidden);
            let dcrow = dc_old.as_mut_ptr().add(r * hidden);
            let mut k = 0;
            while k + 4 <= hidden {
                let iv = _mm256_loadu_pd(srow.add(k));
                let fv = _mm256_loadu_pd(srow.add(hidden + k));
                let gtv = _mm256_loadu_pd(srow.add(2 * hidden + k));
                let ov = _mm256_loadu_pd(srow.add(3 * hidden + k));
                let tc = _mm256_loadu_pd(srow.add(4 * hidden + k));
                let gh = _mm256_loadu_pd(grow.add(k));
                let gc = _mm256_loadu_pd(grow.add(hidden + k));
                let cv = _mm256_loadu_pd(crow.add(k));
                // dct = fma(gh*ov, fnma(tc, tc, 1), gc), as in the scalar lane.
                let dtc = _mm256_fnmadd_pd(tc, tc, one);
                let dct = _mm256_fmadd_pd(_mm256_mul_pd(gh, ov), dtc, gc);
                _mm256_storeu_pd(dcrow.add(k), _mm256_mul_pd(dct, fv));
                // dz_o = (gh*tc) * ov * (1 - ov)
                let dgo = _mm256_mul_pd(gh, tc);
                _mm256_storeu_pd(
                    dzrow.add(3 * hidden + k),
                    _mm256_mul_pd(_mm256_mul_pd(dgo, ov), _mm256_sub_pd(one, ov)),
                );
                // dz_i = (dct*gtv) * iv * (1 - iv)
                let di = _mm256_mul_pd(dct, gtv);
                _mm256_storeu_pd(
                    dzrow.add(k),
                    _mm256_mul_pd(_mm256_mul_pd(di, iv), _mm256_sub_pd(one, iv)),
                );
                // dz_f = (dct*c_old) * fv * (1 - fv)
                let df = _mm256_mul_pd(dct, cv);
                _mm256_storeu_pd(
                    dzrow.add(hidden + k),
                    _mm256_mul_pd(_mm256_mul_pd(df, fv), _mm256_sub_pd(one, fv)),
                );
                // dz_g = (dct*iv) * fnma(gtv, gtv, 1)
                let dg = _mm256_mul_pd(dct, iv);
                _mm256_storeu_pd(
                    dzrow.add(2 * hidden + k),
                    _mm256_mul_pd(dg, _mm256_fnmadd_pd(gtv, gtv, one)),
                );
                k += 4;
            }
            if k < hidden {
                let srow_s = core::slice::from_raw_parts(srow, 5 * hidden);
                let grow_s = core::slice::from_raw_parts(grow, 2 * hidden);
                let crow_s = core::slice::from_raw_parts(crow, hidden);
                let dzrow_s = core::slice::from_raw_parts_mut(dzrow, 4 * hidden);
                let dcrow_s = core::slice::from_raw_parts_mut(dcrow, hidden);
                while k < hidden {
                    scalar::lstm_gate_backward_lane(
                        srow_s, grow_s, crow_s, dzrow_s, dcrow_s, hidden, k,
                    );
                    k += 1;
                }
            }
        }
    }

    // ------------------------------------------------ shared transcendentals

    /// 4-lane [`vmath::exp`]: the identical operation sequence per lane
    /// (clamp, reduction, degree-13 Horner, exponent reassembly), so results
    /// are bit-identical to the scalar evaluation.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn vexp(x: __m256d) -> __m256d {
        use super::vmath as vm;
        let x = _mm256_max_pd(_mm256_min_pd(x, _mm256_set1_pd(vm::HI)), _mm256_set1_pd(vm::LO));
        let n = _mm256_floor_pd(_mm256_fmadd_pd(x, _mm256_set1_pd(vm::LOG2E), _mm256_set1_pd(0.5)));
        let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(vm::LN2_HI), x);
        let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(vm::LN2_LO), r);
        let mut p = _mm256_set1_pd(vm::TAYLOR[13]);
        for idx in (0..13).rev() {
            p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(vm::TAYLOR[idx]));
        }
        // 2^n through the exponent bits; n is an exact small integer, so the
        // i32 conversion is exact (mirrors the scalar `n as i64`).
        let ni = _mm256_cvtpd_epi32(n);
        let nl = _mm256_cvtepi32_epi64(ni);
        let bits = _mm256_slli_epi64::<52>(_mm256_add_epi64(nl, _mm256_set1_epi64x(1023)));
        _mm256_mul_pd(p, _mm256_castsi256_pd(bits))
    }

    /// 4-lane [`vmath::sigmoid`] (negation via sign-bit xor = Rust `-x`).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn vsigmoid(x: __m256d) -> __m256d {
        let one = _mm256_set1_pd(1.0);
        let e = vexp(_mm256_xor_pd(x, _mm256_set1_pd(-0.0)));
        _mm256_div_pd(one, _mm256_add_pd(one, e))
    }

    /// 4-lane [`vmath::tanh`].
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn vtanh(x: __m256d) -> __m256d {
        let one = _mm256_set1_pd(1.0);
        let e = vexp(_mm256_mul_pd(_mm256_set1_pd(2.0), x));
        _mm256_div_pd(_mm256_sub_pd(e, one), _mm256_add_pd(e, one))
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sigmoid_inplace(xs: &mut [f64]) {
        let len = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= len {
            _mm256_storeu_pd(p.add(i), vsigmoid(_mm256_loadu_pd(p.add(i))));
            i += 4;
        }
        while i < len {
            *p.add(i) = super::vmath::sigmoid(*p.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tanh_inplace(xs: &mut [f64]) {
        let len = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= len {
            _mm256_storeu_pd(p.add(i), vtanh(_mm256_loadu_pd(p.add(i))));
            i += 4;
        }
        while i < len {
            *p.add(i) = super::vmath::tanh(*p.add(i));
            i += 1;
        }
    }

    /// Vectorized LSTM gate forward: four hidden lanes per iteration, five
    /// shared-[`vmath`](super::vmath) transcendentals each, with the exact
    /// operator grouping of the scalar lane — bit-identical results.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn lstm_gates(
        n: usize,
        hidden: usize,
        z: &[f64],
        c_old: &[f64],
        saved: &mut [f64],
        out: &mut [f64],
    ) {
        for r in 0..n {
            let zrow = z.as_ptr().add(r * 4 * hidden);
            let crow = c_old.as_ptr().add(r * hidden);
            let srow = saved.as_mut_ptr().add(r * 5 * hidden);
            let orow = out.as_mut_ptr().add(r * 2 * hidden);
            let mut k = 0;
            while k + 4 <= hidden {
                let iv = vsigmoid(_mm256_loadu_pd(zrow.add(k)));
                let fv = vsigmoid(_mm256_loadu_pd(zrow.add(hidden + k)));
                let gv = vtanh(_mm256_loadu_pd(zrow.add(2 * hidden + k)));
                let ov = vsigmoid(_mm256_loadu_pd(zrow.add(3 * hidden + k)));
                let cv = _mm256_loadu_pd(crow.add(k));
                // c_new = fma(i, g, f*c_old), same grouping as the scalar lane.
                let c_new = _mm256_fmadd_pd(iv, gv, _mm256_mul_pd(fv, cv));
                let tc = vtanh(c_new);
                _mm256_storeu_pd(srow.add(k), iv);
                _mm256_storeu_pd(srow.add(hidden + k), fv);
                _mm256_storeu_pd(srow.add(2 * hidden + k), gv);
                _mm256_storeu_pd(srow.add(3 * hidden + k), ov);
                _mm256_storeu_pd(srow.add(4 * hidden + k), tc);
                _mm256_storeu_pd(orow.add(k), _mm256_mul_pd(ov, tc));
                _mm256_storeu_pd(orow.add(hidden + k), c_new);
                k += 4;
            }
            if k < hidden {
                let zrow_s = core::slice::from_raw_parts(zrow, 4 * hidden);
                let crow_s = core::slice::from_raw_parts(crow, hidden);
                let srow_s = core::slice::from_raw_parts_mut(srow, 5 * hidden);
                let orow_s = core::slice::from_raw_parts_mut(orow, 2 * hidden);
                while k < hidden {
                    scalar::lstm_gate_forward_lane(zrow_s, crow_s, srow_s, orow_s, hidden, k);
                    k += 1;
                }
            }
        }
    }

    // -------------------------------------------------------- f32 inference

    /// f32 matmul accumulate with FMA, 8 lanes wide. Inference only — not
    /// bit-comparable to the scalar f32 kernel (FMA rounds once).
    ///
    /// Rows are processed in blocks of four so each weight vector is loaded
    /// once and fused into all four rows — at batch height the weight matrix
    /// is streamed `m/4` times instead of `m` times, which is what makes the
    /// batched serving path beat one-at-a-time on matrices that spill L1/L2.
    /// Per-row `kk` order is identical to the single-row loop below, so every
    /// output row is bitwise equal to an `m = 1` call (the batched-embed
    /// parity contract). Unlike the training kernels there is no `a == 0`
    /// skip: inference inputs are dense (learned embeddings, LSTM states), so
    /// the per-element test only cost ports — and both row paths must agree
    /// on it anyway for the parity contract.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_acc_f32(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let a0 = a.as_ptr().add(i * k);
            let (a1, a2, a3) = (a0.add(k), a0.add(2 * k), a0.add(3 * k));
            let c0 = out.as_mut_ptr().add(i * n);
            let (c1, c2, c3) = (c0.add(n), c0.add(2 * n), c0.add(3 * n));
            let mut j = 0;
            while j + 16 <= n {
                let mut acc00 = _mm256_loadu_ps(c0.add(j));
                let mut acc01 = _mm256_loadu_ps(c0.add(j + 8));
                let mut acc10 = _mm256_loadu_ps(c1.add(j));
                let mut acc11 = _mm256_loadu_ps(c1.add(j + 8));
                let mut acc20 = _mm256_loadu_ps(c2.add(j));
                let mut acc21 = _mm256_loadu_ps(c2.add(j + 8));
                let mut acc30 = _mm256_loadu_ps(c3.add(j));
                let mut acc31 = _mm256_loadu_ps(c3.add(j + 8));
                for kk in 0..k {
                    let brow = bp.add(kk * n + j);
                    let b0 = _mm256_loadu_ps(brow);
                    let b1 = _mm256_loadu_ps(brow.add(8));
                    let v = _mm256_set1_ps(*a0.add(kk));
                    acc00 = _mm256_fmadd_ps(v, b0, acc00);
                    acc01 = _mm256_fmadd_ps(v, b1, acc01);
                    let v = _mm256_set1_ps(*a1.add(kk));
                    acc10 = _mm256_fmadd_ps(v, b0, acc10);
                    acc11 = _mm256_fmadd_ps(v, b1, acc11);
                    let v = _mm256_set1_ps(*a2.add(kk));
                    acc20 = _mm256_fmadd_ps(v, b0, acc20);
                    acc21 = _mm256_fmadd_ps(v, b1, acc21);
                    let v = _mm256_set1_ps(*a3.add(kk));
                    acc30 = _mm256_fmadd_ps(v, b0, acc30);
                    acc31 = _mm256_fmadd_ps(v, b1, acc31);
                }
                _mm256_storeu_ps(c0.add(j), acc00);
                _mm256_storeu_ps(c0.add(j + 8), acc01);
                _mm256_storeu_ps(c1.add(j), acc10);
                _mm256_storeu_ps(c1.add(j + 8), acc11);
                _mm256_storeu_ps(c2.add(j), acc20);
                _mm256_storeu_ps(c2.add(j + 8), acc21);
                _mm256_storeu_ps(c3.add(j), acc30);
                _mm256_storeu_ps(c3.add(j + 8), acc31);
                j += 16;
            }
            if j < n {
                matmul_acc_f32_row_cols(k, n, j, a0, bp, c0);
                matmul_acc_f32_row_cols(k, n, j, a1, bp, c1);
                matmul_acc_f32_row_cols(k, n, j, a2, bp, c2);
                matmul_acc_f32_row_cols(k, n, j, a3, bp, c3);
            }
            i += 4;
        }
        for i in i..m {
            let arow = a.as_ptr().add(i * k);
            let crow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            while j + 32 <= n {
                let mut acc0 = _mm256_loadu_ps(crow.add(j));
                let mut acc1 = _mm256_loadu_ps(crow.add(j + 8));
                let mut acc2 = _mm256_loadu_ps(crow.add(j + 16));
                let mut acc3 = _mm256_loadu_ps(crow.add(j + 24));
                for kk in 0..k {
                    let va = _mm256_set1_ps(*arow.add(kk));
                    let brow = bp.add(kk * n + j);
                    acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow), acc0);
                    acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(8)), acc1);
                    acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(16)), acc2);
                    acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(24)), acc3);
                }
                _mm256_storeu_ps(crow.add(j), acc0);
                _mm256_storeu_ps(crow.add(j + 8), acc1);
                _mm256_storeu_ps(crow.add(j + 16), acc2);
                _mm256_storeu_ps(crow.add(j + 24), acc3);
                j += 32;
            }
            while j + 8 <= n {
                let mut acc = _mm256_loadu_ps(crow.add(j));
                for kk in 0..k {
                    acc = _mm256_fmadd_ps(
                        _mm256_set1_ps(*arow.add(kk)),
                        _mm256_loadu_ps(bp.add(kk * n + j)),
                        acc,
                    );
                }
                _mm256_storeu_ps(crow.add(j), acc);
                j += 8;
            }
            while j < n {
                let mut s = *crow.add(j);
                for kk in 0..k {
                    s += *arow.add(kk) * *bp.add(kk * n + j);
                }
                *crow.add(j) = s;
                j += 1;
            }
        }
    }

    /// One output row over columns `j0..n` — the column remainder of a
    /// 4-row block. Same 8-lane/scalar tails (and zero-skip) as the
    /// single-row loop in [`matmul_acc_f32`]. Also the column-remainder
    /// helper for the AVX-512 blocks, which produce the same per-element
    /// results at any vector width.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matmul_acc_f32_row_cols(
        k: usize,
        n: usize,
        j0: usize,
        arow: *const f32,
        bp: *const f32,
        crow: *mut f32,
    ) {
        let mut j = j0;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_ps(crow.add(j));
            for kk in 0..k {
                acc = _mm256_fmadd_ps(
                    _mm256_set1_ps(*arow.add(kk)),
                    _mm256_loadu_ps(bp.add(kk * n + j)),
                    acc,
                );
            }
            _mm256_storeu_ps(crow.add(j), acc);
            j += 8;
        }
        while j < n {
            let mut s = *crow.add(j);
            for kk in 0..k {
                s += *arow.add(kk) * *bp.add(kk * n + j);
            }
            *crow.add(j) = s;
            j += 1;
        }
    }

    /// 8-lane f32 exp: clamp, range reduction, degree-5 Horner (Cephes
    /// `expf` coefficients), exponent reassembly. ~2 f32 ULP — inference
    /// only; the f64 [`vexp`] remains the training-path oracle.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn vexp_f32(x: __m256) -> __m256 {
        let x = _mm256_max_ps(_mm256_min_ps(x, _mm256_set1_ps(88.376_26)), _mm256_set1_ps(-87.0));
        let n = _mm256_floor_ps(_mm256_fmadd_ps(
            x,
            _mm256_set1_ps(std::f32::consts::LOG2_E),
            _mm256_set1_ps(0.5),
        ));
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(0.693_359_4), x);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(-2.121_944_4e-4), r);
        let mut p = _mm256_set1_ps(1.987_569_1e-4);
        for &coef in &[1.398_2e-3f32, 8.333_452e-3, 4.166_579_6e-2, 1.666_666_5e-1, 5.000_000_2e-1]
        {
            p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(coef));
        }
        let r2 = _mm256_mul_ps(r, r);
        let y = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), _mm256_set1_ps(1.0));
        let bits = _mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(127),
        ));
        _mm256_mul_ps(y, _mm256_castsi256_ps(bits))
    }

    /// 8-lane f32 `1 / (1 + e^{-x})`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn vsigmoid_f32(x: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let e = vexp_f32(_mm256_xor_ps(x, _mm256_set1_ps(-0.0)));
        _mm256_div_ps(one, _mm256_add_ps(one, e))
    }

    /// 8-lane f32 `tanh` via `(e^{2x} - 1) / (e^{2x} + 1)`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn vtanh_f32(x: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let e = vexp_f32(_mm256_mul_ps(_mm256_set1_ps(2.0), x));
        _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one))
    }

    /// f32 LSTM gate inference: eight lanes evaluated natively in f32
    /// (short-polynomial exp, see [`vexp_f32`]); the `hidden % 8` remainder
    /// widens to f64 through the shared [`vmath`](super::vmath) pipeline as
    /// before. Both forms sit well inside the inference error budget against
    /// the scalar f32 libm path (`lstm_infer_f32_ulp`), and single-query and
    /// batched embeds share this one kernel, so batch-vs-single bitwise
    /// parity is preserved by construction.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn lstm_gates_infer_f32(hidden: usize, z: &[f32], c: &mut [f32], h: &mut [f32]) {
        lstm_gates_infer_f32_from(0, hidden, z, c, h);
    }

    /// [`lstm_gates_infer_f32`] starting at lane `k0` — the `hidden % 16`
    /// remainder entry point for the AVX-512 kernel (same 8-lane body, f64
    /// 4-lane and scalar tails).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lstm_gates_infer_f32_from(
        k0: usize,
        hidden: usize,
        z: &[f32],
        c: &mut [f32],
        h: &mut [f32],
    ) {
        let zp = z.as_ptr();
        let cp = c.as_mut_ptr();
        let hp = h.as_mut_ptr();
        let mut k = k0;
        while k + 8 <= hidden {
            let iv = vsigmoid_f32(_mm256_loadu_ps(zp.add(k)));
            let fv = vsigmoid_f32(_mm256_loadu_ps(zp.add(hidden + k)));
            let gv = vtanh_f32(_mm256_loadu_ps(zp.add(2 * hidden + k)));
            let ov = vsigmoid_f32(_mm256_loadu_ps(zp.add(3 * hidden + k)));
            let cv = _mm256_loadu_ps(cp.add(k));
            let c_new = _mm256_fmadd_ps(fv, cv, _mm256_mul_ps(iv, gv));
            let tc = vtanh_f32(c_new);
            _mm256_storeu_ps(cp.add(k), c_new);
            _mm256_storeu_ps(hp.add(k), _mm256_mul_ps(ov, tc));
            k += 8;
        }
        while k + 4 <= hidden {
            let iv = vsigmoid(_mm256_cvtps_pd(_mm_loadu_ps(zp.add(k))));
            let fv = vsigmoid(_mm256_cvtps_pd(_mm_loadu_ps(zp.add(hidden + k))));
            let gv = vtanh(_mm256_cvtps_pd(_mm_loadu_ps(zp.add(2 * hidden + k))));
            let ov = vsigmoid(_mm256_cvtps_pd(_mm_loadu_ps(zp.add(3 * hidden + k))));
            let cv = _mm256_cvtps_pd(_mm_loadu_ps(cp.add(k)));
            let c_new = _mm256_add_pd(_mm256_mul_pd(fv, cv), _mm256_mul_pd(iv, gv));
            let tc = vtanh(c_new);
            _mm_storeu_ps(cp.add(k), _mm256_cvtpd_ps(c_new));
            _mm_storeu_ps(hp.add(k), _mm256_cvtpd_ps(_mm256_mul_pd(ov, tc)));
            k += 4;
        }
        while k < hidden {
            let i = super::vmath::sigmoid(f64::from(*zp.add(k)));
            let f = super::vmath::sigmoid(f64::from(*zp.add(hidden + k)));
            let g = super::vmath::tanh(f64::from(*zp.add(2 * hidden + k)));
            let o = super::vmath::sigmoid(f64::from(*zp.add(3 * hidden + k)));
            let c_new = f * f64::from(*cp.add(k)) + i * g;
            let tc = super::vmath::tanh(c_new);
            *cp.add(k) = c_new as f32;
            *hp.add(k) = (o * tc) as f32;
            k += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_assign_f32(dst: &mut [f32], src: &[f32]) {
        let len = dst.len().min(src.len());
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 8 <= len {
            let vd = _mm256_loadu_ps(pd.add(i));
            let vs = _mm256_loadu_ps(ps.add(i));
            _mm256_storeu_ps(pd.add(i), _mm256_add_ps(vd, vs));
            i += 8;
        }
        while i < len {
            *pd.add(i) += *ps.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale_assign_f32(dst: &mut [f32], c: f32) {
        let vc = _mm256_set1_ps(c);
        let pd = dst.as_mut_ptr();
        let len = dst.len();
        let mut i = 0;
        while i + 8 <= len {
            let vd = _mm256_loadu_ps(pd.add(i));
            _mm256_storeu_ps(pd.add(i), _mm256_mul_ps(vd, vc));
            i += 8;
        }
        while i < len {
            *pd.add(i) *= c;
            i += 1;
        }
    }
}

/// Cached `avx512f` (plus the avx2+fma baseline the shared remainder helpers
/// need). Always false off x86_64.
#[inline]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // 0 = unknown, 1 = no, 2 = yes.
        static CACHE: AtomicU8 = AtomicU8::new(0);
        match CACHE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = std::arch::is_x86_feature_detected!("avx512f") && simd_available();
                CACHE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! AVX-512 bodies for the f32 inference hot path (batched serving).
    //!
    //! Vector lanes map to *independent* output elements (matmul columns,
    //! gate units), and each element still sees the exact same scalar-order
    //! `k` contraction / polynomial, one FMA per product — widening the
    //! registers from 8 to 16 lanes changes which elements share a register,
    //! never the arithmetic any single element observes. The matmul is
    //! therefore bitwise identical to [`super::avx2`]'s; the gate
    //! activations deviate from it by ~2 ulp where divisions become
    //! Newton-refined `rcp14` (see [`vrecip_mul_f32`]), well inside the
    //! `lstm_infer_f32_ulp` envelope. Batched-vs-single bitwise parity is
    //! untouched either way: both embed paths dispatch to the *same* kernel.
    //! Remainders (columns `% 32`, lanes `% 16`) fall through to the AVX2
    //! helpers themselves.
    use core::arch::x86_64::*;

    use super::avx2;

    /// `out += a · b`, 4 rows × 32 columns per block: eight zmm accumulators,
    /// two B-row loads and four broadcasts per `kk`, 128 MACs per iteration.
    /// The weight panel is read once per 4-row block instead of once per row,
    /// which is where the batched-embed speedup over single-query calls
    /// comes from.
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn matmul_acc_f32(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let a0 = a.as_ptr().add(i * k);
            let (a1, a2, a3) = (a0.add(k), a0.add(2 * k), a0.add(3 * k));
            let c0 = out.as_mut_ptr().add(i * n);
            let (c1, c2, c3) = (c0.add(n), c0.add(2 * n), c0.add(3 * n));
            let mut j = 0;
            while j + 32 <= n {
                let mut acc00 = _mm512_loadu_ps(c0.add(j));
                let mut acc01 = _mm512_loadu_ps(c0.add(j + 16));
                let mut acc10 = _mm512_loadu_ps(c1.add(j));
                let mut acc11 = _mm512_loadu_ps(c1.add(j + 16));
                let mut acc20 = _mm512_loadu_ps(c2.add(j));
                let mut acc21 = _mm512_loadu_ps(c2.add(j + 16));
                let mut acc30 = _mm512_loadu_ps(c3.add(j));
                let mut acc31 = _mm512_loadu_ps(c3.add(j + 16));
                for kk in 0..k {
                    let brow = bp.add(kk * n + j);
                    let b0 = _mm512_loadu_ps(brow);
                    let b1 = _mm512_loadu_ps(brow.add(16));
                    let v = _mm512_set1_ps(*a0.add(kk));
                    acc00 = _mm512_fmadd_ps(v, b0, acc00);
                    acc01 = _mm512_fmadd_ps(v, b1, acc01);
                    let v = _mm512_set1_ps(*a1.add(kk));
                    acc10 = _mm512_fmadd_ps(v, b0, acc10);
                    acc11 = _mm512_fmadd_ps(v, b1, acc11);
                    let v = _mm512_set1_ps(*a2.add(kk));
                    acc20 = _mm512_fmadd_ps(v, b0, acc20);
                    acc21 = _mm512_fmadd_ps(v, b1, acc21);
                    let v = _mm512_set1_ps(*a3.add(kk));
                    acc30 = _mm512_fmadd_ps(v, b0, acc30);
                    acc31 = _mm512_fmadd_ps(v, b1, acc31);
                }
                _mm512_storeu_ps(c0.add(j), acc00);
                _mm512_storeu_ps(c0.add(j + 16), acc01);
                _mm512_storeu_ps(c1.add(j), acc10);
                _mm512_storeu_ps(c1.add(j + 16), acc11);
                _mm512_storeu_ps(c2.add(j), acc20);
                _mm512_storeu_ps(c2.add(j + 16), acc21);
                _mm512_storeu_ps(c3.add(j), acc30);
                _mm512_storeu_ps(c3.add(j + 16), acc31);
                j += 32;
            }
            if j < n {
                avx2::matmul_acc_f32_row_cols(k, n, j, a0, bp, c0);
                avx2::matmul_acc_f32_row_cols(k, n, j, a1, bp, c1);
                avx2::matmul_acc_f32_row_cols(k, n, j, a2, bp, c2);
                avx2::matmul_acc_f32_row_cols(k, n, j, a3, bp, c3);
            }
            i += 4;
        }
        for i in i..m {
            let arow = a.as_ptr().add(i * k);
            let crow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            while j + 32 <= n {
                let mut acc0 = _mm512_loadu_ps(crow.add(j));
                let mut acc1 = _mm512_loadu_ps(crow.add(j + 16));
                for kk in 0..k {
                    let va = _mm512_set1_ps(*arow.add(kk));
                    let brow = bp.add(kk * n + j);
                    acc0 = _mm512_fmadd_ps(va, _mm512_loadu_ps(brow), acc0);
                    acc1 = _mm512_fmadd_ps(va, _mm512_loadu_ps(brow.add(16)), acc1);
                }
                _mm512_storeu_ps(crow.add(j), acc0);
                _mm512_storeu_ps(crow.add(j + 16), acc1);
                j += 32;
            }
            if j < n {
                avx2::matmul_acc_f32_row_cols(k, n, j, arow, bp, crow);
            }
        }
    }

    /// 16-lane f32 exp — the same clamp, two-step Cody–Waite reduction,
    /// degree-5 Horner, and exponent reassembly as the AVX2
    /// [`vexp_f32`](super::avx2), lane for lane.
    #[inline]
    #[target_feature(enable = "avx512f,avx2,fma")]
    unsafe fn vexp_f32(x: __m512) -> __m512 {
        let x = _mm512_max_ps(_mm512_min_ps(x, _mm512_set1_ps(88.376_26)), _mm512_set1_ps(-87.0));
        let n = _mm512_roundscale_ps::<0x09>(_mm512_fmadd_ps(
            x,
            _mm512_set1_ps(std::f32::consts::LOG2_E),
            _mm512_set1_ps(0.5),
        ));
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(0.693_359_4), x);
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(-2.121_944_4e-4), r);
        let mut p = _mm512_set1_ps(1.987_569_1e-4);
        for &coef in &[1.398_2e-3f32, 8.333_452e-3, 4.166_579_6e-2, 1.666_666_5e-1, 5.000_000_2e-1]
        {
            p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(coef));
        }
        let r2 = _mm512_mul_ps(r, r);
        let y = _mm512_add_ps(_mm512_fmadd_ps(p, r2, r), _mm512_set1_ps(1.0));
        let bits = _mm512_slli_epi32::<23>(_mm512_add_epi32(
            _mm512_cvtps_epi32(n),
            _mm512_set1_epi32(127),
        ));
        _mm512_mul_ps(y, _mm512_castsi512_ps(bits))
    }

    /// 16-lane `a / d` as `a · rcp(d)`: `rcp14` seed refined by one Newton
    /// step (`r₁ = r₀·(2 − d·r₀)`), good to ~2 ulp of the exact quotient.
    /// `vdivps` on a zmm monopolizes the divider for ~10 cycles and each
    /// gate evaluation needs five of them; the refinement runs on the FMA
    /// ports instead and pipelines with the surrounding polynomial work.
    #[inline]
    #[target_feature(enable = "avx512f,avx2,fma")]
    unsafe fn vrecip_mul_f32(a: __m512, d: __m512) -> __m512 {
        let r0 = _mm512_rcp14_ps(d);
        let r = _mm512_mul_ps(r0, _mm512_fnmadd_ps(d, r0, _mm512_set1_ps(2.0)));
        _mm512_mul_ps(a, r)
    }

    /// 16-lane f32 `1 / (1 + e^{-x})`.
    #[inline]
    #[target_feature(enable = "avx512f,avx2,fma")]
    unsafe fn vsigmoid_f32(x: __m512) -> __m512 {
        let one = _mm512_set1_ps(1.0);
        let neg = _mm512_castsi512_ps(_mm512_xor_epi32(
            _mm512_castps_si512(x),
            _mm512_set1_epi32(i32::MIN),
        ));
        vrecip_mul_f32(one, _mm512_add_ps(one, vexp_f32(neg)))
    }

    /// 16-lane f32 `tanh` via `(e^{2x} - 1) / (e^{2x} + 1)`.
    #[inline]
    #[target_feature(enable = "avx512f,avx2,fma")]
    unsafe fn vtanh_f32(x: __m512) -> __m512 {
        let one = _mm512_set1_ps(1.0);
        let e = vexp_f32(_mm512_mul_ps(_mm512_set1_ps(2.0), x));
        vrecip_mul_f32(_mm512_sub_ps(e, one), _mm512_add_ps(e, one))
    }

    /// f32 LSTM gate inference, 16 units per iteration; the `hidden % 16`
    /// remainder runs the AVX2 kernel from where this loop stopped.
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn lstm_gates_infer_f32(hidden: usize, z: &[f32], c: &mut [f32], h: &mut [f32]) {
        let zp = z.as_ptr();
        let cp = c.as_mut_ptr();
        let hp = h.as_mut_ptr();
        let mut k = 0;
        while k + 16 <= hidden {
            let iv = vsigmoid_f32(_mm512_loadu_ps(zp.add(k)));
            let fv = vsigmoid_f32(_mm512_loadu_ps(zp.add(hidden + k)));
            let gv = vtanh_f32(_mm512_loadu_ps(zp.add(2 * hidden + k)));
            let ov = vsigmoid_f32(_mm512_loadu_ps(zp.add(3 * hidden + k)));
            let cv = _mm512_loadu_ps(cp.add(k));
            let c_new = _mm512_fmadd_ps(fv, cv, _mm512_mul_ps(iv, gv));
            let tc = vtanh_f32(c_new);
            _mm512_storeu_ps(cp.add(k), c_new);
            _mm512_storeu_ps(hp.add(k), _mm512_mul_ps(ov, tc));
            k += 16;
        }
        if k < hidden {
            avx2::lstm_gates_infer_f32_from(k, hidden, z, c, h);
        }
    }

    /// Batched [`lstm_gates_infer_f32`]: the row loop lives *inside* one
    /// `target_feature` function so the per-row kernel inlines and the
    /// out-of-order core overlaps the exp/tanh latency chains of
    /// *independent rows*. A single row is latency-bound on those chains
    /// (the five activations of one lane group form one dependence tree);
    /// with the rows visible in one instruction stream the backend runs at
    /// throughput instead. Arithmetic per row is exactly the single-row
    /// kernel's, so batched rows stay bitwise equal to one-at-a-time calls.
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn lstm_gates_infer_batch_f32(
        n: usize,
        hidden: usize,
        z: &[f32],
        c: &mut [f32],
        h: &mut [f32],
    ) {
        let gates = 4 * hidden;
        for r in 0..n {
            lstm_gates_infer_f32(
                hidden,
                &z[r * gates..(r + 1) * gates],
                &mut c[r * hidden..(r + 1) * hidden],
                &mut h[r * hidden..(r + 1) * hidden],
            );
        }
    }
}

/// Dispatch one method body: AVX2 when available, scalar otherwise.
macro_rules! simd_or_scalar {
    ($avx:expr, $fallback:expr) => {{
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            // SAFETY: `simd_available()` checked avx2 + fma at runtime.
            unsafe { $avx };
            return;
        }
        $fallback
    }};
}

impl Kernels for SimdKernels {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn matmul_acc(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        simd_or_scalar!(
            avx2::matmul_acc(m, k, n, a, b, out),
            scalar::matmul_acc(m, k, n, a, b, out)
        );
    }

    fn matmul_nt_acc(&self, m: usize, d: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        simd_or_scalar!(
            avx2::matmul_nt_acc(m, d, n, a, b, out),
            scalar::matmul_nt_acc(m, d, n, a, b, out)
        );
    }

    fn matmul_tn_acc(&self, k: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        // The k-outer rank-1 update is a row of fused axpys; LLVM's
        // autovectorization of the (FMA-dispatched) scalar body beats the
        // hand-blocked intrinsic version, and both are bit-identical, so the
        // SIMD backend uses the scalar body outright.
        scalar::matmul_tn_acc(k, m, n, a, b, out);
    }

    fn add_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        simd_or_scalar!(avx2::add_into(a, b, out), scalar::add_into(a, b, out));
    }

    fn sub_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        simd_or_scalar!(avx2::sub_into(a, b, out), scalar::sub_into(a, b, out));
    }

    fn mul_into(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        simd_or_scalar!(avx2::mul_into(a, b, out), scalar::mul_into(a, b, out));
    }

    fn add_assign(&self, dst: &mut [f64], src: &[f64]) {
        simd_or_scalar!(avx2::add_assign(dst, src), scalar::add_assign(dst, src));
    }

    fn mul_assign(&self, dst: &mut [f64], src: &[f64]) {
        simd_or_scalar!(avx2::mul_assign(dst, src), scalar::mul_assign(dst, src));
    }

    fn scale_assign(&self, dst: &mut [f64], c: f64) {
        simd_or_scalar!(avx2::scale_assign(dst, c), scalar::scale_assign(dst, c));
    }

    fn axpy(&self, dst: &mut [f64], c: f64, src: &[f64]) {
        simd_or_scalar!(avx2::axpy(dst, c, src), scalar::axpy(dst, c, src));
    }

    fn add_prod(&self, dst: &mut [f64], x: &[f64], y: &[f64]) {
        simd_or_scalar!(avx2::add_prod(dst, x, y), scalar::add_prod(dst, x, y));
    }

    fn adam_moments(&self, m: &mut [f64], v: &mut [f64], g: &[f64], beta1: f64, beta2: f64) {
        simd_or_scalar!(
            avx2::adam_moments(m, v, g, beta1, beta2),
            scalar::adam_moments(m, v, g, beta1, beta2)
        );
    }

    fn adam_update(
        &self,
        p: &mut [f64],
        m: &[f64],
        v: &[f64],
        lr: f64,
        bc1: f64,
        bc2: f64,
        eps: f64,
    ) {
        simd_or_scalar!(
            avx2::adam_update(p, m, v, lr, bc1, bc2, eps),
            scalar::adam_update(p, m, v, lr, bc1, bc2, eps)
        );
    }

    fn add_row_assign(&self, n: usize, d: usize, dst: &mut [f64], row: &[f64]) {
        simd_or_scalar!(
            avx2::add_row_assign(n, d, dst, row),
            scalar::add_row_assign(n, d, dst, row)
        );
    }

    fn add_rows_acc(&self, n: usize, d: usize, rows: &[f64], acc: &mut [f64]) {
        simd_or_scalar!(avx2::add_rows_acc(n, d, rows, acc), scalar::add_rows_acc(n, d, rows, acc));
    }

    fn sigmoid_inplace(&self, xs: &mut [f64]) {
        simd_or_scalar!(avx2::sigmoid_inplace(xs), scalar::sigmoid_inplace(xs));
    }

    fn tanh_inplace(&self, xs: &mut [f64]) {
        simd_or_scalar!(avx2::tanh_inplace(xs), scalar::tanh_inplace(xs));
    }

    fn lstm_gates(
        &self,
        n: usize,
        hidden: usize,
        z: &[f64],
        c_old: &[f64],
        saved: &mut [f64],
        out: &mut [f64],
    ) {
        simd_or_scalar!(
            avx2::lstm_gates(n, hidden, z, c_old, saved, out),
            scalar::lstm_gates(n, hidden, z, c_old, saved, out)
        );
    }

    fn lstm_gates_backward(
        &self,
        n: usize,
        hidden: usize,
        saved: &[f64],
        g: &[f64],
        c_old: &[f64],
        dz: &mut [f64],
        dc_old: &mut [f64],
    ) {
        simd_or_scalar!(
            avx2::lstm_gates_backward(n, hidden, saved, g, c_old, dz, dc_old),
            scalar::lstm_gates_backward(n, hidden, saved, g, c_old, dz, dc_old)
        );
    }

    fn lstm_gates_infer_f32(&self, hidden: usize, z: &[f32], c: &mut [f32], h: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if avx512_available() {
            // SAFETY: `avx512_available()` checked avx512f (and avx2 + fma
            // for the remainder helpers) at runtime.
            unsafe { avx512::lstm_gates_infer_f32(hidden, z, c, h) };
            return;
        }
        simd_or_scalar!(
            avx2::lstm_gates_infer_f32(hidden, z, c, h),
            scalar::lstm_gates_infer_f32(hidden, z, c, h)
        );
    }

    fn lstm_gates_infer_batch_f32(
        &self,
        n: usize,
        hidden: usize,
        z: &[f32],
        c: &mut [f32],
        h: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx512_available() {
            // SAFETY: as above.
            unsafe { avx512::lstm_gates_infer_batch_f32(n, hidden, z, c, h) };
            return;
        }
        for r in 0..n {
            self.lstm_gates_infer_f32(
                hidden,
                &z[r * 4 * hidden..(r + 1) * 4 * hidden],
                &mut c[r * hidden..(r + 1) * hidden],
                &mut h[r * hidden..(r + 1) * hidden],
            );
        }
    }

    fn matmul_acc_f32(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if avx512_available() {
            // SAFETY: as above.
            unsafe { avx512::matmul_acc_f32(m, k, n, a, b, out) };
            return;
        }
        simd_or_scalar!(
            avx2::matmul_acc_f32(m, k, n, a, b, out),
            scalar::matmul_acc_f32(m, k, n, a, b, out)
        );
    }

    fn add_assign_f32(&self, dst: &mut [f32], src: &[f32]) {
        simd_or_scalar!(avx2::add_assign_f32(dst, src), scalar::add_assign_f32(dst, src));
    }

    fn scale_assign_f32(&self, dst: &mut [f32], c: f32) {
        simd_or_scalar!(avx2::scale_assign_f32(dst, c), scalar::scale_assign_f32(dst, c));
    }
}

// ---------------------------------------------------------------------------
// Global backend selection.
// ---------------------------------------------------------------------------

static SCALAR: ScalarKernels = ScalarKernels;
static SIMD: SimdKernels = SimdKernels;

/// 0 = unresolved, 1 = scalar, 2 = simd.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn backend_code(backend: KernelBackend) -> u8 {
    match backend {
        KernelBackend::Scalar => 1,
        KernelBackend::Simd => 2,
        KernelBackend::Auto => {
            if simd_available() {
                2
            } else {
                1
            }
        }
    }
}

fn env_override() -> Option<KernelBackend> {
    match std::env::var("WSCCL_KERNELS").ok()?.to_ascii_lowercase().as_str() {
        "scalar" => Some(KernelBackend::Scalar),
        "simd" => Some(KernelBackend::Simd),
        "auto" => Some(KernelBackend::Auto),
        _ => None,
    }
}

fn publish_gauge(code: u8) {
    // 0 = scalar, 1 = simd; NaN until resolved. No-op while metrics are off.
    wsccl_obs::global().gauge("nn.kernel_backend").set(f64::from(code) - 1.0);
}

fn from_code(code: u8) -> &'static dyn Kernels {
    if code == 2 {
        &SIMD
    } else {
        &SCALAR
    }
}

/// Resolve the process-wide backend. The first resolution wins; later calls
/// with a different request are no-ops (use [`force`] to override). The
/// `WSCCL_KERNELS` env var takes precedence over the requested backend.
/// Returns the *active* backend name.
pub fn select(requested: KernelBackend) -> &'static str {
    let code = backend_code(env_override().unwrap_or(requested));
    if ACTIVE.compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
        publish_gauge(code);
    }
    active_name()
}

/// Unconditionally swap the active backend — for tests and benches that need
/// both in one process. Sound for f64 work because the backends are
/// bit-identical; f32 inference results may legitimately differ within the
/// documented error budget.
pub fn force(backend: KernelBackend) -> &'static str {
    let code = backend_code(backend);
    ACTIVE.store(code, Ordering::Relaxed);
    publish_gauge(code);
    from_code(code).name()
}

/// The active kernel set, resolving `Auto` (plus env override) on first use.
pub fn active() -> &'static dyn Kernels {
    let code = ACTIVE.load(Ordering::Relaxed);
    if code == 0 {
        select(KernelBackend::Auto);
        return from_code(ACTIVE.load(Ordering::Relaxed));
    }
    from_code(code)
}

/// Name of the active backend (`"scalar"` or `"simd"`).
pub fn active_name() -> &'static str {
    active().name()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn simd_matmuls_match_scalar_bitwise() {
        let (m, k, n) = (3, 5, 7); // n % 4 != 0 exercises the tails
        let a = seq(m * k, |i| (i as f64 * 0.37 - 1.0).sin());
        let b = seq(k * n, |i| (i as f64 * 0.11 + 0.5).cos());
        let mut s_out = seq(m * n, |i| i as f64 * 0.01);
        let mut v_out = s_out.clone();
        ScalarKernels.matmul_acc(m, k, n, &a, &b, &mut s_out);
        SimdKernels.matmul_acc(m, k, n, &a, &b, &mut v_out);
        assert_eq!(s_out, v_out, "matmul_acc");

        let bt = seq(n * k, |i| (i as f64 * 0.23).tan().atan());
        let mut s_out = seq(m * n, |i| i as f64 * 0.01);
        let mut v_out = s_out.clone();
        ScalarKernels.matmul_nt_acc(m, k, n, &a, &bt, &mut s_out);
        SimdKernels.matmul_nt_acc(m, k, n, &a, &bt, &mut v_out);
        assert_eq!(s_out, v_out, "matmul_nt_acc");

        let at = seq(k * m, |i| (i as f64 * 0.71 - 2.0).sin());
        let mut s_out = seq(m * n, |i| i as f64 * 0.01);
        let mut v_out = s_out.clone();
        ScalarKernels.matmul_tn_acc(k, m, n, &at, &b, &mut s_out);
        SimdKernels.matmul_tn_acc(k, m, n, &at, &b, &mut v_out);
        assert_eq!(s_out, v_out, "matmul_tn_acc");
    }

    #[test]
    fn backend_resolution_latches_and_force_overrides() {
        // Whatever is currently latched, force() must flip deterministically.
        let prev = active_name();
        assert_eq!(force(KernelBackend::Scalar), "scalar");
        assert_eq!(active_name(), "scalar");
        assert_eq!(
            force(KernelBackend::Simd),
            "simd",
            "Simd force always names simd (portable fallback inside)"
        );
        // Restore whatever the suite was using.
        let restore = if prev == "simd" { KernelBackend::Simd } else { KernelBackend::Scalar };
        force(restore);
    }

    #[test]
    fn auto_matches_feature_detection() {
        let expect = if simd_available() { 2 } else { 1 };
        assert_eq!(backend_code(KernelBackend::Auto), expect);
    }

    #[test]
    fn vmath_exp_matches_libm_to_a_few_ulp() {
        for i in 0..20_000 {
            // Sweep the activation-relevant range densely plus the far tails.
            let x = -30.0 + i as f64 * 3e-3;
            let got = vmath::exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-14, "exp({x}): got {got}, libm {want}, rel {rel}");
        }
        for x in [-800.0, -708.0, 708.0, 750.0, 0.0, -0.0] {
            assert!(vmath::exp(x).is_finite(), "exp({x}) must stay finite under the clamp");
        }
        assert_eq!(vmath::exp(0.0), 1.0);
    }

    #[test]
    fn vmath_sigmoid_tanh_match_libm() {
        for i in 0..20_000 {
            let x = -25.0 + i as f64 * 2.5e-3;
            let sg = vmath::sigmoid(x);
            let sw = 1.0 / (1.0 + (-x).exp());
            assert!((sg - sw).abs() <= 1e-14 * sw.max(1e-300), "sigmoid({x}): got {sg}, libm {sw}");
            let tg = vmath::tanh(x);
            let tw = x.tanh();
            // Relative accuracy degrades to the absolute floor below |x|≈1e-8
            // (documented); everywhere else a few ulp.
            let tol = (1e-13 * tw.abs()).max(4e-16);
            assert!((tg - tw).abs() <= tol, "tanh({x}): got {tg}, libm {tw}");
        }
        assert_eq!(vmath::tanh(30.0), 1.0, "saturates exactly to 1");
        assert_eq!(vmath::tanh(-30.0), -1.0, "saturates exactly to -1");
    }

    #[test]
    fn simd_activations_match_scalar_bitwise() {
        // Lengths exercise the 4-lane body and every remainder tail.
        for len in [1usize, 3, 4, 7, 16, 21] {
            let xs = seq(len, |i| (i as f64 * 0.61 - 3.0).sin() * 6.0);
            let cases: [(&str, fn(&dyn Kernels, &mut [f64])); 3] = [
                ("sigmoid", |k, v| k.sigmoid_inplace(v)),
                ("tanh", |k, v| k.tanh_inplace(v)),
                ("relu", |k, v| k.relu_inplace(v)),
            ];
            for (name, f) in cases {
                let mut s = xs.clone();
                let mut v = xs.clone();
                f(&ScalarKernels, &mut s);
                f(&SimdKernels, &mut v);
                assert_eq!(s, v, "{name} len {len}");
            }
        }
    }

    #[test]
    fn simd_lstm_gates_match_scalar_bitwise() {
        for hidden in [1usize, 4, 5, 11, 16] {
            let n = 2;
            let z = seq(n * 4 * hidden, |i| (i as f64 * 0.23 - 2.0).cos() * 3.0);
            let c_old = seq(n * hidden, |i| (i as f64 * 0.71).sin());
            let mut s_saved = vec![0.0; n * 5 * hidden];
            let mut s_out = vec![0.0; n * 2 * hidden];
            let mut v_saved = s_saved.clone();
            let mut v_out = s_out.clone();
            ScalarKernels.lstm_gates(n, hidden, &z, &c_old, &mut s_saved, &mut s_out);
            SimdKernels.lstm_gates(n, hidden, &z, &c_old, &mut v_saved, &mut v_out);
            assert_eq!(s_saved, v_saved, "saved gates, hidden {hidden}");
            assert_eq!(s_out, v_out, "out, hidden {hidden}");
        }
    }

    #[test]
    fn simd_adam_kernels_match_scalar_bitwise() {
        for len in [1usize, 3, 4, 7, 16, 33] {
            let g = seq(len, |i| (i as f64 * 0.37 - 1.0).sin() * 2.0);
            let mut sm = seq(len, |i| (i as f64 * 0.11).cos() * 0.1);
            let mut sv = seq(len, |i| (i as f64 * 0.07).sin().abs() * 0.01);
            let mut sp = seq(len, |i| i as f64 * 0.05 - 0.8);
            let (mut vm, mut vv, mut vp) = (sm.clone(), sv.clone(), sp.clone());
            ScalarKernels.adam_moments(&mut sm, &mut sv, &g, 0.9, 0.999);
            SimdKernels.adam_moments(&mut vm, &mut vv, &g, 0.9, 0.999);
            assert_eq!(sm, vm, "adam m, len {len}");
            assert_eq!(sv, vv, "adam v, len {len}");
            ScalarKernels.adam_update(&mut sp, &sm, &sv, 3e-3, 0.1, 0.001, 1e-8);
            SimdKernels.adam_update(&mut vp, &vm, &vv, 3e-3, 0.1, 0.001, 1e-8);
            assert_eq!(sp, vp, "adam p, len {len}");
        }
    }
}
