//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform init: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    uniform(rng, rows, cols, -a, a)
}

/// Uniform init in `[lo, hi)`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, lo: f64, hi: f64) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Small-scale normal init via Box–Muller (std-dev `std`).
pub fn normal(rng: &mut StdRng, rows: usize, cols: usize, std: f64) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| {
            let u1: f64 = rng.random_range(f64::EPSILON..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(&mut rng, 10, 20);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&mut rng, 100, 100, 0.5);
        let mean = t.sum() / t.len() as f64;
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / t.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(3), 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(3), 4, 4);
        assert_eq!(a, b);
    }
}
