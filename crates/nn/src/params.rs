//! Shared trainable parameter storage.
//!
//! Parameter *values* and *gradients* live in separate stores. [`Parameters`]
//! holds the values and is read-only during a forward/backward pass, so any
//! number of tapes (one per data-parallel shard, or concurrent inference
//! calls) can share `&Parameters` without locking. Each [`crate::Graph`]
//! accumulates into its own private [`GradStore`]; shard stores are reduced
//! with [`GradStore::accumulate`] in a fixed order, and an optimizer consumes
//! the reduced store. This mirrors the PyTorch `nn.Parameter` / optimizer
//! split the paper's implementation uses, extended for data parallelism.

use serde::{Deserialize, Serialize};

use crate::pool::TensorPool;
use crate::tensor::Tensor;

/// Handle to one parameter tensor inside a [`Parameters`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index, stable for the lifetime of the store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A flat store of named parameter tensors (values only — see [`GradStore`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Parameters {
    values: Vec<Tensor>,
    names: Vec<String>,
}

impl Parameters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter with an initial value.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.values.len()).map(ParamId)
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Copy all values from `other` (shapes must match; used for expert cloning
    /// and for initializing a supervised model from pre-trained WSCCL weights).
    pub fn copy_values_from(&mut self, other: &Parameters) {
        assert_eq!(self.values.len(), other.values.len(), "parameter count mismatch");
        for (dst, src) in self.values.iter_mut().zip(&other.values) {
            assert_eq!(dst.shape(), src.shape(), "parameter shape mismatch");
            *dst = src.clone();
        }
    }
}

/// Per-tape gradient accumulator, indexed by [`ParamId`].
///
/// Slots are allocated lazily: a parameter that never receives gradient costs
/// nothing (important for the frozen embedding tables, which dominate the
/// parameter count). A missing slot is semantically a zero gradient.
#[derive(Clone, Debug, Default)]
pub struct GradStore {
    grads: Vec<Option<Tensor>>,
}

impl GradStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Gradient for `id`, if any was accumulated (`None` ⇔ zero).
    pub fn grad(&self, id: ParamId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Mutable gradient slot for `id`, allocated as zeros on first touch.
    pub fn entry(&mut self, id: ParamId, rows: usize, cols: usize) -> &mut Tensor {
        if self.grads.len() <= id.0 {
            self.grads.resize(id.0 + 1, None);
        }
        let slot = &mut self.grads[id.0];
        let g = slot.get_or_insert_with(|| Tensor::zeros(rows, cols));
        debug_assert_eq!(g.shape(), (rows, cols), "gradient shape mismatch");
        g
    }

    /// Like [`GradStore::entry`], but the lazy zero-buffer comes from `pool`
    /// when one is supplied. Pool handouts are zeroed, so semantics are
    /// identical to `entry`.
    pub fn entry_pooled(
        &mut self,
        id: ParamId,
        rows: usize,
        cols: usize,
        pool: Option<&mut TensorPool>,
    ) -> &mut Tensor {
        if self.grads.len() <= id.0 {
            self.grads.resize(id.0 + 1, None);
        }
        let slot = &mut self.grads[id.0];
        let g = slot.get_or_insert_with(|| match pool {
            Some(p) => p.take(rows, cols),
            None => Tensor::zeros(rows, cols),
        });
        debug_assert_eq!(g.shape(), (rows, cols), "gradient shape mismatch");
        g
    }

    /// Return every allocated gradient buffer to `pool`, leaving the store
    /// empty. The end of a pooled training step for shard grad stores.
    pub fn release_into(mut self, pool: &mut TensorPool) {
        for g in self.grads.drain(..).flatten() {
            pool.put(g);
        }
    }

    /// Like [`GradStore::accumulate`], but drains `other`, recycling its
    /// buffers: slots missing from `self` take the buffer over directly, and
    /// already-present slots are summed with `other`'s buffer returned to the
    /// pool.
    pub fn accumulate_pooled(&mut self, other: GradStore, pool: &mut TensorPool) {
        for (i, g) in other.grads.into_iter().enumerate() {
            let Some(g) = g else { continue };
            if self.grads.len() <= i {
                self.grads.resize(i + 1, None);
            }
            match &mut self.grads[i] {
                Some(dst) => {
                    dst.add_assign(&g);
                    pool.put(g);
                }
                slot @ None => *slot = Some(g),
            }
        }
    }

    /// Iterate over all allocated (non-zero-capable) gradient slots.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> + '_ {
        self.grads.iter().enumerate().filter_map(|(i, g)| g.as_ref().map(|t| (ParamId(i), t)))
    }

    /// Number of allocated gradient slots.
    pub fn num_allocated(&self) -> usize {
        self.grads.iter().filter(|g| g.is_some()).count()
    }

    /// Drop all accumulated gradients.
    pub fn clear(&mut self) {
        self.grads.clear();
    }

    /// Add another store's gradients into this one (shard reduction).
    ///
    /// Reduction order is whatever order the caller invokes this in; for
    /// deterministic training, accumulate shard stores in ascending shard
    /// index.
    pub fn accumulate(&mut self, other: &GradStore) {
        for (id, g) in other.iter() {
            self.entry(id, g.rows(), g.cols()).add_assign(g);
        }
    }

    /// Multiply every accumulated gradient by `factor` (e.g. `1/K` after
    /// reducing `K` shard stores whose losses should be averaged).
    pub fn scale(&mut self, factor: f64) {
        let kernels = crate::kernels::active();
        for g in self.grads.iter_mut().flatten() {
            kernels.scale_assign(g.data_mut(), factor);
        }
    }

    /// Global L2 norm over all accumulated gradients.
    ///
    /// Each tensor's sum of squares uses the backend-shared [`Kernels::dot`]
    /// reduction, so the value is identical under scalar and SIMD backends.
    pub fn norm(&self) -> f64 {
        let kernels = crate::kernels::active();
        self.iter().map(|(_, g)| kernels.dot(g.data(), g.data())).sum::<f64>().sqrt()
    }

    /// Scale all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_norm(&mut self, max_norm: f64) {
        let norm = self.norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut p = Parameters::new();
        let a = p.register("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = p.register("b", Tensor::scalar(3.0));
        assert_eq!(p.len(), 2);
        assert_eq!(p.value(a).data(), &[1.0, 2.0]);
        assert_eq!(p.value(b).item(), 3.0);
        assert_eq!(p.name(a), "w");
        assert_eq!(p.num_scalars(), 3);
    }

    #[test]
    fn grad_clip_scales_down_only() {
        let mut p = Parameters::new();
        let a = p.register("w", Tensor::zeros(1, 2));
        let mut g = GradStore::new();
        *g.entry(a, 1, 2) = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        g.clip_norm(10.0);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0, 4.0]);
        g.clip_norm(1.0);
        assert!((g.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grads_allocate_lazily() {
        let mut p = Parameters::new();
        let a = p.register("w", Tensor::zeros(4, 4));
        let b = p.register("frozen", Tensor::zeros(1000, 64));
        let mut g = GradStore::new();
        g.entry(a, 4, 4).data_mut()[0] = 1.0;
        assert_eq!(g.num_allocated(), 1, "untouched params must not allocate");
        assert!(g.grad(b).is_none());
        assert_eq!(g.grad(a).unwrap().get(0, 0), 1.0);
    }

    #[test]
    fn accumulate_sums_sparse_stores() {
        let mut p = Parameters::new();
        let a = p.register("a", Tensor::zeros(1, 2));
        let b = p.register("b", Tensor::zeros(1, 1));
        let mut g1 = GradStore::new();
        *g1.entry(a, 1, 2) = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let mut g2 = GradStore::new();
        *g2.entry(a, 1, 2) = Tensor::from_vec(1, 2, vec![10.0, 20.0]);
        *g2.entry(b, 1, 1) = Tensor::scalar(5.0);
        g1.accumulate(&g2);
        assert_eq!(g1.grad(a).unwrap().data(), &[11.0, 22.0]);
        assert_eq!(g1.grad(b).unwrap().item(), 5.0);
    }

    #[test]
    fn copy_values_roundtrip() {
        let mut a = Parameters::new();
        let ida = a.register("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let mut b = Parameters::new();
        b.register("w", Tensor::zeros(1, 2));
        b.copy_values_from(&a);
        assert_eq!(b.value(ida).data(), &[1.0, 2.0]);
    }
}
