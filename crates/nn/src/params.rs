//! Shared trainable parameter storage.
//!
//! Parameters live outside the per-step autodiff [`crate::Graph`]: each forward
//! pass references them by [`ParamId`], `backward` accumulates into the matching
//! gradient slot, and an optimizer applies the update. This mirrors the
//! PyTorch `nn.Parameter` / optimizer split the paper's implementation uses.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Handle to one parameter tensor inside a [`Parameters`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index, stable for the lifetime of the store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A flat store of named parameter tensors and their accumulated gradients.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Parameters {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl Parameters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter with an initial value.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.values.len()).map(ParamId)
    }

    /// Reset every gradient to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Global L2 norm of all gradients (used for clipping diagnostics).
    pub fn grad_norm(&self) -> f64 {
        self.grads.iter().map(|g| g.data().iter().map(|v| v * v).sum::<f64>()).sum::<f64>().sqrt()
    }

    /// Scale all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.data_mut().iter_mut().for_each(|v| *v *= s);
            }
        }
    }

    /// Copy all values from `other` (shapes must match; used for expert cloning
    /// and for initializing a supervised model from pre-trained WSCCL weights).
    pub fn copy_values_from(&mut self, other: &Parameters) {
        assert_eq!(self.values.len(), other.values.len(), "parameter count mismatch");
        for (dst, src) in self.values.iter_mut().zip(&other.values) {
            assert_eq!(dst.shape(), src.shape(), "parameter shape mismatch");
            *dst = src.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut p = Parameters::new();
        let a = p.register("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = p.register("b", Tensor::scalar(3.0));
        assert_eq!(p.len(), 2);
        assert_eq!(p.value(a).data(), &[1.0, 2.0]);
        assert_eq!(p.value(b).item(), 3.0);
        assert_eq!(p.name(a), "w");
        assert_eq!(p.num_scalars(), 3);
    }

    #[test]
    fn grad_clip_scales_down_only() {
        let mut p = Parameters::new();
        let a = p.register("w", Tensor::zeros(1, 2));
        *p.grad_mut(a) = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        p.clip_grad_norm(10.0);
        assert_eq!(p.grad(a).data(), &[3.0, 4.0]);
        p.clip_grad_norm(1.0);
        let n = p.grad_norm();
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn copy_values_roundtrip() {
        let mut a = Parameters::new();
        let ida = a.register("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let mut b = Parameters::new();
        b.register("w", Tensor::zeros(1, 2));
        b.copy_values_from(&a);
        assert_eq!(b.value(ida).data(), &[1.0, 2.0]);
    }
}
