//! Fully-connected layer `y = x·W + b`.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::graph::{Activation, Graph, NodeId};
use crate::init;
use crate::params::{ParamId, Parameters};
use crate::tensor::Tensor;

/// Dense affine layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a layer with bias, Xavier-initialized.
    pub fn new(
        params: &mut Parameters,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = params.register(format!("{name}.w"), init::xavier_uniform(rng, in_dim, out_dim));
        let b = params.register(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Self { w, b: Some(b), in_dim, out_dim }
    }

    /// Create a layer without bias.
    pub fn new_no_bias(
        params: &mut Parameters,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = params.register(format!("{name}.w"), init::xavier_uniform(rng, in_dim, out_dim));
        Self { w, b: None, in_dim, out_dim }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `x` is `(n, in_dim)`; returns `(n, out_dim)`.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "Linear: input cols {} != in_dim {}",
            g.value(x).cols(),
            self.in_dim
        );
        g.affine(x, self.w, self.b, Activation::Identity)
    }

    /// Fused `act(x·W + b)` — one tape node instead of four.
    pub fn forward_act(&self, g: &mut Graph<'_>, x: NodeId, act: Activation) -> NodeId {
        assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "Linear: input cols {} != in_dim {}",
            g.value(x).cols(),
            self.in_dim
        );
        g.affine(x, self.w, self.b, act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut params, &mut rng, "l", 3, 2);
        // Force known weights.
        *params.value_mut(ParamId(0)) = Tensor::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        *params.value_mut(ParamId(1)) = Tensor::row(vec![10.0, 20.0]);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (2, 2));
        assert_eq!(g.value(y).row_slice(0), &[1. + 3. + 10., 2. + 3. + 20.]);
    }

    #[test]
    #[should_panic(expected = "input cols")]
    fn forward_wrong_width_panics() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut params, &mut rng, "l", 3, 2);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::zeros(1, 4));
        lin.forward(&mut g, x);
    }
}
