//! Gated recurrent unit (used by the PathRank baseline, which the paper
//! describes as GRU-based).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::params::{ParamId, Parameters};
use crate::tensor::Tensor;

/// Single-layer GRU with fused gate weights (order: reset, update, candidate).
///
/// Uses the formulation `n = tanh(x·Wxn + (r ⊙ h)·Whn + bn)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Gru {
    wx: ParamId, // (in_dim, 3h)
    wh: ParamId, // (h, 3h)
    b: ParamId,  // (1, 3h)
    in_dim: usize,
    hidden: usize,
}

impl Gru {
    pub fn new(
        params: &mut Parameters,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx =
            params.register(format!("{name}.wx"), init::xavier_uniform(rng, in_dim, 3 * hidden));
        let wh =
            params.register(format!("{name}.wh"), init::xavier_uniform(rng, hidden, 3 * hidden));
        let b = params.register(format!("{name}.b"), Tensor::zeros(1, 3 * hidden));
        Self { wx, wh, b, in_dim, hidden }
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn step(&self, g: &mut Graph<'_>, x: NodeId, h: NodeId) -> NodeId {
        let hsz = self.hidden;
        let wx = g.param(self.wx);
        let wh = g.param(self.wh);
        let b = g.param(self.b);
        let xw0 = g.matmul(x, wx);
        let xw = g.add_row(xw0, b);
        let hw = g.matmul(h, wh);

        let xr = g.slice_cols(xw, 0, hsz);
        let xz = g.slice_cols(xw, hsz, 2 * hsz);
        let xn = g.slice_cols(xw, 2 * hsz, 3 * hsz);
        let hr = g.slice_cols(hw, 0, hsz);
        let hz = g.slice_cols(hw, hsz, 2 * hsz);
        let hn = g.slice_cols(hw, 2 * hsz, 3 * hsz);

        let r_pre = g.add(xr, hr);
        let r = g.sigmoid(r_pre);
        let z_pre = g.add(xz, hz);
        let z = g.sigmoid(z_pre);
        let rhn = g.mul(r, hn);
        let n_pre = g.add(xn, rhn);
        let n = g.tanh(n_pre);

        // h' = (1 - z) ⊙ n + z ⊙ h = n - z⊙n + z⊙h
        let zn = g.mul(z, n);
        let zh = g.mul(z, h);
        let nm = g.sub(n, zn);
        g.add(nm, zh)
    }

    /// Run over a sequence of `(n, in_dim)` nodes; returns hidden state per step.
    pub fn forward(&self, g: &mut Graph<'_>, inputs: &[NodeId]) -> Vec<NodeId> {
        assert!(!inputs.is_empty(), "Gru over empty sequence");
        let n = g.value(inputs[0]).rows();
        let mut h = g.input(Tensor::zeros(n, self.hidden));
        let mut out = Vec::with_capacity(inputs.len());
        for &x in inputs {
            h = self.step(g, x, h);
            out.push(h);
        }
        out
    }

    /// Run over a sequence and return the final hidden state.
    pub fn forward_last(&self, g: &mut Graph<'_>, inputs: &[NodeId]) -> NodeId {
        *self.forward(g, inputs).last().expect("non-empty sequence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_finiteness() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(&mut params, &mut rng, "gru", 3, 4);
        let mut g = Graph::new(&params);
        let xs: Vec<NodeId> =
            (0..6).map(|t| g.input(Tensor::row(vec![t as f64, -1.0, 0.5]))).collect();
        let hs = gru.forward(&mut g, &xs);
        assert_eq!(hs.len(), 6);
        for h in hs {
            let v = g.value(h);
            assert_eq!(v.shape(), (1, 4));
            assert!(!v.has_non_finite());
            assert!(v.data().iter().all(|x| x.abs() <= 1.0));
        }
    }

    #[test]
    fn gradient_reaches_all_params() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(2);
        let gru = Gru::new(&mut params, &mut rng, "gru", 2, 3);
        let mut g = Graph::new(&params);
        let xs: Vec<NodeId> = (0..3).map(|_| g.input(Tensor::row(vec![1.0, -0.5]))).collect();
        let h = gru.forward_last(&mut g, &xs);
        let loss = g.sum_all(h);
        g.backward(loss);
        let nonzero = params
            .ids()
            .filter(|&id| {
                g.grads().grad(id).is_some_and(|t| t.data().iter().any(|v| v.abs() > 0.0))
            })
            .count();
        assert_eq!(nonzero, params.len());
    }
}
