//! Single-head scaled dot-product self-attention.
//!
//! Used by the BERT-style baseline (the paper treats a path as a sentence) and
//! by HMTRL's route-semantics module. Kept to a single head: at reproduction
//! scale multi-head adds parameters without changing the result shapes.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};
use crate::layers::Linear;
use crate::params::Parameters;

/// One self-attention block: `softmax(QKᵀ/√d)·V` followed by a residual
/// projection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelfAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    out: Linear,
    dim: usize,
}

impl SelfAttention {
    pub fn new(params: &mut Parameters, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        Self {
            q: Linear::new_no_bias(params, rng, &format!("{name}.q"), dim, dim),
            k: Linear::new_no_bias(params, rng, &format!("{name}.k"), dim, dim),
            v: Linear::new_no_bias(params, rng, &format!("{name}.v"), dim, dim),
            out: Linear::new(params, rng, &format!("{name}.out"), dim, dim),
            dim,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `x` is `(seq_len, dim)`; returns `(seq_len, dim)` with a residual
    /// connection.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let q = self.q.forward(g, x);
        let k = self.k.forward(g, x);
        let v = self.v.forward(g, x);
        let scores = g.matmul_nt(q, k);
        let scaled = g.scale(scores, 1.0 / (self.dim as f64).sqrt());
        let attn = g.softmax_rows(scaled);
        let ctx = g.matmul(attn, v);
        let proj = self.out.forward(g, ctx);
        g.add(proj, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let attn = SelfAttention::new(&mut params, &mut rng, "a", 4);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::from_vec(5, 4, (0..20).map(|v| v as f64 * 0.1).collect()));
        let y = attn.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 4));
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(2);
        let attn = SelfAttention::new(&mut params, &mut rng, "a", 3);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::from_vec(4, 3, (0..12).map(|v| v as f64 * 0.2 - 1.0).collect()));
        let y = attn.forward(&mut g, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let nonzero = params
            .ids()
            .filter(|&id| {
                g.grads().grad(id).is_some_and(|t| t.data().iter().any(|v| v.abs() > 1e-12))
            })
            .count();
        // All weight matrices should get gradient; the output bias always does.
        assert!(nonzero >= 4, "only {nonzero} of {} params got gradient", params.len());
    }
}
