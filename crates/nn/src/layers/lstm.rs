//! Multi-layer LSTM over a sequence of row vectors (the paper's Eq. 7 encoder).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::params::{ParamId, Parameters};
use crate::tensor::Tensor;

/// One LSTM layer with fused gate weights (order: input, forget, cell, output).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct LstmLayer {
    wx: ParamId, // (in_dim, 4h)
    wh: ParamId, // (h, 4h)
    b: ParamId,  // (1, 4h)
    hidden: usize,
}

impl LstmLayer {
    fn new(
        params: &mut Parameters,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx =
            params.register(format!("{name}.wx"), init::xavier_uniform(rng, in_dim, 4 * hidden));
        let wh =
            params.register(format!("{name}.wh"), init::xavier_uniform(rng, hidden, 4 * hidden));
        // Forget-gate bias initialized to 1 (standard trick for gradient flow).
        let mut bias = Tensor::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0);
        }
        let b = params.register(format!("{name}.b"), bias);
        Self { wx, wh, b, hidden }
    }

    /// One step. `x` is `(n, in_dim)`, `h`/`c` are `(n, hidden)`.
    ///
    /// All four gates run as one fused [`Graph::lstm_cell`] node — the gate
    /// matmuls hit the pre-packed `[i|f|g|o]` weight blocks directly, and the
    /// backward is closed-form instead of 15 composed-op adjoints.
    fn step(&self, g: &mut Graph<'_>, x: NodeId, h: NodeId, c: NodeId) -> (NodeId, NodeId) {
        let hsz = self.hidden;
        let hc = g.lstm_cell(x, h, c, self.wx, self.wh, self.b, hsz);
        let h_new = g.slice_cols(hc, 0, hsz);
        let c_new = g.slice_cols(hc, hsz, 2 * hsz);
        (h_new, c_new)
    }
}

/// Stacked LSTM. The paper uses 2 layers with hidden size 128; dimensions are
/// configurable here.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    pub fn new(
        params: &mut Parameters,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
        num_layers: usize,
    ) -> Self {
        assert!(num_layers >= 1, "Lstm needs at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let d = if l == 0 { in_dim } else { hidden };
            layers.push(LstmLayer::new(params, rng, &format!("{name}.l{l}"), d, hidden));
        }
        Self { layers, in_dim, hidden }
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Per-layer `(wx, wh, b)` parameter ids, bottom layer first — lets an
    /// inference path freeze the trained weights without going through the
    /// tape (see `wsccl_nn::infer`).
    pub fn layer_params(&self) -> Vec<(ParamId, ParamId, ParamId)> {
        self.layers.iter().map(|l| (l.wx, l.wh, l.b)).collect()
    }

    /// Run the stack over a sequence of `(1, in_dim)` (or `(n, in_dim)`)
    /// timestep nodes; returns the top layer's hidden state per step.
    pub fn forward(&self, g: &mut Graph<'_>, inputs: &[NodeId]) -> Vec<NodeId> {
        assert!(!inputs.is_empty(), "Lstm over empty sequence");
        let n = g.value(inputs[0]).rows();
        let mut seq: Vec<NodeId> = inputs.to_vec();
        for layer in &self.layers {
            let mut h = g.input_zeros(n, self.hidden);
            let mut c = g.input_zeros(n, self.hidden);
            let mut out = Vec::with_capacity(seq.len());
            for &x in &seq {
                let (h_new, c_new) = layer.step(g, x, h, c);
                h = h_new;
                c = c_new;
                out.push(h);
            }
            seq = out;
        }
        seq
    }

    /// Run the stack and return only the final hidden state.
    pub fn forward_last(&self, g: &mut Graph<'_>, inputs: &[NodeId]) -> NodeId {
        *self.forward(g, inputs).last().expect("non-empty sequence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_shapes_match_sequence() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(&mut params, &mut rng, "lstm", 3, 5, 2);
        let mut g = Graph::new(&params);
        let xs: Vec<NodeId> =
            (0..4).map(|t| g.input(Tensor::row(vec![t as f64, 1.0, -1.0]))).collect();
        let hs = lstm.forward(&mut g, &xs);
        assert_eq!(hs.len(), 4);
        for h in &hs {
            assert_eq!(g.value(*h).shape(), (1, 5));
        }
    }

    #[test]
    fn outputs_are_bounded_and_finite() {
        // h = o ⊙ tanh(c) with o ∈ (0,1) ⇒ |h| < 1.
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lstm = Lstm::new(&mut params, &mut rng, "lstm", 2, 4, 1);
        let mut g = Graph::new(&params);
        let xs: Vec<NodeId> = (0..50).map(|_| g.input(Tensor::row(vec![100.0, -100.0]))).collect();
        let hs = lstm.forward(&mut g, &xs);
        let last = g.value(*hs.last().unwrap());
        assert!(!last.has_non_finite());
        assert!(last.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gradient_reaches_all_layers() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(&mut params, &mut rng, "lstm", 2, 3, 2);
        let mut g = Graph::new(&params);
        let xs: Vec<NodeId> = (0..3).map(|_| g.input(Tensor::row(vec![1.0, 2.0]))).collect();
        let h = lstm.forward_last(&mut g, &xs);
        let loss = g.sum_all(h);
        g.backward(loss);
        let nonzero = params
            .ids()
            .filter(|&id| {
                g.grads().grad(id).is_some_and(|t| t.data().iter().any(|v| v.abs() > 0.0))
            })
            .count();
        assert_eq!(nonzero, params.len(), "every LSTM parameter should receive gradient");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(&mut params, &mut rng, "lstm", 2, 3, 1);
        let mut g = Graph::new(&params);
        lstm.forward(&mut g, &[]);
    }
}
