//! Pre-norm Transformer encoder block: `x + Attn(LN(x))`, then
//! `x + FFN(LN(x))`. The paper notes (§IV-C) that its LSTM can be replaced by
//! "more advanced sequential models, e.g., Transformer"; this block backs
//! that option in `wsccl-core`.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};
use crate::layers::{Linear, SelfAttention};
use crate::params::Parameters;

/// One pre-norm Transformer block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransformerBlock {
    attn: SelfAttention,
    ff1: Linear,
    ff2: Linear,
    dim: usize,
}

impl TransformerBlock {
    /// `ff_mult` scales the feed-forward hidden width (canonically 4).
    pub fn new(
        params: &mut Parameters,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        ff_mult: usize,
    ) -> Self {
        Self {
            attn: SelfAttention::new(params, rng, &format!("{name}.attn"), dim),
            ff1: Linear::new(params, rng, &format!("{name}.ff1"), dim, dim * ff_mult),
            ff2: Linear::new(params, rng, &format!("{name}.ff2"), dim * ff_mult, dim),
            dim,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `x` is `(seq_len, dim)`; returns `(seq_len, dim)`.
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        // Attention sub-layer (SelfAttention carries its own residual).
        let normed = g.layer_norm_rows(x, 1e-5);
        let attended = self.attn.forward(g, normed);
        // Feed-forward sub-layer with residual.
        let normed2 = g.layer_norm_rows(attended, 1e-5);
        let h = self.ff1.forward(g, normed2);
        let h = g.relu(h);
        let h = self.ff2.forward(g, h);
        g.add(h, attended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape_and_stays_finite() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let block = TransformerBlock::new(&mut params, &mut rng, "t", 8, 2);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::from_vec(6, 8, (0..48).map(|v| v as f64 * 0.1 - 2.0).collect()));
        let y = block.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (6, 8));
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(2);
        let block = TransformerBlock::new(&mut params, &mut rng, "t", 6, 2);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::from_vec(4, 6, (0..24).map(|v| (v as f64 * 0.37).sin()).collect()));
        let y = block.forward(&mut g, x);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        g.backward(l);
        let touched = params
            .ids()
            .filter(|&id| {
                g.grads().grad(id).is_some_and(|t| t.data().iter().any(|v| v.abs() > 1e-14))
            })
            .count();
        // All weight matrices receive gradient (the final ff2 bias always does).
        assert!(touched >= params.len() - 1, "{touched} of {}", params.len());
    }
}
