//! Trainable embedding table with gather/scatter gradients.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::params::{ParamId, Parameters};

/// Lookup table mapping categorical ids to dense vectors.
///
/// This implements the paper's Eq. 3: sparse one-hot features times an
/// embedding matrix — realized directly as a row gather.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embedding {
    table: ParamId,
    num_embeddings: usize,
    dim: usize,
}

impl Embedding {
    pub fn new(
        params: &mut Parameters,
        rng: &mut StdRng,
        name: &str,
        num_embeddings: usize,
        dim: usize,
    ) -> Self {
        let table =
            params.register(format!("{name}.table"), init::normal(rng, num_embeddings, dim, 0.1));
        Self { table, num_embeddings, dim }
    }

    pub fn num_embeddings(&self) -> usize {
        self.num_embeddings
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn param_id(&self) -> ParamId {
        self.table
    }

    /// Gather rows for `indices`; returns `(indices.len(), dim)`.
    pub fn forward(&self, g: &mut Graph<'_>, indices: &[usize]) -> NodeId {
        g.embed_lookup(self.table, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_rows() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::new(&mut params, &mut rng, "e", 4, 3);
        *params.value_mut(emb.param_id()) =
            Tensor::from_vec(4, 3, (0..12).map(|v| v as f64).collect());
        let mut g = Graph::new(&params);
        let out = emb.forward(&mut g, &[3, 1]);
        assert_eq!(g.value(out).row_slice(0), &[9.0, 10.0, 11.0]);
        assert_eq!(g.value(out).row_slice(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lookup_panics() {
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::new(&mut params, &mut rng, "e", 4, 3);
        let mut g = Graph::new(&params);
        emb.forward(&mut g, &[4]);
    }
}
