//! Neural layers expressed over the autodiff [`crate::Graph`].
//!
//! Each layer registers its weights in a shared [`crate::Parameters`] store at
//! construction time and exposes a `forward` that appends ops to a graph.

mod attention;
mod embedding;
mod gru;
mod linear;
mod lstm;
mod transformer;

pub use attention::SelfAttention;
pub use embedding::Embedding;
pub use gru::Gru;
pub use linear::Linear;
pub use lstm::Lstm;
pub use transformer::TransformerBlock;
