//! Property-based tests for path algorithms on randomly generated cities.

use proptest::prelude::*;
use wsccl_roadnet::shortest::{dijkstra, shortest_path_by_length};
use wsccl_roadnet::yen::k_shortest_paths;
use wsccl_roadnet::{CityProfile, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dijkstra distances obey the relaxation property on every edge:
    /// dist(v) ≤ dist(u) + w(u→v).
    #[test]
    fn dijkstra_relaxation_holds(seed in 0u64..500, src in 0u32..300) {
        let net = CityProfile::Aalborg.generate(seed);
        let src = NodeId(src % net.num_nodes() as u32);
        let sp = dijkstra(&net, src, &|e| net.edge(e).length, &[], &[]);
        for (i, e) in net.edges().iter().enumerate() {
            let _ = i;
            let du = sp.dist[e.from.index()];
            let dv = sp.dist[e.to.index()];
            prop_assert!(dv <= du + e.length + 1e-6,
                "relaxation violated: d({:?})={dv} > d({:?})={du} + {}", e.to, e.from, e.length);
        }
    }

    /// A reconstructed shortest path's length equals the reported distance.
    #[test]
    fn path_length_matches_distance(seed in 0u64..500, a in 0u32..300, b in 0u32..300) {
        let net = CityProfile::Harbin.generate(seed);
        let a = NodeId(a % net.num_nodes() as u32);
        let b = NodeId(b % net.num_nodes() as u32);
        prop_assume!(a != b);
        let sp = dijkstra(&net, a, &|e| net.edge(e).length, &[], &[]);
        if let Some(p) = sp.path_to(&net, b) {
            prop_assert!((p.length(&net) - sp.distance(b)).abs() < 1e-6);
            prop_assert_eq!(p.source(&net), a);
            prop_assert_eq!(p.destination(&net), b);
        }
    }

    /// Yen's k-shortest paths are simple, distinct, sorted, and start with the
    /// true shortest path.
    #[test]
    fn yen_invariants(seed in 0u64..200, a in 0u32..300, b in 0u32..300) {
        let net = CityProfile::Chengdu.generate(seed);
        let a = NodeId(a % net.num_nodes() as u32);
        let b = NodeId(b % net.num_nodes() as u32);
        prop_assume!(a != b);
        let w = |e| net.edge(e).length;
        let paths = k_shortest_paths(&net, a, b, 4, &w);
        if paths.is_empty() {
            // Only acceptable when genuinely unreachable.
            prop_assert!(shortest_path_by_length(&net, a, b).is_none());
            return Ok(());
        }
        let best = shortest_path_by_length(&net, a, b).unwrap();
        prop_assert!((paths[0].length(&net) - best.length(&net)).abs() < 1e-6);
        let mut seen = std::collections::HashSet::new();
        let mut prev = 0.0f64;
        for p in &paths {
            prop_assert!(p.is_simple(&net));
            prop_assert!(seen.insert(p.edges().to_vec()));
            let c = p.length(&net);
            prop_assert!(c + 1e-9 >= prev);
            prev = c;
            prop_assert_eq!(p.source(&net), a);
            prop_assert_eq!(p.destination(&net), b);
        }
    }

    /// Every generated city is strongly connected regardless of seed.
    #[test]
    fn cities_always_strongly_connected(seed in 0u64..1000) {
        for profile in CityProfile::ALL {
            prop_assert!(profile.generate(seed).is_strongly_connected());
        }
    }
}
