//! Yen's algorithm for k-shortest loopless paths.
//!
//! The paper generates alternative paths between a trajectory's source and
//! destination to build ranking candidates (§VII-A.2b) and recommendation
//! negatives (§VII-A.2c); Yen's algorithm is the standard tool for that.

use std::collections::HashSet;

use crate::graph::{EdgeId, NodeId, RoadNetwork};
use crate::path::Path;
use crate::shortest::dijkstra;

/// Cost of a path under a weight function.
fn path_cost(path: &Path, weight: &dyn Fn(EdgeId) -> f64) -> f64 {
    path.edges().iter().map(|&e| weight(e)).sum()
}

/// Node sequence of a path (source, then each edge's head).
fn node_sequence(net: &RoadNetwork, path: &Path) -> Vec<NodeId> {
    let mut nodes = Vec::with_capacity(path.len() + 1);
    nodes.push(path.source(net));
    for &e in path.edges() {
        nodes.push(net.edge(e).to);
    }
    nodes
}

/// K-shortest loopless paths from `from` to `to`, cheapest first.
///
/// Returns fewer than `k` paths when the graph doesn't contain `k` distinct
/// loopless routes. Weights must be positive and finite.
pub fn k_shortest_paths(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    k: usize,
    weight: &dyn Fn(EdgeId) -> f64,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let first = {
        let sp = dijkstra(net, from, weight, &[], &[]);
        match sp.path_to(net, to) {
            Some(p) => p,
            None => return Vec::new(),
        }
    };

    let mut confirmed: Vec<Path> = vec![first];
    // Candidate pool: (cost, path). Linear scan is fine at k ≤ ~20.
    let mut candidates: Vec<(f64, Path)> = Vec::new();
    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    seen.insert(confirmed[0].edges().to_vec());

    while confirmed.len() < k {
        let prev = confirmed.last().expect("non-empty").clone();
        let prev_nodes = node_sequence(net, &prev);

        for i in 0..prev.len() {
            let spur_node = prev_nodes[i];
            let root_edges = &prev.edges()[..i];

            // Ban edges that would recreate an already-confirmed path with the
            // same root, and ban root nodes to keep paths loopless.
            let mut banned_edges = vec![false; net.num_edges()];
            for p in &confirmed {
                if p.len() > i && p.edges()[..i] == *root_edges {
                    banned_edges[p.edges()[i].index()] = true;
                }
            }
            for (_, p) in &candidates {
                if p.len() > i && p.edges()[..i] == *root_edges {
                    banned_edges[p.edges()[i].index()] = true;
                }
            }
            let mut banned_nodes = vec![false; net.num_nodes()];
            for &n in &prev_nodes[..i] {
                banned_nodes[n.index()] = true;
            }

            let sp = dijkstra(net, spur_node, weight, &banned_nodes, &banned_edges);
            let Some(spur) = sp.path_to(net, to) else { continue };

            let mut total: Vec<EdgeId> = root_edges.to_vec();
            total.extend_from_slice(spur.edges());
            let candidate = Path::new_unchecked(total);
            if !candidate.is_simple(net) {
                continue;
            }
            if seen.insert(candidate.edges().to_vec()) {
                let c = path_cost(&candidate, weight);
                candidates.push((c, candidate));
            }
        }

        // Pop the cheapest candidate.
        let Some(best_ix) = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite costs"))
            .map(|(ix, _)| ix)
        else {
            break;
        };
        let (_, best) = candidates.swap_remove(best_ix);
        confirmed.push(best);
    }
    confirmed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, EdgeFeatures, RoadType};

    fn features() -> EdgeFeatures {
        EdgeFeatures { road_type: RoadType::Residential, lanes: 1, one_way: false, signals: false }
    }

    /// Classic Yen test graph with several distinct routes 0 → 5.
    fn grid() -> RoadNetwork {
        let positions: Vec<(f64, f64)> =
            (0..6).map(|i| ((i % 3) as f64 * 100.0, (i / 3) as f64 * 100.0)).collect();
        let mk = |from: u32, to: u32, len: f64| Edge {
            from: NodeId(from),
            to: NodeId(to),
            length: len,
            features: features(),
        };
        // 0-1-2 top row, 3-4-5 bottom row, verticals both ways.
        RoadNetwork::new(
            "g",
            positions,
            vec![
                mk(0, 1, 1.0),
                mk(1, 2, 1.0),
                mk(3, 4, 1.0),
                mk(4, 5, 1.0),
                mk(0, 3, 2.0),
                mk(1, 4, 2.0),
                mk(2, 5, 2.0),
            ],
        )
    }

    fn len_weight(net: &RoadNetwork) -> impl Fn(EdgeId) -> f64 + '_ {
        move |e| net.edge(e).length
    }

    #[test]
    fn returns_sorted_distinct_loopless_paths() {
        let net = grid();
        let w = len_weight(&net);
        let paths = k_shortest_paths(&net, NodeId(0), NodeId(5), 5, &w);
        assert!(paths.len() >= 3, "expected ≥3 routes, got {}", paths.len());
        // Sorted by cost.
        let costs: Vec<f64> = paths.iter().map(|p| p.length(&net)).collect();
        for w in costs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "not sorted: {costs:?}");
        }
        // Distinct and loopless.
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(p.is_simple(&net));
            assert!(seen.insert(p.edges().to_vec()), "duplicate path");
            assert_eq!(p.source(&net), NodeId(0));
            assert_eq!(p.destination(&net), NodeId(5));
        }
    }

    #[test]
    fn first_path_is_the_shortest() {
        let net = grid();
        let w = len_weight(&net);
        let paths = k_shortest_paths(&net, NodeId(0), NodeId(5), 1, &w);
        let sp = crate::shortest::shortest_path_by_length(&net, NodeId(0), NodeId(5)).unwrap();
        assert_eq!(paths[0].edges(), sp.edges());
    }

    #[test]
    fn k_zero_and_unreachable() {
        let net = grid();
        let w = len_weight(&net);
        assert!(k_shortest_paths(&net, NodeId(0), NodeId(5), 0, &w).is_empty());
        // Node 0 is unreachable from node 5.
        assert!(k_shortest_paths(&net, NodeId(5), NodeId(0), 3, &w).is_empty());
    }

    #[test]
    fn exhausts_routes_gracefully() {
        let net = grid();
        let w = len_weight(&net);
        let paths = k_shortest_paths(&net, NodeId(0), NodeId(1), 10, &w);
        // Only one loopless route 0 → 1 exists.
        assert_eq!(paths.len(), 1);
    }
}
