//! Road networks for the WSCCL reproduction.
//!
//! Implements Definition 1 (road network as a directed graph), Definition 3
//! (paths as sequences of adjacent edges), the spatial edge features of §IV-B
//! (road type, number of lanes, one-way flag, traffic signals), and the path
//! algorithms the evaluation needs: Dijkstra shortest paths and Yen's
//! k-shortest loopless paths (used to generate ranking/recommendation
//! candidates, as in the paper's §VII-A.2).
//!
//! The paper uses OpenStreetMap extracts of Aalborg, Harbin, and Chengdu; this
//! crate replaces them with a seeded synthetic generator ([`synth`]) that
//! produces road-like graphs with matching *relative* density and feature
//! distributions (see DESIGN.md §1 for the substitution argument).

pub mod graph;
pub mod path;
pub mod shortest;
pub mod synth;
pub mod yen;

pub use graph::{EdgeFeatures, EdgeId, NodeId, RoadNetwork, RoadType};
pub use path::Path;
pub use synth::{CityProfile, SynthConfig};
