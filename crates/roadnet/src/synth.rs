//! Seeded synthetic city generator.
//!
//! Substitutes for the paper's OpenStreetMap extracts (DESIGN.md §1). A city is
//! an irregular, jittered grid with arterial corridors, optional diagonals,
//! one-way streets, and signalized intersections. Three profiles mirror the
//! paper's cities at ~20× reduced scale while preserving their *relative*
//! density ordering (Chengdu densest, Aalborg sparsest) and feature mix.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::graph::{Edge, EdgeFeatures, NodeId, RoadNetwork, RoadType};

/// Generation parameters for one synthetic city.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthConfig {
    pub name: String,
    /// Grid width (columns of intersections).
    pub grid_w: usize,
    /// Grid height (rows of intersections).
    pub grid_h: usize,
    /// Distance between neighboring grid intersections, meters.
    pub spacing: f64,
    /// Node position jitter as a fraction of spacing.
    pub jitter: f64,
    /// Probability of keeping a non-spanning-tree grid connection.
    pub keep_prob: f64,
    /// Probability of adding a diagonal connection per grid cell.
    pub diag_prob: f64,
    /// Fraction of kept non-tree connections that are one-way.
    pub one_way_frac: f64,
    /// Probability that a minor edge carries a traffic signal.
    pub signal_prob: f64,
    /// Every `arterial_spacing`-th row/column is an arterial (Primary).
    pub arterial_spacing: usize,
    pub seed: u64,
}

/// The three city profiles used throughout the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CityProfile {
    /// Sparse Scandinavian city (paper: 10,017 nodes / 11,597 edges).
    Aalborg,
    /// Mid-density Chinese city (paper: 8,497 nodes / 14,497 edges).
    Harbin,
    /// Dense Chinese city (paper: 6,632 nodes / 17,038 edges).
    Chengdu,
    /// Paper-scale synthetic metropolis (100k+ edges). Not part of the three
    /// evaluation cities ([`CityProfile::ALL`]); it exists for the streaming
    /// data pipeline and the scale benchmarks, where datasets no longer fit
    /// in memory.
    Metro,
}

impl CityProfile {
    /// The three evaluation cities of the paper's tables. `Metro` is
    /// deliberately excluded: it is a scale tier, not an evaluation target.
    pub const ALL: [CityProfile; 3] =
        [CityProfile::Aalborg, CityProfile::Harbin, CityProfile::Chengdu];

    pub fn name(self) -> &'static str {
        match self {
            CityProfile::Aalborg => "aalborg",
            CityProfile::Harbin => "harbin",
            CityProfile::Chengdu => "chengdu",
            CityProfile::Metro => "metro",
        }
    }

    /// Generator configuration at reproduction scale.
    pub fn config(self, seed: u64) -> SynthConfig {
        match self {
            CityProfile::Aalborg => SynthConfig {
                name: self.name().into(),
                grid_w: 23,
                grid_h: 22,
                spacing: 150.0,
                jitter: 0.25,
                keep_prob: 0.35,
                diag_prob: 0.05,
                one_way_frac: 0.15,
                signal_prob: 0.15,
                arterial_spacing: 6,
                seed,
            },
            CityProfile::Harbin => SynthConfig {
                name: self.name().into(),
                grid_w: 21,
                grid_h: 20,
                spacing: 180.0,
                jitter: 0.2,
                keep_prob: 0.65,
                diag_prob: 0.10,
                one_way_frac: 0.25,
                signal_prob: 0.25,
                arterial_spacing: 5,
                seed,
            },
            CityProfile::Chengdu => SynthConfig {
                name: self.name().into(),
                grid_w: 19,
                grid_h: 18,
                spacing: 120.0,
                jitter: 0.15,
                keep_prob: 0.95,
                diag_prob: 0.35,
                one_way_frac: 0.30,
                signal_prob: 0.35,
                arterial_spacing: 4,
                seed,
            },
            // ~34k nodes, >100k directed edges: the first tier where the
            // dataset has to stream rather than materialize.
            CityProfile::Metro => SynthConfig {
                name: self.name().into(),
                grid_w: 190,
                grid_h: 180,
                spacing: 140.0,
                jitter: 0.2,
                keep_prob: 0.7,
                diag_prob: 0.10,
                one_way_frac: 0.20,
                signal_prob: 0.25,
                arterial_spacing: 5,
                seed,
            },
        }
    }

    /// Generate this city's road network.
    pub fn generate(self, seed: u64) -> RoadNetwork {
        generate(&self.config(seed))
    }
}

/// Undirected candidate connection between two grid nodes.
#[derive(Clone, Copy)]
struct Candidate {
    a: usize,
    b: usize,
    diagonal: bool,
}

/// Generate a strongly connected road network from a config.
pub fn generate(cfg: &SynthConfig) -> RoadNetwork {
    assert!(cfg.grid_w >= 2 && cfg.grid_h >= 2, "grid must be at least 2x2");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.grid_w * cfg.grid_h;
    let at = |x: usize, y: usize| y * cfg.grid_w + x;

    // Jittered node positions.
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let (x, y) = (i % cfg.grid_w, i / cfg.grid_w);
            let jx = rng.random_range(-cfg.jitter..cfg.jitter) * cfg.spacing;
            let jy = rng.random_range(-cfg.jitter..cfg.jitter) * cfg.spacing;
            (x as f64 * cfg.spacing + jx, y as f64 * cfg.spacing + jy)
        })
        .collect();

    // Candidate connections: 4-neighborhood plus optional diagonals.
    let mut candidates = Vec::new();
    for y in 0..cfg.grid_h {
        for x in 0..cfg.grid_w {
            if x + 1 < cfg.grid_w {
                candidates.push(Candidate { a: at(x, y), b: at(x + 1, y), diagonal: false });
            }
            if y + 1 < cfg.grid_h {
                candidates.push(Candidate { a: at(x, y), b: at(x, y + 1), diagonal: false });
            }
            if x + 1 < cfg.grid_w && y + 1 < cfg.grid_h && rng.random::<f64>() < cfg.diag_prob {
                if rng.random::<f64>() < 0.5 {
                    candidates.push(Candidate { a: at(x, y), b: at(x + 1, y + 1), diagonal: true });
                } else {
                    candidates.push(Candidate { a: at(x + 1, y), b: at(x, y + 1), diagonal: true });
                }
            }
        }
    }

    // Randomized spanning tree (union-find over shuffled candidates) —
    // guarantees connectivity; tree connections are always bidirectional,
    // which makes the digraph strongly connected.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.shuffle(&mut rng);
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut in_tree = vec![false; candidates.len()];
    for &ci in &order {
        let c = candidates[ci];
        let (ra, rb) = (find(&mut parent, c.a), find(&mut parent, c.b));
        if ra != rb {
            parent[ra] = rb;
            in_tree[ci] = true;
        }
    }

    // Feature assignment helpers.
    let is_arterial_node = |i: usize| -> (bool, bool) {
        let (x, y) = (i % cfg.grid_w, i / cfg.grid_w);
        (
            y % cfg.arterial_spacing == cfg.arterial_spacing / 2,
            x % cfg.arterial_spacing == cfg.arterial_spacing / 2,
        )
    };

    let mut edges: Vec<Edge> = Vec::new();
    for (ci, c) in candidates.iter().enumerate() {
        let keep = in_tree[ci] || rng.random::<f64>() < cfg.keep_prob;
        if !keep {
            continue;
        }
        // Road classification: connections along an arterial row/column are
        // Primary (with a small chance of Motorway); diagonals tend major.
        let (row_a, col_a) = is_arterial_node(c.a);
        let (row_b, col_b) = is_arterial_node(c.b);
        let arterial = (row_a && row_b) || (col_a && col_b);
        let road_type = if arterial {
            if rng.random::<f64>() < 0.12 {
                RoadType::Motorway
            } else {
                RoadType::Primary
            }
        } else if c.diagonal {
            RoadType::Secondary
        } else {
            match rng.random_range(0..10) {
                0..=1 => RoadType::Secondary,
                2..=4 => RoadType::Tertiary,
                _ => RoadType::Residential,
            }
        };
        let lanes: u8 = match road_type {
            RoadType::Motorway => rng.random_range(3..=4),
            RoadType::Primary => rng.random_range(2..=3),
            RoadType::Secondary => rng.random_range(2..=3),
            RoadType::Tertiary => rng.random_range(1..=2),
            RoadType::Residential => 1,
        };
        let signals = match road_type {
            RoadType::Motorway => false,
            RoadType::Primary => rng.random::<f64>() < 2.0 * cfg.signal_prob,
            _ => rng.random::<f64>() < cfg.signal_prob,
        };
        // One-way only for non-tree minor edges, to preserve strong connectivity.
        let one_way = !in_tree[ci]
            && road_type != RoadType::Motorway
            && rng.random::<f64>() < cfg.one_way_frac;

        let (pa, pb) = (positions[c.a], positions[c.b]);
        let length = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt().max(10.0);
        let features = EdgeFeatures { road_type, lanes, one_way, signals };
        let (from, to) = if one_way && rng.random::<f64>() < 0.5 { (c.b, c.a) } else { (c.a, c.b) };
        edges.push(Edge { from: NodeId(from as u32), to: NodeId(to as u32), length, features });
        if !one_way {
            edges.push(Edge { from: NodeId(to as u32), to: NodeId(from as u32), length, features });
        }
    }

    RoadNetwork::new(cfg.name.clone(), positions, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn metro_profile_reaches_paper_scale() {
        let net = CityProfile::Metro.generate(1);
        assert!(net.num_edges() >= 100_000, "metro has only {} edges", net.num_edges());
        assert!(net.is_strongly_connected(), "metro not strongly connected");
    }

    #[test]
    fn all_profiles_are_strongly_connected() {
        for profile in CityProfile::ALL {
            let net = profile.generate(7);
            assert!(net.is_strongly_connected(), "{} not strongly connected", profile.name());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CityProfile::Harbin.generate(3);
        let b = CityProfile::Harbin.generate(3);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea.from, eb.from);
            assert_eq!(ea.to, eb.to);
            assert_eq!(ea.features, eb.features);
        }
        let c = CityProfile::Harbin.generate(4);
        assert_ne!(a.num_edges(), c.num_edges(), "different seeds should differ");
    }

    #[test]
    fn density_ordering_matches_paper() {
        // Chengdu must be the densest, Aalborg the sparsest (edges per node).
        let density = |p: CityProfile| {
            let net = p.generate(11);
            net.num_edges() as f64 / net.num_nodes() as f64
        };
        let aal = density(CityProfile::Aalborg);
        let har = density(CityProfile::Harbin);
        let che = density(CityProfile::Chengdu);
        assert!(aal < har && har < che, "density order violated: {aal:.2} {har:.2} {che:.2}");
    }

    #[test]
    fn feature_mix_is_plausible() {
        let net = CityProfile::Chengdu.generate(5);
        let types: HashSet<usize> =
            net.edges().iter().map(|e| e.features.road_type.index()).collect();
        assert!(types.len() >= 4, "expected diverse road types, got {types:?}");
        let one_way = net.edges().iter().filter(|e| e.features.one_way).count();
        assert!(one_way > 0, "expected some one-way streets");
        let signals = net.edges().iter().filter(|e| e.features.signals).count();
        assert!(signals > 0, "expected some signals");
        assert!(net.edges().iter().all(|e| (1..=4).contains(&e.features.lanes)));
        assert!(net.edges().iter().all(|e| e.length >= 10.0));
    }

    #[test]
    fn sizes_are_at_reproduction_scale() {
        for profile in CityProfile::ALL {
            let net = profile.generate(1);
            assert!(
                (300..600).contains(&net.num_nodes()),
                "{}: {} nodes",
                profile.name(),
                net.num_nodes()
            );
            assert!(net.num_edges() > net.num_nodes(), "{} too sparse", profile.name());
        }
    }
}
