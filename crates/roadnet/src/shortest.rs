//! Dijkstra shortest paths over node graphs with pluggable edge weights.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, NodeId, RoadNetwork};
use crate::path::Path;

/// Min-heap entry ordered by cost.
#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite by construction.
        other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Full single-source Dijkstra state.
pub struct ShortestPaths {
    /// Distance per node (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// Incoming edge on the shortest path tree, per node.
    pub prev_edge: Vec<Option<EdgeId>>,
}

impl ShortestPaths {
    /// Reconstruct the edge sequence from the source to `target`.
    pub fn path_to(&self, net: &RoadNetwork, target: NodeId) -> Option<Path> {
        if self.dist[target.index()].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some(e) = self.prev_edge[cur.index()] {
            edges.push(e);
            cur = net.edge(e).from;
        }
        if edges.is_empty() {
            return None; // target == source: no edges
        }
        edges.reverse();
        Some(Path::new_unchecked(edges))
    }

    pub fn distance(&self, target: NodeId) -> f64 {
        self.dist[target.index()]
    }
}

/// Single-source Dijkstra with a per-edge weight function.
///
/// `weight` must return a positive, finite cost; `banned_nodes` /
/// `banned_edges` support Yen's spur computations (entries may be empty).
pub fn dijkstra(
    net: &RoadNetwork,
    source: NodeId,
    weight: &dyn Fn(EdgeId) -> f64,
    banned_nodes: &[bool],
    banned_edges: &[bool],
) -> ShortestPaths {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry { cost: 0.0, node: source });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        for &e in net.out_edges(node) {
            if banned_edges.get(e.index()).copied().unwrap_or(false) {
                continue;
            }
            let to = net.edge(e).to;
            if banned_nodes.get(to.index()).copied().unwrap_or(false) {
                continue;
            }
            let w = weight(e);
            debug_assert!(w > 0.0 && w.is_finite(), "edge weight must be positive and finite");
            let nd = cost + w;
            if nd < dist[to.index()] {
                dist[to.index()] = nd;
                prev_edge[to.index()] = Some(e);
                heap.push(HeapEntry { cost: nd, node: to });
            }
        }
    }
    ShortestPaths { dist, prev_edge }
}

/// Dijkstra that stops as soon as `target` is settled.
///
/// Returns the same path as a full [`dijkstra`] run would, but only explores
/// the ball of nodes closer than the target — the difference between O(city)
/// and O(trip) work per query on 100k+-edge networks, which is what keeps
/// streaming trip generation tractable at metro scale.
pub fn dijkstra_to(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    weight: &dyn Fn(EdgeId) -> f64,
) -> Option<Path> {
    use std::collections::HashMap;
    // Sparse state: allocations scale with the explored ball, not the city,
    // so a short trip on a 100k-edge network costs O(trip).
    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    let mut prev_edge: HashMap<NodeId, EdgeId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(HeapEntry { cost: 0.0, node: source });

    let mut reached = false;
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist.get(&node).copied().unwrap_or(f64::INFINITY) {
            continue; // stale heap entry
        }
        if node == target {
            reached = true;
            break;
        }
        for &e in net.out_edges(node) {
            let to = net.edge(e).to;
            let w = weight(e);
            debug_assert!(w > 0.0 && w.is_finite(), "edge weight must be positive and finite");
            let nd = cost + w;
            if nd < dist.get(&to).copied().unwrap_or(f64::INFINITY) {
                dist.insert(to, nd);
                prev_edge.insert(to, e);
                heap.push(HeapEntry { cost: nd, node: to });
            }
        }
    }
    if !reached {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = target;
    while let Some(&e) = prev_edge.get(&cur) {
        edges.push(e);
        cur = net.edge(e).from;
    }
    if edges.is_empty() {
        return None; // target == source
    }
    edges.reverse();
    Some(Path::new_unchecked(edges))
}

/// Shortest path by physical edge length.
pub fn shortest_path_by_length(net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<Path> {
    let sp = dijkstra(net, from, &|e| net.edge(e).length, &[], &[]);
    sp.path_to(net, to)
}

/// Shortest path under an arbitrary positive weight function.
pub fn shortest_path_weighted(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    weight: &dyn Fn(EdgeId) -> f64,
) -> Option<Path> {
    let sp = dijkstra(net, from, weight, &[], &[]);
    sp.path_to(net, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, EdgeFeatures, RoadType};

    fn features() -> EdgeFeatures {
        EdgeFeatures { road_type: RoadType::Residential, lanes: 1, one_way: false, signals: false }
    }

    /// Diamond: 0→1→3 (cost 2), 0→2→3 (cost 10), plus direct 0→3 (cost 5).
    fn diamond() -> RoadNetwork {
        let positions = vec![(0.0, 0.0), (1.0, 1.0), (1.0, -1.0), (2.0, 0.0)];
        let mk = |from: u32, to: u32, len: f64| Edge {
            from: NodeId(from),
            to: NodeId(to),
            length: len,
            features: features(),
        };
        RoadNetwork::new(
            "diamond",
            positions,
            vec![mk(0, 1, 1.0), mk(1, 3, 1.0), mk(0, 2, 5.0), mk(2, 3, 5.0), mk(0, 3, 5.0)],
        )
    }

    #[test]
    fn finds_cheapest_route() {
        let net = diamond();
        let p = shortest_path_by_length(&net, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.edges(), &[EdgeId(0), EdgeId(1)]);
        assert!((p.length(&net) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn respects_custom_weights() {
        let net = diamond();
        // Penalize edge 1 heavily; the direct edge becomes cheapest.
        let w = |e: EdgeId| if e == EdgeId(1) { 100.0 } else { net.edge(e).length };
        let p = shortest_path_weighted(&net, NodeId(0), NodeId(3), &w).unwrap();
        assert_eq!(p.edges(), &[EdgeId(4)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let net = diamond();
        // Node 0 has no incoming edges.
        assert!(shortest_path_by_length(&net, NodeId(3), NodeId(0)).is_none());
    }

    #[test]
    fn source_equals_target_returns_none() {
        let net = diamond();
        assert!(shortest_path_by_length(&net, NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn banned_edges_are_avoided() {
        let net = diamond();
        let mut banned = vec![false; net.num_edges()];
        banned[0] = true; // ban 0→1
        let sp = dijkstra(&net, NodeId(0), &|e| net.edge(e).length, &[], &banned);
        let p = sp.path_to(&net, NodeId(3)).unwrap();
        assert_eq!(p.edges(), &[EdgeId(4)]);
    }

    #[test]
    fn early_exit_matches_full_dijkstra() {
        let net = diamond();
        for target in 1..net.num_nodes() as u32 {
            let full = shortest_path_by_length(&net, NodeId(0), NodeId(target));
            let fast = dijkstra_to(&net, NodeId(0), NodeId(target), &|e| net.edge(e).length);
            assert_eq!(full.map(|p| p.edges().to_vec()), fast.map(|p| p.edges().to_vec()));
        }
        assert!(dijkstra_to(&net, NodeId(0), NodeId(0), &|e| net.edge(e).length).is_none());
        assert!(dijkstra_to(&net, NodeId(3), NodeId(0), &|e| net.edge(e).length).is_none());
    }

    #[test]
    fn distances_satisfy_triangle_inequality_on_tree() {
        let net = diamond();
        let sp = dijkstra(&net, NodeId(0), &|e| net.edge(e).length, &[], &[]);
        // dist of every node equals dist of predecessor plus edge weight.
        for node in 1..net.num_nodes() {
            if let Some(e) = sp.prev_edge[node] {
                let pred = net.edge(e).from;
                let expect = sp.dist[pred.index()] + net.edge(e).length;
                assert!((sp.dist[node] - expect).abs() < 1e-12);
            }
        }
    }
}
