//! Directed road-network graph with the paper's spatial edge features.

use serde::{Deserialize, Serialize};

/// Vertex (intersection) handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Edge (road segment) handle.
///
/// `repr(transparent)` over `u32` is a stable layout guarantee: the on-disk
/// dataset format (`wsccl-datagen`) reinterprets 4-byte-aligned little-endian
/// record bytes as `&[EdgeId]` without copying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct EdgeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Road classification (the paper's "Road Type (RT)" categorical feature).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadType {
    Motorway,
    Primary,
    Secondary,
    Tertiary,
    Residential,
}

impl RoadType {
    pub const ALL: [RoadType; 5] = [
        RoadType::Motorway,
        RoadType::Primary,
        RoadType::Secondary,
        RoadType::Tertiary,
        RoadType::Residential,
    ];

    /// Dense categorical index for embedding lookups.
    pub fn index(self) -> usize {
        match self {
            RoadType::Motorway => 0,
            RoadType::Primary => 1,
            RoadType::Secondary => 2,
            RoadType::Tertiary => 3,
            RoadType::Residential => 4,
        }
    }

    /// Free-flow speed in m/s used by the traffic simulator.
    pub fn free_flow_speed(self) -> f64 {
        match self {
            RoadType::Motorway => 110.0 / 3.6,
            RoadType::Primary => 70.0 / 3.6,
            RoadType::Secondary => 55.0 / 3.6,
            RoadType::Tertiary => 45.0 / 3.6,
            RoadType::Residential => 30.0 / 3.6,
        }
    }
}

/// The paper's four spatial edge features (§IV-B(a)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeFeatures {
    pub road_type: RoadType,
    /// Number of traffic lanes (1–4 in the generator).
    pub lanes: u8,
    /// True if the edge can only be traversed in its stored direction.
    pub one_way: bool,
    /// True if the edge carries one or more traffic signals.
    pub signals: bool,
}

impl EdgeFeatures {
    /// Number of lane categories the generator produces (for one-hot width).
    pub const NUM_LANE_CATEGORIES: usize = 4;

    /// Categorical index of the lane count (lanes 1..=4 → 0..=3).
    pub fn lanes_index(&self) -> usize {
        (self.lanes.clamp(1, Self::NUM_LANE_CATEGORIES as u8) - 1) as usize
    }
}

/// One directed road segment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    /// Segment length in meters.
    pub length: f64,
    pub features: EdgeFeatures,
}

/// A directed road network (paper Definition 1) with planar node coordinates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadNetwork {
    /// City name, e.g. "aalborg".
    pub name: String,
    /// Planar node coordinates in meters (used for GPS simulation/matching).
    positions: Vec<(f64, f64)>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_edges: Vec<Vec<EdgeId>>,
}

impl RoadNetwork {
    /// Build a network from node positions and edges.
    ///
    /// # Panics
    /// Panics if an edge references a missing node.
    pub fn new(name: impl Into<String>, positions: Vec<(f64, f64)>, edges: Vec<Edge>) -> Self {
        let n = positions.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            assert!(e.from.index() < n && e.to.index() < n, "edge endpoint out of range");
            assert!(e.length > 0.0, "edge length must be positive");
            out_edges[e.from.index()].push(EdgeId(i as u32));
            in_edges[e.to.index()].push(EdgeId(i as u32));
        }
        Self { name: name.into(), positions, edges, out_edges, in_edges }
    }

    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn position(&self, n: NodeId) -> (f64, f64) {
        self.positions[n.index()]
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_edges[n.index()]
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_edges[n.index()]
    }

    /// Edges that can directly follow `e` in a path.
    pub fn successors(&self, e: EdgeId) -> &[EdgeId] {
        self.out_edges(self.edge(e).to)
    }

    /// Euclidean midpoint of an edge (used as its representative location).
    pub fn edge_midpoint(&self, e: EdgeId) -> (f64, f64) {
        let edge = self.edge(e);
        let (x1, y1) = self.position(edge.from);
        let (x2, y2) = self.position(edge.to);
        ((x1 + x2) / 2.0, (y1 + y2) / 2.0)
    }

    /// Point at fraction `t ∈ [0,1]` along the (straight) edge geometry.
    pub fn edge_point_at(&self, e: EdgeId, t: f64) -> (f64, f64) {
        let edge = self.edge(e);
        let (x1, y1) = self.position(edge.from);
        let (x2, y2) = self.position(edge.to);
        (x1 + (x2 - x1) * t, y1 + (y2 - y1) * t)
    }

    /// Project a point onto an edge: returns `(t, distance)` where `t ∈ [0,1]`
    /// is the position of the closest point along the edge and `distance` the
    /// perpendicular distance to it.
    pub fn edge_projection(&self, p: (f64, f64), e: EdgeId) -> (f64, f64) {
        let edge = self.edge(e);
        let (x1, y1) = self.position(edge.from);
        let (x2, y2) = self.position(edge.to);
        let (dx, dy) = (x2 - x1, y2 - y1);
        let len2 = dx * dx + dy * dy;
        let t = if len2 == 0.0 {
            0.0
        } else {
            (((p.0 - x1) * dx + (p.1 - y1) * dy) / len2).clamp(0.0, 1.0)
        };
        let (cx, cy) = (x1 + t * dx, y1 + t * dy);
        (t, ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt())
    }

    /// Distance from a point to the (straight-segment) geometry of an edge.
    pub fn point_to_edge_distance(&self, p: (f64, f64), e: EdgeId) -> f64 {
        self.edge_projection(p, e).1
    }

    /// True if `b` can directly follow `a` in a path.
    pub fn adjacent(&self, a: EdgeId, b: EdgeId) -> bool {
        self.edge(a).to == self.edge(b).from
    }

    /// Check strong connectivity via forward+backward BFS from node 0.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let reach = |adj: &dyn Fn(NodeId) -> Vec<NodeId>| {
            let mut seen = vec![false; n];
            let mut stack = vec![NodeId(0)];
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = stack.pop() {
                for v in adj(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        count += 1;
                        stack.push(v);
                    }
                }
            }
            count
        };
        let fwd = reach(&|u: NodeId| {
            self.out_edges(u).iter().map(|&e| self.edge(e).to).collect::<Vec<_>>()
        });
        let bwd = reach(&|u: NodeId| {
            self.in_edges(u).iter().map(|&e| self.edge(e).from).collect::<Vec<_>>()
        });
        fwd == n && bwd == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_features() -> EdgeFeatures {
        EdgeFeatures { road_type: RoadType::Residential, lanes: 1, one_way: false, signals: false }
    }

    fn triangle() -> RoadNetwork {
        // 0 → 1 → 2 → 0, strongly connected.
        let positions = vec![(0.0, 0.0), (100.0, 0.0), (50.0, 80.0)];
        let mk = |from: u32, to: u32| Edge {
            from: NodeId(from),
            to: NodeId(to),
            length: 100.0,
            features: tiny_features(),
        };
        RoadNetwork::new("tri", positions, vec![mk(0, 1), mk(1, 2), mk(2, 0)])
    }

    #[test]
    fn adjacency_lists_are_consistent() {
        let net = triangle();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 3);
        assert_eq!(net.out_edges(NodeId(0)), &[EdgeId(0)]);
        assert_eq!(net.in_edges(NodeId(0)), &[EdgeId(2)]);
        assert!(net.adjacent(EdgeId(0), EdgeId(1)));
        assert!(!net.adjacent(EdgeId(0), EdgeId(2)));
        assert_eq!(net.successors(EdgeId(0)), &[EdgeId(1)]);
    }

    #[test]
    fn triangle_is_strongly_connected() {
        assert!(triangle().is_strongly_connected());
    }

    #[test]
    fn one_way_chain_is_not_strongly_connected() {
        let positions = vec![(0.0, 0.0), (1.0, 0.0)];
        let e = Edge { from: NodeId(0), to: NodeId(1), length: 1.0, features: tiny_features() };
        let net = RoadNetwork::new("chain", positions, vec![e]);
        assert!(!net.is_strongly_connected());
    }

    #[test]
    fn point_to_edge_distance_is_perpendicular() {
        let net = triangle();
        // Edge 0 runs from (0,0) to (100,0); point (50, 30) is 30 m away.
        let d = net.point_to_edge_distance((50.0, 30.0), EdgeId(0));
        assert!((d - 30.0).abs() < 1e-9);
        // Beyond the segment end, distance is to the endpoint.
        let d2 = net.point_to_edge_distance((130.0, 40.0), EdgeId(0));
        assert!((d2 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn road_type_indices_are_dense() {
        for (i, rt) in RoadType::ALL.iter().enumerate() {
            assert_eq!(rt.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_edge_rejected() {
        let positions = vec![(0.0, 0.0), (1.0, 0.0)];
        let e = Edge { from: NodeId(0), to: NodeId(1), length: 0.0, features: tiny_features() };
        RoadNetwork::new("bad", positions, vec![e]);
    }
}
