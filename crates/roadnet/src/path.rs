//! Paths (Definition 3): sequences of adjacent edges, plus the path-similarity
//! measure used to derive ranking scores (§VII-A.2b).

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, NodeId, RoadNetwork};

/// A path `p = ⟨e_1 … e_n⟩` of adjacent edges in a road network.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Build a path, validating adjacency against the network.
    ///
    /// Returns `None` for an empty sequence or any non-adjacent step.
    pub fn new(net: &RoadNetwork, edges: Vec<EdgeId>) -> Option<Self> {
        if edges.is_empty() {
            return None;
        }
        for w in edges.windows(2) {
            if !net.adjacent(w[0], w[1]) {
                return None;
            }
        }
        Some(Self { edges })
    }

    /// Build a path without adjacency validation (for trusted generators).
    pub fn new_unchecked(edges: Vec<EdgeId>) -> Self {
        debug_assert!(!edges.is_empty(), "paths are non-empty");
        Self { edges }
    }

    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Source node of the path.
    pub fn source(&self, net: &RoadNetwork) -> NodeId {
        net.edge(self.edges[0]).from
    }

    /// Destination node of the path.
    pub fn destination(&self, net: &RoadNetwork) -> NodeId {
        net.edge(*self.edges.last().expect("non-empty")).to
    }

    /// Total length in meters.
    pub fn length(&self, net: &RoadNetwork) -> f64 {
        self.edges.iter().map(|&e| net.edge(e).length).sum()
    }

    /// True if no node repeats (loopless / simple path).
    pub fn is_simple(&self, net: &RoadNetwork) -> bool {
        let mut seen = std::collections::HashSet::new();
        seen.insert(self.source(net));
        for &e in &self.edges {
            if !seen.insert(net.edge(e).to) {
                return false;
            }
        }
        true
    }

    /// Length-weighted Jaccard similarity with another path.
    ///
    /// This is the paper's ranking-score construction: the more of a candidate
    /// path's length is shared with the trajectory path, the higher its score;
    /// the trajectory path itself scores 1.0.
    pub fn weighted_jaccard(&self, other: &Path, net: &RoadNetwork) -> f64 {
        // Deterministic iteration (sorted, deduped) so float summation order —
        // and therefore every downstream score — is identical across runs.
        let mut a: Vec<EdgeId> = self.edges.clone();
        a.sort_unstable();
        a.dedup();
        let mut b: Vec<EdgeId> = other.edges.clone();
        b.sort_unstable();
        b.dedup();
        let bset: std::collections::HashSet<EdgeId> = b.iter().copied().collect();
        let aset: std::collections::HashSet<EdgeId> = a.iter().copied().collect();
        let mut inter = 0.0;
        let mut union = 0.0;
        for &e in &a {
            let len = net.edge(e).length;
            union += len;
            if bset.contains(&e) {
                inter += len;
            }
        }
        for &e in &b {
            if !aset.contains(&e) {
                union += net.edge(e).length;
            }
        }
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, EdgeFeatures, RoadType};

    fn features() -> EdgeFeatures {
        EdgeFeatures { road_type: RoadType::Residential, lanes: 1, one_way: false, signals: false }
    }

    /// Square with both diagonals: 0-1-2-3 around, plus 0→2.
    fn square() -> RoadNetwork {
        let positions = vec![(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (0.0, 100.0)];
        let mk = |from: u32, to: u32, len: f64| Edge {
            from: NodeId(from),
            to: NodeId(to),
            length: len,
            features: features(),
        };
        RoadNetwork::new(
            "sq",
            positions,
            vec![
                mk(0, 1, 100.0), // e0
                mk(1, 2, 100.0), // e1
                mk(2, 3, 100.0), // e2
                mk(3, 0, 100.0), // e3
                mk(0, 2, 141.4), // e4 diagonal
            ],
        )
    }

    #[test]
    fn validated_construction() {
        let net = square();
        assert!(Path::new(&net, vec![EdgeId(0), EdgeId(1)]).is_some());
        assert!(Path::new(&net, vec![EdgeId(0), EdgeId(2)]).is_none());
        assert!(Path::new(&net, vec![]).is_none());
    }

    #[test]
    fn endpoints_and_length() {
        let net = square();
        let p = Path::new(&net, vec![EdgeId(0), EdgeId(1), EdgeId(2)]).unwrap();
        assert_eq!(p.source(&net), NodeId(0));
        assert_eq!(p.destination(&net), NodeId(3));
        assert!((p.length(&net) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn simplicity() {
        let net = square();
        let simple = Path::new(&net, vec![EdgeId(0), EdgeId(1)]).unwrap();
        assert!(simple.is_simple(&net));
        let cycle = Path::new(&net, vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]).unwrap();
        assert!(!cycle.is_simple(&net)); // returns to node 0
    }

    #[test]
    fn weighted_jaccard_properties() {
        let net = square();
        let a = Path::new(&net, vec![EdgeId(0), EdgeId(1)]).unwrap();
        let b = Path::new(&net, vec![EdgeId(4)]).unwrap();
        // Identity scores 1.
        assert!((a.weighted_jaccard(&a, &net) - 1.0).abs() < 1e-12);
        // Disjoint paths score 0.
        assert_eq!(a.weighted_jaccard(&b, &net), 0.0);
        // Partial overlap is in (0, 1) and symmetric.
        let c = Path::new(&net, vec![EdgeId(0)]).unwrap();
        let s = a.weighted_jaccard(&c, &net);
        assert!(s > 0.0 && s < 1.0);
        assert!((s - c.weighted_jaccard(&a, &net)).abs() < 1e-12);
    }
}
