//! Undirected adjacency graphs and node2vec's biased second-order walks.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Simple undirected graph given by adjacency lists.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdjGraph {
    adj: Vec<Vec<usize>>,
}

impl AdjGraph {
    /// Build from an edge list over `n` nodes; duplicates are removed.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range {n}");
            if a != b {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Self { adj }
    }

    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// True if `a` and `b` are adjacent (binary search).
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// One biased node2vec walk of length `len` starting at `start`.
    ///
    /// Return-parameter `p` discourages (>1) or encourages (<1) revisiting the
    /// previous node; in-out parameter `q` interpolates BFS (q>1) vs DFS (q<1).
    pub fn node2vec_walk(
        &self,
        rng: &mut StdRng,
        start: usize,
        len: usize,
        p: f64,
        q: f64,
    ) -> Vec<usize> {
        let mut walk = Vec::with_capacity(len);
        walk.push(start);
        if self.adj[start].is_empty() {
            return walk;
        }
        while walk.len() < len {
            let cur = *walk.last().expect("non-empty");
            let neighbors = &self.adj[cur];
            if neighbors.is_empty() {
                break;
            }
            let next = if walk.len() == 1 {
                neighbors[rng.random_range(0..neighbors.len())]
            } else {
                let prev = walk[walk.len() - 2];
                // Rejection sampling over the unnormalized bias weights.
                let max_w = (1.0 / p).max(1.0).max(1.0 / q);
                loop {
                    let cand = neighbors[rng.random_range(0..neighbors.len())];
                    let w = if cand == prev {
                        1.0 / p
                    } else if self.has_edge(cand, prev) {
                        1.0
                    } else {
                        1.0 / q
                    };
                    if rng.random::<f64>() * max_w <= w {
                        break cand;
                    }
                }
            };
            walk.push(next);
        }
        walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> AdjGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        AdjGraph::from_edges(n, &edges)
    }

    #[test]
    fn construction_dedupes_and_symmetrizes() {
        let g = AdjGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (1, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn walks_stay_on_edges() {
        let g = path_graph(10);
        let mut rng = StdRng::seed_from_u64(1);
        for start in 0..10 {
            let walk = g.node2vec_walk(&mut rng, start, 20, 1.0, 1.0);
            assert_eq!(walk[0], start);
            for w in walk.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "walk used non-edge {w:?}");
            }
        }
    }

    #[test]
    fn isolated_node_walk_is_singleton() {
        let g = AdjGraph::from_edges(3, &[(0, 1)]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(g.node2vec_walk(&mut rng, 2, 10, 1.0, 1.0), vec![2]);
    }

    #[test]
    fn high_p_discourages_backtracking() {
        // On a path graph every interior step has exactly two options:
        // backtrack or continue. With large p, continuing dominates.
        let g = path_graph(50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut back = 0;
        let mut fwd = 0;
        for _ in 0..200 {
            let walk = g.node2vec_walk(&mut rng, 25, 10, 10.0, 1.0);
            for i in 2..walk.len() {
                if walk[i] == walk[i - 2] {
                    back += 1;
                } else {
                    fwd += 1;
                }
            }
        }
        assert!(fwd > 4 * back, "fwd {fwd} back {back}");
    }
}
