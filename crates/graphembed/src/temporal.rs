//! The paper's temporal graph (§IV-A) and its node2vec embeddings.
//!
//! 288 five-minute slots × 7 days = 2016 nodes. Edges connect (i) consecutive
//! slots within a day, (ii) the same slot on neighboring days, and (iii) slots
//! across the Sunday→Monday boundary (day wrap), capturing local smoothness
//! and weekly periodicity.

use serde::{Deserialize, Serialize};

use wsccl_traffic::time::{SLOTS_PER_DAY, TEMPORAL_NODES};
use wsccl_traffic::SimTime;

use crate::node2vec::{Node2Vec, Node2VecConfig};
use crate::walks::AdjGraph;

/// Node index for (day, slot).
pub fn temporal_node(day: usize, slot: usize) -> usize {
    debug_assert!(day < 7 && slot < SLOTS_PER_DAY);
    day * SLOTS_PER_DAY + slot
}

/// Build the 2016-node temporal graph.
pub fn build_temporal_graph() -> AdjGraph {
    let mut edges = Vec::new();
    for day in 0..7 {
        for slot in 0..SLOTS_PER_DAY {
            let u = temporal_node(day, slot);
            // (i) adjacent slots within the day, wrapping midnight into the
            // next day (and Sunday's last slot into Monday's first).
            let (nday, nslot) =
                if slot + 1 < SLOTS_PER_DAY { (day, slot + 1) } else { ((day + 1) % 7, 0) };
            edges.push((u, temporal_node(nday, nslot)));
            // (ii) the same slot on the next day; day 6 → day 0 closes the
            // weekly cycle (the paper's Sunday–Monday connection).
            edges.push((u, temporal_node((day + 1) % 7, slot)));
        }
    }
    AdjGraph::from_edges(TEMPORAL_NODES, &edges)
}

/// Trained temporal embeddings: `t_all = Node2Vec^tg(t_emb)` (Eq. 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalEmbeddings {
    model: Node2Vec,
}

impl TemporalEmbeddings {
    /// Train node2vec over the temporal graph.
    pub fn train(cfg: &Node2VecConfig) -> Self {
        let graph = build_temporal_graph();
        Self { model: Node2Vec::train(&graph, cfg) }
    }

    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// Temporal embedding of a departure time.
    pub fn embed(&self, t: SimTime) -> &[f64] {
        self.model.embedding(t.temporal_node())
    }

    /// Cosine similarity between two departure times' embeddings.
    pub fn cosine(&self, a: SimTime, b: SimTime) -> f64 {
        self.model.cosine(a.temporal_node(), b.temporal_node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_2016_nodes_and_correct_adjacency() {
        let g = build_temporal_graph();
        assert_eq!(g.num_nodes(), 2016);
        // Adjacent slots connected.
        assert!(g.has_edge(temporal_node(0, 0), temporal_node(0, 1)));
        // Same slot, adjacent days connected.
        assert!(g.has_edge(temporal_node(0, 100), temporal_node(1, 100)));
        // Sunday ↔ Monday weekly wrap.
        assert!(g.has_edge(temporal_node(6, 50), temporal_node(0, 50)));
        // Midnight wrap: Sunday's last slot connects to Monday's first.
        assert!(g.has_edge(temporal_node(6, SLOTS_PER_DAY - 1), temporal_node(0, 0)));
        // Distant slots NOT directly connected.
        assert!(!g.has_edge(temporal_node(0, 0), temporal_node(0, 100)));
        assert!(!g.has_edge(temporal_node(0, 0), temporal_node(3, 0)));
    }

    #[test]
    fn every_node_has_degree_four() {
        // Each node touches: prev/next slot, same slot prev/next day.
        let g = build_temporal_graph();
        for v in 0..g.num_nodes() {
            assert_eq!(g.degree(v), 4, "node {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn nearby_times_embed_more_similarly_than_distant_times() {
        let cfg = Node2VecConfig {
            dim: 16,
            walk_len: 15,
            walks_per_node: 2,
            epochs: 1,
            seed: 5,
            ..Default::default()
        };
        let emb = TemporalEmbeddings::train(&cfg);
        // Average over several probes to be robust.
        let mut near = 0.0;
        let mut far = 0.0;
        let mut n = 0;
        for day in 0..5u32 {
            for hour in [8u32, 12, 17] {
                let t = SimTime::from_hm(day, hour, 0);
                let t_near = SimTime::from_hm(day, hour, 10);
                let t_far = SimTime::from_hm((day + 3) % 7, (hour + 11) % 24, 0);
                near += emb.cosine(t, t_near);
                far += emb.cosine(t, t_far);
                n += 1;
            }
        }
        let (near, far) = (near / n as f64, far / n as f64);
        assert!(near > far, "near {near:.3} should exceed far {far:.3}");
    }
}
