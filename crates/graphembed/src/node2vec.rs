//! node2vec driver: walks + skip-gram → node embeddings.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::skipgram::SkipGram;
use crate::walks::AdjGraph;

/// node2vec hyperparameters. The paper uses 128-dimensional outputs; the
/// reproduction default is 32 (see DESIGN.md on CPU scaling).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node2VecConfig {
    pub dim: usize,
    pub walk_len: usize,
    pub walks_per_node: usize,
    pub window: usize,
    pub negatives: usize,
    /// Return parameter p.
    pub p: f64,
    /// In-out parameter q.
    pub q: f64,
    pub lr: f64,
    pub epochs: usize,
    pub seed: u64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            walk_len: 20,
            walks_per_node: 6,
            window: 4,
            negatives: 4,
            p: 1.0,
            q: 1.0,
            lr: 0.025,
            epochs: 2,
            seed: 0,
        }
    }
}

/// Trained node2vec embeddings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node2Vec {
    dim: usize,
    embeddings: Vec<Vec<f64>>,
}

impl Node2Vec {
    /// Train node2vec on a graph.
    pub fn train(graph: &AdjGraph, cfg: &Node2VecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4E2C_0DE5);
        let mut walks = Vec::with_capacity(graph.num_nodes() * cfg.walks_per_node);
        for _ in 0..cfg.walks_per_node {
            for start in 0..graph.num_nodes() {
                walks.push(graph.node2vec_walk(&mut rng, start, cfg.walk_len, cfg.p, cfg.q));
            }
        }
        let mut model = SkipGram::new(&mut rng, graph.num_nodes(), cfg.dim);
        model.train_walks(&mut rng, &walks, cfg.window, cfg.negatives, cfg.lr, cfg.epochs);
        Self { dim: cfg.dim, embeddings: model.w_in }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn num_nodes(&self) -> usize {
        self.embeddings.len()
    }

    /// Embedding vector of a node.
    pub fn embedding(&self, node: usize) -> &[f64] {
        &self.embeddings[node]
    }

    /// Cosine similarity between two nodes.
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (&self.embeddings[a], &self.embeddings[b]);
        let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na < 1e-12 || nb < 1e-12 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques joined by one bridge edge: embeddings must separate them.
    #[test]
    fn separates_two_communities() {
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push((a, b));
                edges.push((a + 6, b + 6));
            }
        }
        edges.push((0, 6)); // bridge
        let g = AdjGraph::from_edges(12, &edges);
        let n2v = Node2Vec::train(
            &g,
            &Node2VecConfig { dim: 16, walks_per_node: 10, epochs: 4, ..Default::default() },
        );
        // Average within- vs cross-community similarity.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut nw = 0;
        let mut nc = 0;
        for a in 1..6 {
            for b in (a + 1)..6 {
                within += n2v.cosine(a, b);
                nw += 1;
            }
            for b in 7..12 {
                cross += n2v.cosine(a, b);
                nc += 1;
            }
        }
        let (within, cross) = (within / nw as f64, cross / nc as f64);
        assert!(within > cross + 0.15, "within {within:.3} vs cross {cross:.3}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = AdjGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let cfg = Node2VecConfig { dim: 8, ..Default::default() };
        let a = Node2Vec::train(&g, &cfg);
        let b = Node2Vec::train(&g, &cfg);
        assert_eq!(a.embedding(2), b.embedding(2));
    }

    #[test]
    fn shapes() {
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let n2v = Node2Vec::train(&g, &Node2VecConfig { dim: 12, ..Default::default() });
        assert_eq!(n2v.num_nodes(), 4);
        assert_eq!(n2v.dim(), 12);
        assert_eq!(n2v.embedding(0).len(), 12);
    }
}
