//! node2vec over the road network's intersection graph (§IV-B(b)).
//!
//! An edge's topology embedding is the concatenation of its endpoint node
//! embeddings: `s_rn(e_k) = [n_vi, n_vj]` (Eq. 5).

use serde::{Deserialize, Serialize};

use wsccl_roadnet::{EdgeId, RoadNetwork};

use crate::node2vec::{Node2Vec, Node2VecConfig};
use crate::walks::AdjGraph;

/// Build the undirected intersection graph of a road network.
pub fn build_road_graph(net: &RoadNetwork) -> AdjGraph {
    let edges: Vec<(usize, usize)> =
        net.edges().iter().map(|e| (e.from.index(), e.to.index())).collect();
    AdjGraph::from_edges(net.num_nodes(), &edges)
}

/// Trained road-network node embeddings with edge-level access.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadEmbeddings {
    model: Node2Vec,
}

impl RoadEmbeddings {
    /// Train node2vec over the road network's intersection graph.
    pub fn train(net: &RoadNetwork, cfg: &Node2VecConfig) -> Self {
        let graph = build_road_graph(net);
        Self { model: Node2Vec::train(&graph, cfg) }
    }

    /// Per-node embedding dimension; edge embeddings are twice this.
    pub fn node_dim(&self) -> usize {
        self.model.dim()
    }

    /// Edge topology embedding: `[emb(from), emb(to)]` (Eq. 5).
    pub fn edge_embedding(&self, net: &RoadNetwork, e: EdgeId) -> Vec<f64> {
        let edge = net.edge(e);
        let mut out = Vec::with_capacity(2 * self.node_dim());
        out.extend_from_slice(self.model.embedding(edge.from.index()));
        out.extend_from_slice(self.model.embedding(edge.to.index()));
        out
    }

    pub fn node_embedding(&self, node: usize) -> &[f64] {
        self.model.embedding(node)
    }

    pub fn node_cosine(&self, a: usize, b: usize) -> f64 {
        self.model.cosine(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::shortest::dijkstra;
    use wsccl_roadnet::{CityProfile, NodeId};

    fn quick_cfg() -> Node2VecConfig {
        Node2VecConfig {
            dim: 16,
            walk_len: 15,
            walks_per_node: 3,
            epochs: 1,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn edge_embedding_concatenates_endpoints() {
        let net = CityProfile::Aalborg.generate(6);
        let emb = RoadEmbeddings::train(&net, &quick_cfg());
        let e = EdgeId(0);
        let v = emb.edge_embedding(&net, e);
        assert_eq!(v.len(), 32);
        let from = net.edge(e).from.index();
        assert_eq!(&v[..16], emb.node_embedding(from));
    }

    #[test]
    fn topologically_close_nodes_are_more_similar() {
        let net = CityProfile::Aalborg.generate(6);
        let emb = RoadEmbeddings::train(&net, &quick_cfg());
        // Compare hop-1 neighbors against far-away nodes (graph distance).
        let sp = dijkstra(&net, NodeId(0), &|_e| 1.0, &[], &[]);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for v in 0..net.num_nodes() {
            let d = sp.dist[v];
            if d >= 1.0 && d <= 2.0 {
                near.push(v);
            } else if d >= 12.0 && d.is_finite() {
                far.push(v);
            }
        }
        assert!(!near.is_empty() && !far.is_empty());
        let avg =
            |xs: &[usize]| xs.iter().map(|&v| emb.node_cosine(0, v)).sum::<f64>() / xs.len() as f64;
        let (n, f) = (avg(&near), avg(&far));
        assert!(n > f, "near {n:.3} should exceed far {f:.3}");
    }
}
