//! Graph representation learning: a from-scratch node2vec (Grover & Leskovec,
//! KDD 2016) with biased second-order random walks and skip-gram negative
//! sampling, plus the paper's two applications of it:
//!
//! * [`temporal`] — the 2016-node temporal graph of §IV-A (288 five-minute
//!   slots × 7 days, with adjacency between consecutive slots, between the
//!   same slots on neighboring days, and across the Sunday→Monday boundary),
//!   embedded with node2vec to produce `t_all`.
//! * [`roadgraph`] — node2vec over the road network's intersection graph
//!   (§IV-B(b)); an edge's topology embedding is the concatenation of its
//!   endpoint embeddings, `s_rn = [n_vi, n_vj]` (Eq. 5).

pub mod node2vec;
pub mod roadgraph;
pub mod skipgram;
pub mod temporal;
pub mod walks;

pub use node2vec::{Node2Vec, Node2VecConfig};
pub use roadgraph::RoadEmbeddings;
pub use temporal::TemporalEmbeddings;
pub use walks::AdjGraph;
