//! Skip-gram with negative sampling (SGNS) over walk corpora.
//!
//! Gradients are closed-form, so this trains with hand-rolled SGD rather than
//! the autodiff stack — word2vec-style.

use rand::rngs::StdRng;
use rand::RngExt;

/// SGNS model state: input ("in") and output ("out") embedding tables.
pub struct SkipGram {
    dim: usize,
    pub w_in: Vec<Vec<f64>>,
    w_out: Vec<Vec<f64>>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl SkipGram {
    pub fn new(rng: &mut StdRng, vocab: usize, dim: usize) -> Self {
        let init = |rng: &mut StdRng| {
            (0..vocab)
                .map(|_| (0..dim).map(|_| rng.random_range(-0.5..0.5) / dim as f64).collect())
                .collect::<Vec<Vec<f64>>>()
        };
        Self { dim, w_in: init(rng), w_out: init(rng) }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One SGD update for a (center, context) pair with `negatives` sampled
    /// uniformly. Returns the pair's loss before the update.
    pub fn train_pair(
        &mut self,
        rng: &mut StdRng,
        center: usize,
        context: usize,
        negatives: usize,
        lr: f64,
    ) -> f64 {
        let vocab = self.w_out.len();
        let mut grad_in = vec![0.0; self.dim];
        let mut loss = 0.0;

        // Positive term: -log σ(z_c · z_ctx).
        {
            let dot: f64 =
                self.w_in[center].iter().zip(&self.w_out[context]).map(|(a, b)| a * b).sum();
            let s = sigmoid(dot);
            loss -= s.max(1e-12).ln();
            let g = s - 1.0; // d loss / d dot
            for d in 0..self.dim {
                grad_in[d] += g * self.w_out[context][d];
                self.w_out[context][d] -= lr * g * self.w_in[center][d];
            }
        }

        // Negative terms: -log σ(-z_c · z_neg).
        for _ in 0..negatives {
            let neg = rng.random_range(0..vocab);
            if neg == context {
                continue;
            }
            let dot: f64 = self.w_in[center].iter().zip(&self.w_out[neg]).map(|(a, b)| a * b).sum();
            let s = sigmoid(dot);
            loss -= (1.0 - s).max(1e-12).ln();
            let g = s; // d loss / d dot
            for d in 0..self.dim {
                grad_in[d] += g * self.w_out[neg][d];
                self.w_out[neg][d] -= lr * g * self.w_in[center][d];
            }
        }

        for d in 0..self.dim {
            self.w_in[center][d] -= lr * grad_in[d];
        }
        loss
    }

    /// Train on a corpus of walks with the given context window.
    /// Returns the mean pair loss of the final epoch.
    pub fn train_walks(
        &mut self,
        rng: &mut StdRng,
        walks: &[Vec<usize>],
        window: usize,
        negatives: usize,
        lr: f64,
        epochs: usize,
    ) -> f64 {
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut pairs = 0usize;
            for walk in walks {
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(window);
                    let hi = (i + window + 1).min(walk.len());
                    for j in lo..hi {
                        if j != i {
                            total += self.train_pair(rng, center, walk[j], negatives, lr);
                            pairs += 1;
                        }
                    }
                }
            }
            last = if pairs > 0 { total / pairs as f64 } else { 0.0 };
        }
        last
    }

    /// Cosine similarity between two nodes' input embeddings.
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (&self.w_in[a], &self.w_in[b]);
        let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na < 1e-12 || nb < 1e-12 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn loss_decreases_with_training() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = SkipGram::new(&mut rng, 20, 8);
        // Two tight clusters: walks alternate within {0..4} or within {5..9}.
        let mut walks = Vec::new();
        for s in 0..50 {
            let base = if s % 2 == 0 { 0 } else { 5 };
            walks.push((0..10).map(|i| base + (i + s) % 5).collect::<Vec<_>>());
        }
        let first = model.train_walks(&mut rng, &walks, 2, 3, 0.05, 1);
        let last = model.train_walks(&mut rng, &walks, 2, 3, 0.05, 10);
        assert!(last < first, "loss should drop: {first} → {last}");
    }

    #[test]
    fn co_occurring_nodes_become_similar() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = SkipGram::new(&mut rng, 10, 8);
        let mut walks = Vec::new();
        for s in 0..80 {
            let base = if s % 2 == 0 { 0 } else { 5 };
            walks.push((0..12).map(|i| base + (i + s) % 5).collect::<Vec<_>>());
        }
        model.train_walks(&mut rng, &walks, 2, 4, 0.05, 15);
        // Within-cluster similarity should exceed cross-cluster similarity.
        let within = model.cosine(0, 1);
        let cross = model.cosine(0, 6);
        assert!(within > cross + 0.2, "within {within:.3} vs cross {cross:.3}");
    }
}
