//! Property-based tests for walks and the temporal graph.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsccl_graphembed::temporal::{build_temporal_graph, temporal_node};
use wsccl_graphembed::AdjGraph;

proptest! {
    /// Walks never use a non-edge, start at the requested node, and respect
    /// the length bound.
    #[test]
    fn walks_respect_graph(
        seed in 0u64..500,
        start in 0usize..30,
        len in 1usize..40,
        p in 0.25f64..4.0,
        q in 0.25f64..4.0,
    ) {
        // A ring plus chords: every node has degree ≥ 2.
        let n = 30;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.extend((0..n / 3).map(|i| (i, (i + n / 2) % n)));
        let g = AdjGraph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(seed);
        let walk = g.node2vec_walk(&mut rng, start, len, p, q);
        prop_assert_eq!(walk[0], start);
        prop_assert!(walk.len() <= len);
        for w in walk.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    /// Temporal-graph adjacency is exactly: slot ±1 (with wrap) and day ±1 at
    /// the same slot (with weekly wrap).
    #[test]
    fn temporal_adjacency_characterization(day in 0usize..7, slot in 0usize..288) {
        let g = build_temporal_graph();
        let u = temporal_node(day, slot);
        for v in g.neighbors(u) {
            let (vd, vs) = (v / 288, v % 288);
            let same_slot_adjacent_day =
                vs == slot && (vd == (day + 1) % 7 || (vd + 1) % 7 == day);
            // Consecutive in the flattened weekly timeline (wrapping).
            let u_lin = day * 288 + slot;
            let v_lin = vd * 288 + vs;
            let consecutive = (u_lin + 1) % 2016 == v_lin || (v_lin + 1) % 2016 == u_lin;
            prop_assert!(
                same_slot_adjacent_day || consecutive,
                "unexpected neighbor ({vd},{vs}) of ({day},{slot})"
            );
        }
    }
}
