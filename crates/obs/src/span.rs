//! Scoped tracing spans: time a lexical scope into a latency histogram.

use std::time::Instant;

use crate::metrics::Registry;

/// Times the scope between [`Span::enter`] and drop, recording the elapsed
/// milliseconds into the registry's `latency_ms` histogram of the same name.
///
/// Against a disabled registry the span is inert — it does not even read the
/// clock — so wrapping hot scopes is safe.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    live: Option<(crate::Histogram, Instant)>,
}

impl Span {
    pub fn enter(registry: &Registry, name: &str) -> Self {
        let live = registry.enabled().then(|| (registry.latency_ms(name), Instant::now()));
        Span { live }
    }

    /// End the span early (identical to dropping it).
    pub fn exit(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.live.take() {
            hist.record(start.elapsed().as_secs_f64() * 1000.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_latency_histogram() {
        let r = Registry::new();
        {
            let _s = r.span("stage");
            std::hint::black_box(0);
        }
        r.span("stage").exit();
        let snap = r.snapshot();
        assert_eq!(snap.histograms[0].name, "stage");
        assert_eq!(snap.histograms[0].count, 2);
        assert!(snap.histograms[0].sum >= 0.0);
    }

    #[test]
    fn span_against_disabled_registry_is_inert() {
        let r = Registry::disabled();
        r.span("stage").exit();
        assert!(r.snapshot().histograms.is_empty());
    }
}
