//! Lock-free metrics: counters, gauges, and fixed-bucket histograms.
//!
//! A [`Registry`] owns the name → metric table behind a mutex that is locked
//! only at registration; the handles it returns ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`-backed atomics that threads update without any
//! lock. Every handle shares the registry's enabled flag, so disabling a
//! registry turns every recording site into a relaxed load plus a branch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The process-wide default registry, **disabled** until someone calls
/// `global().set_enabled(true)`. Library code records into it
/// unconditionally; uninstrumented runs pay one branch per site.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::disabled)
}

struct CounterInner {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

/// Monotonically increasing integer metric.
#[derive(Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

struct GaugeInner {
    enabled: Arc<AtomicBool>,
    /// `f64` bits; a gauge is a last-write-wins sample, not an accumulator.
    bits: AtomicU64,
}

/// Last-write-wins floating-point metric.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    pub fn set(&self, v: f64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    enabled: Arc<AtomicBool>,
    /// Upper bounds of the finite buckets, ascending. `counts` has one extra
    /// slot at the end for values above the last bound.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum as `f64` bits, updated with a CAS loop (no float atomics
    /// on stable).
    sum_bits: AtomicU64,
}

/// Fixed-bucket histogram. Bucket bounds are set at registration and never
/// change; recording is a binary search plus two relaxed atomic updates.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn record(&self, v: f64) {
        let h = &*self.0;
        if !h.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = h.bounds.partition_point(|&b| b < v);
        h.counts[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = h.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match h.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// Default bucket bounds for millisecond latencies (spans, step times).
pub(crate) const TIME_MS_BUCKETS: &[f64] =
    &[0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0];

/// Default bucket bounds for microsecond latencies (per-query inference, e.g.
/// the `embed_us.<backend>` single-path embedding histograms).
pub(crate) const TIME_US_BUCKETS: &[f64] =
    &[10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 50000.0];

#[derive(Default)]
struct Tables {
    counters: HashMap<String, Counter>,
    gauges: HashMap<String, Gauge>,
    histograms: HashMap<String, Histogram>,
}

/// Named metric registry. Cheap handles, one mutex hit per registration.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    tables: Mutex<Tables>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry that records from the start.
    pub fn new() -> Self {
        Self { enabled: Arc::new(AtomicBool::new(true)), tables: Mutex::new(Tables::default()) }
    }

    /// A registry whose handles are no-ops until [`Registry::set_enabled`].
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off for every handle this registry ever issued.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut t = self.tables.lock().expect("metrics registry poisoned");
        t.counters
            .entry(name.to_string())
            .or_insert_with(|| {
                Counter(Arc::new(CounterInner {
                    enabled: Arc::clone(&self.enabled),
                    value: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut t = self.tables.lock().expect("metrics registry poisoned");
        t.gauges
            .entry(name.to_string())
            .or_insert_with(|| {
                Gauge(Arc::new(GaugeInner {
                    enabled: Arc::clone(&self.enabled),
                    bits: AtomicU64::new(f64::NAN.to_bits()),
                }))
            })
            .clone()
    }

    /// Get or create the histogram `name`. Bounds are fixed by whoever
    /// registers first; later callers share the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut t = self.tables.lock().expect("metrics registry poisoned");
        t.histograms
            .entry(name.to_string())
            .or_insert_with(|| {
                debug_assert!(
                    bounds.windows(2).all(|w| w[0] < w[1]),
                    "histogram bounds must be strictly ascending"
                );
                Histogram(Arc::new(HistogramInner {
                    enabled: Arc::clone(&self.enabled),
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// Histogram with the default millisecond-latency buckets.
    pub fn latency_ms(&self, name: &str) -> Histogram {
        self.histogram(name, TIME_MS_BUCKETS)
    }

    /// Histogram with the default microsecond-latency buckets.
    pub fn latency_us(&self, name: &str) -> Histogram {
        self.histogram(name, TIME_US_BUCKETS)
    }

    /// Time a scope into the `latency_ms` histogram `name`; see [`crate::Span`].
    pub fn span(&self, name: &str) -> crate::Span {
        crate::Span::enter(self, name)
    }

    /// Zero every registered metric (handles stay valid). For benchmarks and
    /// tests that want per-window readings.
    pub fn reset(&self) {
        let t = self.tables.lock().expect("metrics registry poisoned");
        for c in t.counters.values() {
            c.0.value.store(0, Ordering::Relaxed);
        }
        for g in t.gauges.values() {
            g.0.bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
        }
        for h in t.histograms.values() {
            for c in &h.0.counts {
                c.store(0, Ordering::Relaxed);
            }
            h.0.count.store(0, Ordering::Relaxed);
            h.0.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }

    /// Consistent-enough point-in-time read of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let t = self.tables.lock().expect("metrics registry poisoned");
        let mut counters: Vec<Sample<u64>> =
            t.counters.iter().map(|(n, c)| Sample { name: n.clone(), value: c.get() }).collect();
        let mut gauges: Vec<Sample<f64>> =
            t.gauges.iter().map(|(n, g)| Sample { name: n.clone(), value: g.get() }).collect();
        let mut histograms: Vec<HistogramSample> = t
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets =
                    h.0.bounds
                        .iter()
                        .zip(&h.0.counts)
                        .map(|(&le, c)| (le, c.load(Ordering::Relaxed)))
                        .collect();
                HistogramSample {
                    name: n.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                    overflow: h.0.counts[h.0.bounds.len()].load(Ordering::Relaxed),
                }
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Point-in-time view of every metric in a registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<Sample<u64>>,
    pub gauges: Vec<Sample<f64>>,
    pub histograms: Vec<HistogramSample>,
}

/// One named metric reading.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample<T> {
    pub name: String,
    pub value: T,
}

/// Point-in-time histogram reading. `buckets` pairs each finite upper bound
/// with the count of values at or below it (non-cumulative); `overflow`
/// counts values above the last bound.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSample {
    pub name: String,
    pub count: u64,
    pub sum: f64,
    pub buckets: Vec<(f64, u64)>,
    pub overflow: u64,
}

impl HistogramSample {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation
    /// within the bucket holding the target rank — the standard
    /// fixed-bucket estimator (Prometheus' `histogram_quantile`). Values in
    /// the overflow bucket report the last finite bound (a lower bound on
    /// the true quantile). `NaN` when the histogram is empty.
    ///
    /// Serving dashboards read p50/p99 latency through this; exact
    /// percentiles (e.g. `BENCH_serve.json`) come from raw samples instead.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        let mut lower = 0.0;
        for &(le, n) in &self.buckets {
            let upto = seen + n;
            if (upto as f64) >= rank && n > 0 {
                let into = (rank - seen as f64) / n as f64;
                return lower + into.clamp(0.0, 1.0) * (le - lower);
            }
            seen = upto;
            lower = le;
        }
        // Target rank lies in the overflow bucket.
        self.buckets.last().map_or(f64::NAN, |&(le, _)| le)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        let r = Registry::new();
        let c = r.counter("steps");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("loss");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
        // Re-registration returns the same underlying metric.
        assert_eq!(r.counter("steps").get(), 5);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        let c = r.counter("steps");
        let g = r.gauge("loss");
        let h = r.latency_ms("step_ms");
        c.inc();
        g.set(1.0);
        h.record(3.0);
        assert_eq!(c.get(), 0);
        assert!(g.get().is_nan());
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_buckets_values() {
        let r = Registry::new();
        let h = r.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 50.0] {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 53.5);
        // `le` is inclusive: 0.5 and 1.0 land in the first bucket.
        assert_eq!(hs.buckets, vec![(1.0, 2), (10.0, 1)]);
        assert_eq!(hs.overflow, 1);
        assert_eq!(hs.mean(), 53.5 / 4.0);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let r = Registry::new();
        let h = r.histogram("q", &[10.0, 20.0, 40.0]);
        // 10 values in (0,10], 10 in (10,20], none beyond.
        for i in 0..10 {
            h.record(i as f64 + 0.5);
            h.record(10.0 + i as f64 + 0.5);
        }
        let hs = &r.snapshot().histograms[0];
        // p50 sits exactly at the first bucket's upper bound.
        assert!((hs.quantile(0.5) - 10.0).abs() < 1e-9, "{}", hs.quantile(0.5));
        // p75 is halfway through the second bucket.
        assert!((hs.quantile(0.75) - 15.0).abs() < 1e-9, "{}", hs.quantile(0.75));
        assert!(hs.quantile(0.0) <= hs.quantile(1.0));
        // Empty histogram → NaN; overflow-only → last finite bound.
        let e = r.histogram("empty", &[1.0]);
        let _ = e;
        let snap = r.snapshot();
        let empty = snap.histograms.iter().find(|s| s.name == "empty").unwrap();
        assert!(empty.quantile(0.5).is_nan());
        let o = r.histogram("over", &[1.0]);
        o.record(100.0);
        let snap = r.snapshot();
        let over = snap.histograms.iter().find(|s| s.name == "over").unwrap();
        assert_eq!(over.quantile(0.99), 1.0);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let r = Registry::new();
        let h = r.histogram("h", &[10.0]);
        let c = r.counter("c");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(i as f64 % 7.0);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        let expected: f64 = (0..1000).map(|i| (i % 7) as f64).sum::<f64>() * 4.0;
        assert!((h.sum() - expected).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_zeroes() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        r.reset();
        assert_eq!(r.counter("a").get(), 0);
        assert_eq!(r.counter("b").get(), 0);
    }
}
