//! Observability primitives for the WSCCL stack: a lock-free metrics
//! registry, scoped tracing spans, a tape profiler for the autodiff graph,
//! and numeric anomaly guards.
//!
//! Design constraints (see DESIGN.md §9):
//!
//! * **Zero dependencies.** This crate sits below `wsccl-nn`; everything is
//!   `std`-only so instrumentation never drags a dependency into the math.
//! * **Near-no-op when disabled.** Metric handles are `Arc`-backed atomics
//!   guarded by one relaxed load; the [`Registry`] mutex is touched only at
//!   registration. The global registry starts *disabled* — an uninstrumented
//!   run pays a branch per recording site and nothing else.
//! * **Bit-for-bit invisible to training.** Nothing in this crate feeds back
//!   into model math: profilers and guards observe values, they never alter
//!   them. The obs-invariance tests in `tests/observability.rs` enforce
//!   identical loss/parameter streams with observability on vs off.

mod anomaly;
mod metrics;
mod process;
mod profile;
mod span;

pub use anomaly::{AnomalyEvent, AnomalyGuard, AnomalyKind, AnomalyPolicy};
pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSample, MetricsSnapshot, Registry, Sample,
};
pub use process::{peak_rss_bytes, rss_bytes};
pub use profile::{OpProfile, OpTiming, TapeProfile, TapeProfiler};
pub use span::Span;
