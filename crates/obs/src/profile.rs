//! Per-op tape profiling.
//!
//! A [`TapeProfiler`] is plain mutable state owned by whoever executes a
//! tape (one per training shard — no sharing, no atomics), accumulating
//! forward/backward wall time per op kind. `wsccl-nn::Graph` drives it when
//! attached; shard profilers are [`TapeProfiler::merge`]d by the training
//! driver and rendered as a [`TapeProfile`] report.

use std::collections::HashMap;

/// Accumulated timings for one op kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpTiming {
    /// Forward executions (tape nodes pushed).
    pub count: u64,
    /// Total forward wall time, nanoseconds. Attributed at node-push time,
    /// so host-side glue between two pushes bills to the later op.
    pub forward_ns: u64,
    /// Total backward wall time, nanoseconds (only nodes that ran backward).
    pub backward_ns: u64,
}

/// Per-op-kind forward/backward time accumulator.
#[derive(Clone, Debug, Default)]
pub struct TapeProfiler {
    entries: HashMap<&'static str, OpTiming>,
}

impl TapeProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_forward(&mut self, op: &'static str, ns: u64) {
        let e = self.entries.entry(op).or_default();
        e.count += 1;
        e.forward_ns += ns;
    }

    pub fn record_backward(&mut self, op: &'static str, ns: u64) {
        self.entries.entry(op).or_default().backward_ns += ns;
    }

    /// Fold another profiler (e.g. a shard's) into this one.
    pub fn merge(&mut self, other: &TapeProfiler) {
        for (op, t) in &other.entries {
            let e = self.entries.entry(op).or_default();
            e.count += t.count;
            e.forward_ns += t.forward_ns;
            e.backward_ns += t.backward_ns;
        }
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the accumulated timings, most expensive op first.
    pub fn snapshot(&self) -> TapeProfile {
        let mut ops: Vec<OpProfile> = self
            .entries
            .iter()
            .map(|(&op, &t)| OpProfile {
                op,
                count: t.count,
                forward_ns: t.forward_ns,
                backward_ns: t.backward_ns,
            })
            .collect();
        ops.sort_by(|a, b| {
            (b.forward_ns + b.backward_ns, a.op).cmp(&(a.forward_ns + a.backward_ns, b.op))
        });
        TapeProfile { ops }
    }
}

/// One row of a [`TapeProfile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpProfile {
    pub op: &'static str,
    pub count: u64,
    pub forward_ns: u64,
    pub backward_ns: u64,
}

impl OpProfile {
    pub fn total_ms(&self) -> f64 {
        (self.forward_ns + self.backward_ns) as f64 / 1e6
    }
}

/// Sorted per-op breakdown (heaviest first).
#[derive(Clone, Debug, Default)]
pub struct TapeProfile {
    pub ops: Vec<OpProfile>,
}

impl TapeProfile {
    pub fn total_forward_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.forward_ns).sum()
    }

    pub fn total_backward_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.backward_ns).sum()
    }

    pub fn get(&self, op: &str) -> Option<&OpProfile> {
        self.ops.iter().find(|o| o.op == op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merge_and_sort() {
        let mut a = TapeProfiler::new();
        a.record_forward("MatMul", 100);
        a.record_forward("MatMul", 50);
        a.record_backward("MatMul", 200);
        a.record_forward("Add", 10);

        let mut b = TapeProfiler::new();
        b.record_forward("Add", 5);
        b.record_backward("Tanh", 1000);
        a.merge(&b);

        let p = a.snapshot();
        assert_eq!(p.ops[0].op, "Tanh");
        let mm = p.get("MatMul").unwrap();
        assert_eq!((mm.count, mm.forward_ns, mm.backward_ns), (2, 150, 200));
        assert_eq!(p.get("Add").unwrap().count, 2);
        assert_eq!(p.total_forward_ns(), 165);
        assert_eq!(p.total_backward_ns(), 1200);
    }

    #[test]
    fn clear_empties_the_profiler() {
        let mut p = TapeProfiler::new();
        p.record_forward("Add", 1);
        assert!(!p.is_empty());
        p.clear();
        assert!(p.is_empty());
        assert!(p.snapshot().ops.is_empty());
    }
}
