//! Numeric anomaly guards: non-finite loss/gradient detection and loss-spike
//! detection with a configurable response policy.
//!
//! The guard is an *observer*: it never changes what the training loop
//! computes. Under [`AnomalyPolicy::Record`] and [`AnomalyPolicy::Warn`] the
//! trajectory with a guard attached is bit-identical to one without;
//! [`AnomalyPolicy::Abort`] panics with context instead of letting a run
//! continue on poisoned numbers.

/// What to do when an anomaly is detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyPolicy {
    /// Keep the event for later inspection ([`AnomalyGuard::events`]).
    Record,
    /// Record and print a warning to stderr.
    Warn,
    /// Record, print, and panic with the event context.
    Abort,
}

/// The kind of numeric anomaly observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    NonFiniteLoss,
    NonFiniteGradient,
    /// A parameter tensor itself went non-finite (caught by post-hoc sweeps,
    /// e.g. the continual-learning loop's per-day parameter health check).
    NonFiniteParam,
    LossSpike,
}

impl AnomalyKind {
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::NonFiniteLoss => "non-finite-loss",
            AnomalyKind::NonFiniteGradient => "non-finite-gradient",
            AnomalyKind::NonFiniteParam => "non-finite-param",
            AnomalyKind::LossSpike => "loss-spike",
        }
    }
}

/// One detected anomaly, with enough context to debug it after the run.
#[derive(Clone, Debug)]
pub struct AnomalyEvent {
    /// Global step counter at detection time.
    pub step: u64,
    pub kind: AnomalyKind,
    /// The offending value (the loss, or the gradient element/norm).
    pub value: f64,
    /// Human-readable context — e.g. the offending parameter name.
    pub context: String,
}

impl std::fmt::Display for AnomalyEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "anomaly[{}] at step {}: value {} ({})",
            self.kind.name(),
            self.step,
            self.value,
            self.context
        )
    }
}

/// Watches the per-step loss stream and externally reported gradient
/// anomalies, applying an [`AnomalyPolicy`].
///
/// Spike detection keeps exponential moving averages of the loss and of its
/// absolute deviation; once `warmup` finite losses have been seen, a loss
/// farther than `spike_factor` deviations from the average is flagged. The
/// averages keep updating after a spike so a genuine regime change re-adapts
/// instead of flagging forever.
#[derive(Clone, Debug)]
pub struct AnomalyGuard {
    policy: AnomalyPolicy,
    spike_factor: f64,
    warmup: u64,
    /// EMA smoothing factor for mean and deviation.
    alpha: f64,
    ema: f64,
    dev: f64,
    seen: u64,
    events: Vec<AnomalyEvent>,
}

impl AnomalyGuard {
    pub fn new(policy: AnomalyPolicy) -> Self {
        Self {
            policy,
            spike_factor: 10.0,
            warmup: 20,
            alpha: 0.1,
            ema: 0.0,
            dev: 0.0,
            seen: 0,
            events: Vec::new(),
        }
    }

    /// Override spike sensitivity: flag losses farther than `factor`
    /// mean-absolute-deviations from the running average, after `warmup`
    /// finite losses have been observed.
    pub fn with_spike(mut self, factor: f64, warmup: u64) -> Self {
        assert!(factor > 0.0, "spike factor must be positive");
        self.spike_factor = factor;
        self.warmup = warmup;
        self
    }

    pub fn policy(&self) -> AnomalyPolicy {
        self.policy
    }

    /// Feed one per-step loss. Returns the event if this step was anomalous.
    /// Skipped steps (the engine reports them as NaN losses) count as
    /// non-finite: every shard hit a non-finite loss to get there.
    pub fn observe_loss(&mut self, step: u64, loss: f64) -> Option<&AnomalyEvent> {
        if !loss.is_finite() {
            return Some(self.report(step, AnomalyKind::NonFiniteLoss, loss, "step loss".into()));
        }
        let spiked = self.seen >= self.warmup && {
            // Deviation floor keeps a flat early curve (dev → 0) from turning
            // normal jitter into spikes.
            let floor = 1e-9 * (1.0 + self.ema.abs());
            (loss - self.ema).abs() > self.spike_factor * self.dev.max(floor)
        };
        let (prev_ema, prev_dev) = (self.ema, self.dev);
        if self.seen == 0 {
            self.ema = loss;
        } else {
            self.dev += self.alpha * ((loss - self.ema).abs() - self.dev);
            self.ema += self.alpha * (loss - self.ema);
        }
        self.seen += 1;
        if spiked {
            let context = format!("loss ema {prev_ema:.6e}, mean abs deviation {prev_dev:.6e}");
            return Some(self.report(step, AnomalyKind::LossSpike, loss, context));
        }
        None
    }

    /// Report an anomaly detected outside the guard (e.g. the training driver
    /// found a non-finite gradient and knows the offending parameter).
    pub fn report(
        &mut self,
        step: u64,
        kind: AnomalyKind,
        value: f64,
        context: String,
    ) -> &AnomalyEvent {
        let event = AnomalyEvent { step, kind, value, context };
        match self.policy {
            AnomalyPolicy::Record => {}
            AnomalyPolicy::Warn => eprintln!("wsccl-obs: {event}"),
            AnomalyPolicy::Abort => {
                eprintln!("wsccl-obs: {event}");
                panic!("training aborted by anomaly guard: {event}");
            }
        }
        self.events.push(event);
        self.events.last().expect("just pushed")
    }

    /// Every anomaly seen so far, in detection order.
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    pub fn take_events(&mut self) -> Vec<AnomalyEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_loss_is_flagged() {
        let mut g = AnomalyGuard::new(AnomalyPolicy::Record);
        assert!(g.observe_loss(0, 1.0).is_none());
        let e = g.observe_loss(1, f64::NAN).expect("NaN loss must flag");
        assert_eq!(e.kind, AnomalyKind::NonFiniteLoss);
        let e = g.observe_loss(2, f64::INFINITY).expect("inf loss must flag");
        assert_eq!(e.kind, AnomalyKind::NonFiniteLoss);
        assert_eq!(g.events().len(), 2);
    }

    #[test]
    fn spike_fires_after_warmup_and_readapts() {
        let mut g = AnomalyGuard::new(AnomalyPolicy::Record).with_spike(5.0, 10);
        // A noisy but stable loss around 1.0 must not flag.
        for i in 0..50u64 {
            let loss = 1.0 + 0.01 * (i as f64).sin();
            assert!(g.observe_loss(i, loss).is_none(), "false positive at {i}");
        }
        let e = g.observe_loss(50, 100.0).expect("100× jump must flag");
        assert_eq!(e.kind, AnomalyKind::LossSpike);
        assert_eq!(e.step, 50);
        // The EMAs keep adapting: a sustained new level stops flagging.
        let mut flagged = 0;
        for i in 51..200u64 {
            if g.observe_loss(i, 100.0).is_some() {
                flagged += 1;
            }
        }
        assert!(flagged < 60, "guard must re-adapt to a new loss level, flagged {flagged}");
        assert!(g.observe_loss(200, 100.0).is_none());
    }

    #[test]
    fn no_spike_detection_during_warmup() {
        let mut g = AnomalyGuard::new(AnomalyPolicy::Record).with_spike(2.0, 5);
        for (i, loss) in [1.0, 100.0, 0.01, 50.0].into_iter().enumerate() {
            assert!(g.observe_loss(i as u64, loss).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "training aborted by anomaly guard")]
    fn abort_policy_panics_with_context() {
        let mut g = AnomalyGuard::new(AnomalyPolicy::Abort);
        g.observe_loss(3, f64::NAN);
    }

    #[test]
    fn external_report_carries_context() {
        let mut g = AnomalyGuard::new(AnomalyPolicy::Record);
        g.report(7, AnomalyKind::NonFiniteGradient, f64::NEG_INFINITY, "param `enc.w1`".into());
        let e = &g.events()[0];
        assert_eq!(e.step, 7);
        assert!(e.context.contains("enc.w1"));
        assert!(format!("{e}").contains("non-finite-gradient"));
    }
}
