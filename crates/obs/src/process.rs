//! Process-level resource readings (resident set size).
//!
//! The streaming data pipeline's bounded-memory contract is expressed in
//! terms of peak RSS; these helpers read it from `/proc/self/status` so both
//! the `datagen.rss_bytes` gauge and the scale smoke-test assertions share
//! one definition. On non-Linux targets the readings are `None` and callers
//! degrade to not reporting memory.

/// Current resident set size in bytes (`VmRSS`), if the platform exposes it.
pub fn rss_bytes() -> Option<u64> {
    read_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Peak resident set size in bytes (`VmHWM`) — the high-water mark since
/// process start. Monotone: suitable for "generating 4× the records must not
/// move the peak" assertions only when measured across separate runs or
/// phases of one process.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kb("VmHWM:").map(|kb| kb * 1024)
}

#[cfg(target_os = "linux")]
fn read_status_kb(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb);
        }
    }
    None
}

#[cfg(not(target_os = "linux"))]
fn read_status_kb(_field: &str) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_readings_are_sane() {
        let rss = rss_bytes().expect("VmRSS readable on linux");
        let peak = peak_rss_bytes().expect("VmHWM readable on linux");
        // A running test binary occupies at least a few hundred KB and less
        // than a terabyte; the peak can never be below the current value.
        assert!(rss > 100 * 1024, "rss {rss}");
        assert!(rss < 1 << 40, "rss {rss}");
        assert!(peak >= rss, "peak {peak} < rss {rss}");
    }
}
