//! The temporal path encoder (§IV).
//!
//! Per edge `e_i` of a temporal path `tp = (p, t)`, the encoder builds
//! `x_{e_i} = [t_all, s_all(e_i)]` where:
//!
//! * `t_all` is the node2vec embedding of the departure time's node in the
//!   2016-node temporal graph (Eq. 2) — a *frozen* input, as in the paper;
//! * `s_all = [s_rn, s_type]` concatenates the frozen road-topology embedding
//!   (Eq. 5) with *trainable* embeddings of the four categorical edge features
//!   (Eq. 3–4).
//!
//! The sequence is encoded by an LSTM (Eq. 7) and mean-pooled into the TPR
//! (Eq. 8). The per-step LSTM outputs are the spatio-temporal edge
//! representations (STERs) consumed by the local WSC loss.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use wsccl_graphembed::{Node2VecConfig, RoadEmbeddings, TemporalEmbeddings};
use wsccl_nn::layers::{Embedding, Linear, Lstm, TransformerBlock};
use wsccl_nn::{kernels, GatherPart, Graph, InferTensor, NodeId, ParamId, Parameters};
use wsccl_roadnet::{EdgeFeatures, Path, RoadNetwork, RoadType};
use wsccl_traffic::SimTime;

/// Sequence model choice for the encoder. The paper uses an LSTM (Eq. 7) and
/// notes that "more advanced sequential models, e.g., Transformer" are drop-in
/// alternatives (§IV-C); both are provided.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeqArch {
    Lstm,
    /// Pre-norm Transformer encoder with the given number of blocks.
    Transformer {
        blocks: usize,
    },
}

/// Encoder architecture parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Embedding widths for the four categorical features (paper: 64/32/16/16).
    pub d_rt: usize,
    pub d_l: usize,
    pub d_o: usize,
    pub d_ts: usize,
    /// node2vec dimension per road-network node; `s_rn` is twice this.
    pub topo_node_dim: usize,
    /// Temporal node2vec dimension (`d_tem`).
    pub d_tem: usize,
    /// LSTM hidden size = TPR dimension (`d_h`; paper: 128).
    pub hidden: usize,
    /// Stacked LSTM layers (paper: 2). Ignored for the Transformer variant.
    pub lstm_layers: usize,
    /// Sequence model (paper default: LSTM).
    pub seq_arch: SeqArch,
    /// If false, the temporal embedding is omitted entirely (the paper's
    /// WSCCL-NT ablation, Table VIII).
    pub use_temporal: bool,
    /// Inference-time aggregation view. Training always uses Eq. 8's mean —
    /// under the cosine-similarity losses the two views are *identical* (sum
    /// = |p| · mean, and cosine is scale-invariant). Downstream heads see the
    /// sum view by default because its magnitude carries path length, the
    /// dominant travel-time factor the paper's 128-dim encoder learns
    /// implicitly (see DESIGN.md §1 on reproduction-scale adaptations).
    pub sum_inference: bool,
    /// node2vec training budget for the two frozen embedding tables.
    pub node2vec_walks: usize,
    pub node2vec_epochs: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            d_rt: 8,
            d_l: 4,
            d_o: 2,
            d_ts: 2,
            topo_node_dim: 8,
            d_tem: 16,
            hidden: 32,
            lstm_layers: 1,
            seq_arch: SeqArch::Lstm,
            use_temporal: true,
            node2vec_walks: 6,
            node2vec_epochs: 2,
            sum_inference: true,
        }
    }
}

impl EncoderConfig {
    /// Minimal widths for fast tests.
    pub fn tiny() -> Self {
        Self {
            d_rt: 4,
            d_l: 2,
            d_o: 2,
            d_ts: 2,
            topo_node_dim: 4,
            d_tem: 16,
            hidden: 16,
            lstm_layers: 1,
            seq_arch: SeqArch::Lstm,
            node2vec_walks: 4,
            node2vec_epochs: 1,
            use_temporal: true,
            sum_inference: true,
        }
    }

    /// Width of the spatial embedding `s_all` (Eq. 6).
    pub fn spatial_dim(&self) -> usize {
        2 * self.topo_node_dim + self.d_rt + self.d_l + self.d_o + self.d_ts
    }

    /// Width of each LSTM input `x_e = [t_all, s_all, phys]`.
    pub fn input_dim(&self) -> usize {
        self.spatial_dim() + PHYS_DIM + if self.use_temporal { self.d_tem } else { 0 }
    }
}

/// Width of the continuous physical edge features appended to `s_all`
/// (normalized length, log-length, free-flow traversal time). §IV-B's feature
/// list is explicitly non-exhaustive ("a number of spatial features,
/// including, e.g., road types, number of lanes"); these continuous features
/// carry the length information that the paper's larger encoder can infer
/// from its 128-dimensional recurrent state.
pub const PHYS_DIM: usize = 3;

/// The temporal path encoder with its frozen embedding tables.
///
/// Trainable state lives in an external [`Parameters`] store so the same
/// encoder definition can be instantiated for the main model and each
/// curriculum expert.
pub struct TemporalPathEncoder {
    cfg: EncoderConfig,
    /// Frozen: per-edge road topology embedding `s_rn` (Eq. 5).
    topo: Vec<Vec<f64>>,
    /// Frozen: temporal embeddings over the 2016-node temporal graph.
    temporal: Option<TemporalEmbeddings>,
    /// Per-edge categorical feature indices, precomputed from the network.
    feat: Vec<EdgeFeatures>,
    /// Per-edge continuous physical features (see [`PHYS_DIM`]).
    phys: Vec<[f64; PHYS_DIM]>,
}

/// The trainable weights of the sequence model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SeqWeights {
    Lstm(Lstm),
    Transformer {
        input_proj: Linear,
        /// Learned positional embedding table (capped at [`MAX_PATH_LEN`]).
        positions: ParamId,
        blocks: Vec<TransformerBlock>,
    },
}

/// Longest path the Transformer position table supports (longer paths share
/// the final position embedding).
pub const MAX_PATH_LEN: usize = 96;

/// The trainable weights of one encoder instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncoderWeights {
    emb_rt: Embedding,
    emb_l: Embedding,
    emb_o: Embedding,
    emb_ts: Embedding,
    seq: SeqWeights,
}

impl TemporalPathEncoder {
    /// Build the frozen parts: runs node2vec on the road network and (if
    /// enabled) the temporal graph. Deterministic per seed.
    pub fn new(net: &RoadNetwork, cfg: EncoderConfig, seed: u64) -> Self {
        let n2v_road = Node2VecConfig {
            dim: cfg.topo_node_dim,
            walks_per_node: cfg.node2vec_walks,
            epochs: cfg.node2vec_epochs,
            seed: seed ^ 0x0AD,
            ..Default::default()
        };
        let road = RoadEmbeddings::train(net, &n2v_road);
        let topo: Vec<Vec<f64>> = (0..net.num_edges())
            .map(|i| road.edge_embedding(net, wsccl_roadnet::EdgeId(i as u32)))
            .collect();
        let temporal = cfg.use_temporal.then(|| {
            let n2v_t = Node2VecConfig {
                dim: cfg.d_tem,
                walks_per_node: cfg.node2vec_walks,
                epochs: cfg.node2vec_epochs,
                seed: seed ^ 0x7E4,
                ..Default::default()
            };
            TemporalEmbeddings::train(&n2v_t)
        });
        let feat = net.edges().iter().map(|e| e.features).collect();
        let phys = net
            .edges()
            .iter()
            .map(|e| {
                let free_flow = e.length / e.features.road_type.free_flow_speed();
                [e.length / 1000.0, (1.0 + e.length).ln() / 8.0, free_flow / 60.0]
            })
            .collect();
        Self { cfg, topo, temporal, feat, phys }
    }

    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// TPR dimensionality (`d_h`).
    pub fn out_dim(&self) -> usize {
        self.cfg.hidden
    }

    /// Register fresh trainable weights in a parameter store.
    pub fn init_weights(&self, params: &mut Parameters, seed: u64) -> EncoderWeights {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE6C0);
        EncoderWeights {
            emb_rt: Embedding::new(params, &mut rng, "enc.rt", RoadType::ALL.len(), self.cfg.d_rt),
            emb_l: Embedding::new(
                params,
                &mut rng,
                "enc.lanes",
                EdgeFeatures::NUM_LANE_CATEGORIES,
                self.cfg.d_l,
            ),
            emb_o: Embedding::new(params, &mut rng, "enc.oneway", 2, self.cfg.d_o),
            emb_ts: Embedding::new(params, &mut rng, "enc.signals", 2, self.cfg.d_ts),
            seq: match self.cfg.seq_arch {
                SeqArch::Lstm => SeqWeights::Lstm(Lstm::new(
                    params,
                    &mut rng,
                    "enc.lstm",
                    self.cfg.input_dim(),
                    self.cfg.hidden,
                    self.cfg.lstm_layers,
                )),
                SeqArch::Transformer { blocks } => SeqWeights::Transformer {
                    input_proj: Linear::new(
                        params,
                        &mut rng,
                        "enc.proj",
                        self.cfg.input_dim(),
                        self.cfg.hidden,
                    ),
                    positions: params.register(
                        "enc.pos",
                        wsccl_nn::init::normal(&mut rng, MAX_PATH_LEN, self.cfg.hidden, 0.1),
                    ),
                    blocks: (0..blocks)
                        .map(|b| {
                            TransformerBlock::new(
                                params,
                                &mut rng,
                                &format!("enc.block{b}"),
                                self.cfg.hidden,
                                2,
                            )
                        })
                        .collect(),
                },
            },
        }
    }

    /// Encode a temporal path. Returns the TPR node and the per-edge STER
    /// nodes (Eq. 7–8).
    pub fn forward(
        &self,
        g: &mut Graph<'_>,
        w: &EncoderWeights,
        path: &Path,
        departure: SimTime,
    ) -> (NodeId, Vec<NodeId>) {
        assert!(!path.is_empty(), "cannot encode an empty path");
        // Frozen temporal embedding, shared across the path's edges. Each
        // edge's input row `[t | topo | rt | l | o | ts | phys]` is assembled
        // by one fused `gather_concat_row` node — constant rows and the four
        // categorical table rows in a single tape op instead of a per-part
        // `EmbedLookup`/`Input` chain plus a `ConcatCols`.
        let t_all = self.temporal.as_ref().map(|t| t.embed(departure));

        let mut inputs = Vec::with_capacity(path.len());
        for &e in path.edges() {
            let f = &self.feat[e.index()];
            let mut parts = Vec::with_capacity(7);
            if let Some(t) = t_all {
                parts.push(GatherPart::Const(t));
            }
            parts.push(GatherPart::Const(&self.topo[e.index()]));
            parts.push(GatherPart::Row(w.emb_rt.param_id(), f.road_type.index()));
            parts.push(GatherPart::Row(w.emb_l.param_id(), f.lanes_index()));
            parts.push(GatherPart::Row(w.emb_o.param_id(), f.one_way as usize));
            parts.push(GatherPart::Row(w.emb_ts.param_id(), f.signals as usize));
            parts.push(GatherPart::Const(&self.phys[e.index()]));
            inputs.push(g.gather_concat_row(&parts));
        }
        let sters = match &w.seq {
            SeqWeights::Lstm(lstm) => lstm.forward(g, &inputs),
            SeqWeights::Transformer { input_proj, positions, blocks } => {
                let stacked = g.concat_rows(&inputs);
                let projected = input_proj.forward(g, stacked);
                let pos_idx: Vec<usize> =
                    (0..inputs.len()).map(|i| i.min(MAX_PATH_LEN - 1)).collect();
                let pos = g.embed_lookup(*positions, &pos_idx);
                let mut h = g.add(projected, pos);
                for block in blocks {
                    h = block.forward(g, h);
                }
                (0..inputs.len()).map(|i| g.slice_rows(h, i, i + 1)).collect()
            }
        };
        let stacked = g.concat_rows(&sters);
        let tpr = g.mean_rows(stacked);
        (tpr, sters)
    }

    /// Inference: encode a path to a plain vector (builds a throwaway graph).
    ///
    /// Applies the configured aggregation view: mean (Eq. 8) or its
    /// length-scaled sum equivalent (`sum_inference`).
    pub fn embed(
        &self,
        params: &Parameters,
        w: &EncoderWeights,
        path: &Path,
        departure: SimTime,
    ) -> Vec<f64> {
        let mut g = Graph::new(params);
        let (tpr, _) = self.forward(&mut g, w, path, departure);
        let mut v = g.value(tpr).data().to_vec();
        if self.cfg.sum_inference {
            let n = path.len() as f64;
            v.iter_mut().for_each(|x| *x *= n);
        }
        v
    }

    /// Freeze trained weights into the f32 inference representation used by
    /// the tape-free [`TemporalPathEncoder::embed_frozen`] fast path.
    ///
    /// The per-edge input row is constant once training ends (topology,
    /// categorical embeddings, and physical features don't depend on the
    /// departure time), so it is precomputed per edge — inference then only
    /// prepends the temporal row. Returns `None` for the Transformer
    /// architecture, which keeps using the f64 tape.
    pub fn freeze(&self, params: &Parameters, w: &EncoderWeights) -> Option<FrozenEncoder> {
        let SeqWeights::Lstm(lstm) = &w.seq else { return None };
        let t_dim = if self.cfg.use_temporal { self.cfg.d_tem } else { 0 };
        let input_dim = self.cfg.input_dim();
        let s_dim = input_dim - t_dim;
        let num_edges = self.feat.len();

        let emb_row = |emb: &Embedding, idx: usize| -> Vec<f64> {
            params.value(emb.param_id()).row_slice(idx).to_vec()
        };
        let mut static_rows = Vec::with_capacity(num_edges * s_dim);
        for e in 0..num_edges {
            let f = &self.feat[e];
            static_rows.extend(self.topo[e].iter().map(|&v| v as f32));
            static_rows.extend(emb_row(&w.emb_rt, f.road_type.index()).iter().map(|&v| v as f32));
            static_rows.extend(emb_row(&w.emb_l, f.lanes_index()).iter().map(|&v| v as f32));
            static_rows.extend(emb_row(&w.emb_o, f.one_way as usize).iter().map(|&v| v as f32));
            static_rows.extend(emb_row(&w.emb_ts, f.signals as usize).iter().map(|&v| v as f32));
            static_rows.extend(self.phys[e].iter().map(|&v| v as f32));
        }
        debug_assert_eq!(static_rows.len(), num_edges * s_dim);

        let layers: Vec<FrozenLstmLayer> = lstm
            .layer_params()
            .iter()
            .map(|&(wx, wh, b)| FrozenLstmLayer {
                in_dim: params.value(wx).rows(),
                wx: InferTensor::from_tensor(params.value(wx)),
                wh: InferTensor::from_tensor(params.value(wh)),
                b: params.value(b).data().iter().map(|&v| v as f32).collect(),
            })
            .collect();

        // The layer-0 input transform `x(e)·Wₓ` depends only on the edge —
        // the static feature row is fixed per edge once the weights freeze —
        // so it is precomputed here for every edge in one matmul. Inference
        // then replaces a per-timestep `s_dim × 4h` matmul with a 4h-wide
        // vector add. Costs `num_edges × 4h` f32 of memory (vs
        // `num_edges × s_dim` for the raw rows), a deliberate serving-side
        // trade.
        let gates = 4 * self.cfg.hidden;
        let mut edge_gates = vec![0f32; num_edges * gates];
        kernels::active().matmul_acc_f32(
            num_edges,
            s_dim,
            gates,
            &static_rows,
            &layers[0].wx.data()[t_dim * gates..],
            &mut edge_gates,
        );

        Some(FrozenEncoder {
            hidden: self.cfg.hidden,
            t_dim,
            sum_inference: self.cfg.sum_inference,
            edge_gates,
            layers,
        })
    }

    /// Tape-free f32 inference: one path embedding entirely through the
    /// active [`wsccl_nn::kernels`] backend's f32 kernels.
    ///
    /// Matches [`TemporalPathEncoder::embed`] up to f32 rounding — the drift
    /// bound is asserted by the `f32_embedding_drift` test and documented in
    /// DESIGN.md.
    pub fn embed_frozen(
        &self,
        frozen: &FrozenEncoder,
        path: &Path,
        departure: SimTime,
    ) -> Vec<f64> {
        assert!(!path.is_empty(), "cannot encode an empty path");
        let kn = kernels::active();
        let (hidden, t_dim) = (frozen.hidden, frozen.t_dim);
        let nl = frozen.layers.len();
        let gates = 4 * hidden;

        // The temporal row is constant over the whole path, so its gate
        // contribution is folded into the layer-0 bias once — `z₀ = b + t·Wₜ`
        // (Wₜ is the first `t_dim` rows of wx) — instead of re-multiplied at
        // every edge.
        let mut z0 = frozen.layers[0].b.clone();
        if t_dim > 0 {
            let t_row: Vec<f32> = self
                .temporal
                .as_ref()
                .expect("t_dim > 0 implies temporal table")
                .embed(departure)
                .iter()
                .map(|&v| v as f32)
                .collect();
            kn.matmul_acc_f32(1, t_dim, gates, &t_row, frozen.layers[0].wx.data(), &mut z0);
        }

        // Flat per-layer state, plus one input row reused across layers.
        let mut h = vec![0f32; nl * hidden];
        let mut c = vec![0f32; nl * hidden];
        let mut z = vec![0f32; gates];
        let mut cur = vec![0f32; hidden];
        let mut acc = vec![0f32; hidden];

        for (t, &e) in path.edges().iter().enumerate() {
            let idx = e.index();
            for (li, layer) in frozen.layers.iter().enumerate() {
                if li == 0 {
                    // Layer-0 input transform is a table row (baked at
                    // freeze time): z = z₀ + x(e)·Wₓ.
                    z.copy_from_slice(&z0);
                    kn.add_assign_f32(&mut z, &frozen.edge_gates[idx * gates..(idx + 1) * gates]);
                } else {
                    debug_assert_eq!(layer.in_dim, hidden);
                    z.copy_from_slice(&layer.b);
                    kn.matmul_acc_f32(1, hidden, gates, &cur, layer.wx.data(), &mut z);
                }
                // h is exactly zero at the first step, so the recurrent
                // matmul contributes nothing; skipped identically in the
                // batched path (bitwise parity).
                if t > 0 {
                    kn.matmul_acc_f32(
                        1,
                        hidden,
                        gates,
                        &h[li * hidden..(li + 1) * hidden],
                        layer.wh.data(),
                        &mut z,
                    );
                }
                kn.lstm_gates_infer_f32(
                    hidden,
                    &z,
                    &mut c[li * hidden..(li + 1) * hidden],
                    &mut h[li * hidden..(li + 1) * hidden],
                );
                if li + 1 < nl {
                    cur.copy_from_slice(&h[li * hidden..(li + 1) * hidden]);
                }
            }
            kn.add_assign_f32(&mut acc, &h[(nl - 1) * hidden..nl * hidden]);
        }

        // Mean over steps (Eq. 8); the sum view is mean × len, i.e. no scale.
        if !frozen.sum_inference {
            kn.scale_assign_f32(&mut acc, 1.0 / path.len() as f32);
        }
        acc.iter().map(|&v| f64::from(v)).collect()
    }

    /// Batched [`TemporalPathEncoder::embed_frozen`]: `B` temporal paths
    /// through **one** fused f32 forward pass per timestep instead of `B`
    /// strided ones.
    ///
    /// Queries are processed in descending path-length order so the active
    /// set at every timestep is a contiguous prefix — the per-layer matmuls
    /// then run over `(n_active × dim)` row blocks with no gather/scatter.
    /// Every kernel involved computes each output row independently of the
    /// batch height, so each returned embedding is **bitwise identical** to
    /// the corresponding single-query [`TemporalPathEncoder::embed_frozen`]
    /// call under either backend (asserted by the `embed_batch` parity test).
    ///
    /// `scratch` holds the reusable batch buffers; a long-running server
    /// allocates it once and feeds every batch through it.
    pub fn embed_frozen_batch(
        &self,
        frozen: &FrozenEncoder,
        queries: &[(&Path, SimTime)],
        scratch: &mut BatchScratch,
    ) -> Vec<Vec<f64>> {
        let b = queries.len();
        if b == 0 {
            return Vec::new();
        }
        for (path, _) in queries {
            assert!(!path.is_empty(), "cannot encode an empty path");
        }
        let kn = kernels::active();
        let (hidden, t_dim) = (frozen.hidden, frozen.t_dim);
        let nl = frozen.layers.len();
        let gates = 4 * hidden;

        let s = scratch;
        // Descending length; stable, so equal-length queries keep their order.
        s.order.clear();
        s.order.extend(0..b);
        s.order.sort_by_key(|&i| std::cmp::Reverse(queries[i].0.len()));

        // Frozen temporal rows, one per query (narrowed once, like
        // `embed_frozen`), folded straight into the per-query layer-0 bias:
        // `z₀[r] = b + t[r]·Wₜ` in one batched matmul, so the temporal part
        // of wx is never touched again inside the timestep loop.
        s.t_rows.clear();
        s.z0.clear();
        for _ in 0..b {
            s.z0.extend_from_slice(&frozen.layers[0].b);
        }
        if t_dim > 0 {
            let temporal = self.temporal.as_ref().expect("t_dim > 0 implies temporal table");
            for &qi in &s.order {
                s.t_rows.extend(temporal.embed(queries[qi].1).iter().map(|&v| v as f32));
            }
            kn.matmul_acc_f32(b, t_dim, gates, &s.t_rows, frozen.layers[0].wx.data(), &mut s.z0);
        }

        s.z.clear();
        s.z.resize(if nl > 1 { b * gates } else { 0 }, 0.0);
        s.h.clear();
        s.h.resize(nl * b * hidden, 0.0);
        s.c.clear();
        s.c.resize(nl * b * hidden, 0.0);
        s.acc.clear();
        s.acc.resize(b * hidden, 0.0);

        let max_len = queries[s.order[0]].0.len();

        // Pre-assemble the layer-0 pre-activations for the whole timestep ×
        // row plane: `z = z₀[r] + edge_gates[e]` — a copy plus a 4h-wide
        // vector add per (step, row) pair, since the input transform was
        // baked into the frozen per-edge table. Rows are laid out step-major
        // (step t's active prefix starts at `row_off[t]`); the per-element
        // arithmetic (z₀ init, then the same adds) is exactly what
        // `embed_frozen` computes, keeping bitwise parity. Only the
        // recurrent h·Wh term, which depends on the previous step's output,
        // stays in the loop.
        s.row_off.clear();
        s.zpre.clear();
        {
            let mut n_act = b;
            for t in 0..max_len {
                while n_act > 0 && queries[s.order[n_act - 1]].0.len() <= t {
                    n_act -= 1;
                }
                s.row_off.push(s.zpre.len() / gates);
                for (r, &qi) in s.order[..n_act].iter().enumerate() {
                    let e = queries[qi].0.edges()[t].index();
                    let at = s.zpre.len();
                    s.zpre.extend_from_slice(&s.z0[r * gates..(r + 1) * gates]);
                    kn.add_assign_f32(
                        &mut s.zpre[at..],
                        &frozen.edge_gates[e * gates..(e + 1) * gates],
                    );
                }
            }
        }

        let mut n_active = b;
        for t in 0..max_len {
            // Shrink the active prefix: orders are length-sorted, so paths
            // retire from the back.
            while n_active > 0 && queries[s.order[n_active - 1]].0.len() <= t {
                n_active -= 1;
            }
            debug_assert!(n_active > 0);

            for (li, layer) in frozen.layers.iter().enumerate() {
                let z_t: &mut [f32] = if li == 0 {
                    // Input-side pre-activations were fused above; step t's
                    // rows start at row_off[t].
                    let r0 = s.row_off[t] * gates;
                    &mut s.zpre[r0..r0 + n_active * gates]
                } else {
                    debug_assert_eq!(layer.in_dim, hidden);
                    for r in 0..n_active {
                        s.z[r * gates..(r + 1) * gates].copy_from_slice(&layer.b);
                    }
                    kn.matmul_acc_f32(
                        n_active,
                        hidden,
                        gates,
                        &s.h[(li - 1) * b * hidden..(li - 1) * b * hidden + n_active * hidden],
                        layer.wx.data(),
                        &mut s.z[..n_active * gates],
                    );
                    &mut s.z[..n_active * gates]
                };
                let (h_l, c_l) = (
                    &mut s.h[li * b * hidden..li * b * hidden + n_active * hidden],
                    &mut s.c[li * b * hidden..li * b * hidden + n_active * hidden],
                );
                // h ≡ 0 at the first step; skipped identically in
                // `embed_frozen` (bitwise parity).
                if t > 0 {
                    kn.matmul_acc_f32(n_active, hidden, gates, h_l, layer.wh.data(), z_t);
                }
                kn.lstm_gates_infer_batch_f32(n_active, hidden, z_t, c_l, h_l);
            }
            kn.add_assign_f32(
                &mut s.acc[..n_active * hidden],
                &s.h[(nl - 1) * b * hidden..(nl - 1) * b * hidden + n_active * hidden],
            );
        }

        // Unsort and widen; the mean view scales each row by its own length.
        let mut out = vec![Vec::new(); b];
        for (r, &qi) in s.order.iter().enumerate() {
            let row = &mut s.acc[r * hidden..(r + 1) * hidden];
            if !frozen.sum_inference {
                kn.scale_assign_f32(row, 1.0 / queries[qi].0.len() as f32);
            }
            out[qi] = row.iter().map(|&v| f64::from(v)).collect();
        }
        out
    }
}

/// Reusable buffers for [`TemporalPathEncoder::embed_frozen_batch`]. One
/// instance per serving loop; every field is length-reset per batch, so the
/// steady state allocates nothing.
#[derive(Default)]
pub struct BatchScratch {
    /// Query indices in descending path-length order.
    order: Vec<usize>,
    /// Per-query narrowed temporal rows (`B × t_dim`), in `order`.
    t_rows: Vec<f32>,
    /// Per-query layer-0 gate bias with the temporal contribution folded in
    /// (`B × 4h`), in `order`.
    z0: Vec<f32>,
    /// Fused-row start (in rows) of each timestep's active block within
    /// `zpre`.
    row_off: Vec<usize>,
    /// Layer-0 gate pre-activations for every (timestep, active row) pair
    /// (`Σ lengths × 4h`): z₀ + the frozen per-edge input row, the
    /// recurrent term accumulated in-place per step. Peak scratch memory is
    /// `≈ Σ lengths × 16h` bytes — a 16 × 200-edge batch at h = 32 is ~1.6 MB.
    zpre: Vec<f32>,
    /// Gate pre-activations for layers above 0 (`B × 4h`; empty when the
    /// stack is a single layer).
    z: Vec<f32>,
    /// Hidden state per layer (`layers × B × h`, layer-major).
    h: Vec<f32>,
    /// Cell state per layer (`layers × B × h`).
    c: Vec<f32>,
    /// Running TPR sums (`B × h`).
    acc: Vec<f32>,
}

/// One LSTM layer's weights, narrowed to f32 (`[i|f|g|o]` gate packing
/// unchanged).
struct FrozenLstmLayer {
    in_dim: usize,
    wx: InferTensor,
    wh: InferTensor,
    b: Vec<f32>,
}

/// Trained encoder state narrowed to f32 for tape-free single-path inference
/// (see [`TemporalPathEncoder::freeze`]). Immutable and `Sync`: any number of
/// threads can embed concurrently through a shared reference.
pub struct FrozenEncoder {
    hidden: usize,
    /// Temporal prefix width (0 for the WSCCL-NT ablation).
    t_dim: usize,
    sum_inference: bool,
    /// `num_edges × 4h` precomputed layer-0 input pre-activations
    /// `x(e)·Wₓ` — the static feature row of an edge never changes once
    /// frozen, so its whole gate contribution is baked at freeze time (see
    /// [`TemporalPathEncoder::freeze`]).
    edge_gates: Vec<f32>,
    layers: Vec<FrozenLstmLayer>,
}

impl FrozenEncoder {
    /// TPR dimensionality.
    pub fn dim(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::CityProfile;

    fn setup() -> (RoadNetwork, TemporalPathEncoder) {
        let net = CityProfile::Aalborg.generate(2);
        let enc = TemporalPathEncoder::new(&net, EncoderConfig::tiny(), 2);
        (net, enc)
    }

    fn some_path(net: &RoadNetwork, len: usize) -> Path {
        // Greedy walk from node 0.
        let mut edges = Vec::new();
        let mut cur = wsccl_roadnet::NodeId(0);
        for _ in 0..len {
            let e = net.out_edges(cur)[0];
            edges.push(e);
            cur = net.edge(e).to;
        }
        Path::new(net, edges).expect("valid walk")
    }

    #[test]
    fn tpr_has_configured_dimension() {
        let (net, enc) = setup();
        let mut params = Parameters::new();
        let w = enc.init_weights(&mut params, 1);
        let path = some_path(&net, 5);
        let v = enc.embed(&mut params, &w, &path, SimTime::from_hm(0, 8, 0));
        assert_eq!(v.len(), enc.out_dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn departure_time_changes_the_representation() {
        let (net, enc) = setup();
        let mut params = Parameters::new();
        let w = enc.init_weights(&mut params, 1);
        let path = some_path(&net, 6);
        let morning = enc.embed(&mut params, &w, &path, SimTime::from_hm(0, 8, 0));
        let night = enc.embed(&mut params, &w, &path, SimTime::from_hm(0, 2, 0));
        let diff: f64 = morning.iter().zip(&night).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "temporal input should affect the TPR");
    }

    #[test]
    fn nt_variant_ignores_departure_time() {
        let net = CityProfile::Aalborg.generate(2);
        let cfg = EncoderConfig { use_temporal: false, ..EncoderConfig::tiny() };
        let enc = TemporalPathEncoder::new(&net, cfg, 2);
        let mut params = Parameters::new();
        let w = enc.init_weights(&mut params, 1);
        let path = some_path(&net, 6);
        let a = enc.embed(&mut params, &w, &path, SimTime::from_hm(0, 8, 0));
        let b = enc.embed(&mut params, &w, &path, SimTime::from_hm(3, 22, 0));
        assert_eq!(a, b, "WSCCL-NT must be time-invariant");
    }

    #[test]
    fn sters_match_path_length_and_feed_gradients() {
        let (net, enc) = setup();
        let mut params = Parameters::new();
        let w = enc.init_weights(&mut params, 1);
        let path = some_path(&net, 4);
        let mut g = Graph::new(&params);
        let (tpr, sters) = enc.forward(&mut g, &w, &path, SimTime::from_hm(1, 9, 0));
        assert_eq!(sters.len(), 4);
        let loss = g.sum_all(tpr);
        g.backward(loss);
        let touched = params
            .ids()
            .filter(|&id| {
                g.grads().grad(id).is_some_and(|t| t.data().iter().any(|v| v.abs() > 0.0))
            })
            .count();
        assert!(touched > 0, "backward should reach trainable weights");
    }

    #[test]
    fn different_paths_embed_differently() {
        let (net, enc) = setup();
        let mut params = Parameters::new();
        let w = enc.init_weights(&mut params, 1);
        let p1 = some_path(&net, 4);
        let p2 = some_path(&net, 9);
        let t = SimTime::from_hm(2, 10, 0);
        let a = enc.embed(&mut params, &w, &p1, t);
        let b = enc.embed(&mut params, &w, &p2, t);
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod transformer_tests {
    use super::*;
    use wsccl_roadnet::CityProfile;

    fn some_path(net: &RoadNetwork, len: usize) -> Path {
        let mut edges = Vec::new();
        let mut cur = wsccl_roadnet::NodeId(0);
        for _ in 0..len {
            let e = net.out_edges(cur)[0];
            edges.push(e);
            cur = net.edge(e).to;
        }
        Path::new(net, edges).expect("valid walk")
    }

    #[test]
    fn transformer_encoder_produces_valid_tprs() {
        let net = CityProfile::Aalborg.generate(2);
        let cfg =
            EncoderConfig { seq_arch: SeqArch::Transformer { blocks: 1 }, ..EncoderConfig::tiny() };
        let enc = TemporalPathEncoder::new(&net, cfg, 2);
        let mut params = Parameters::new();
        let w = enc.init_weights(&mut params, 1);
        let path = some_path(&net, 6);
        let v = enc.embed(&mut params, &w, &path, SimTime::from_hm(0, 8, 0));
        assert_eq!(v.len(), enc.out_dim());
        assert!(v.iter().all(|x| x.is_finite()));
        // Time-sensitive, like the LSTM variant.
        let u = enc.embed(&mut params, &w, &path, SimTime::from_hm(0, 2, 0));
        assert_ne!(v, u);
    }

    #[test]
    fn transformer_gradients_flow_end_to_end() {
        let net = CityProfile::Aalborg.generate(2);
        let cfg =
            EncoderConfig { seq_arch: SeqArch::Transformer { blocks: 2 }, ..EncoderConfig::tiny() };
        let enc = TemporalPathEncoder::new(&net, cfg, 2);
        let mut params = Parameters::new();
        let w = enc.init_weights(&mut params, 1);
        let path = some_path(&net, 5);
        let mut g = Graph::new(&params);
        let (tpr, sters) = enc.forward(&mut g, &w, &path, SimTime::from_hm(1, 9, 0));
        assert_eq!(sters.len(), 5);
        let loss = g.sum_all(tpr);
        g.backward(loss);
        let touched = params
            .ids()
            .filter(|&id| {
                g.grads().grad(id).is_some_and(|t| t.data().iter().any(|v| v.abs() > 0.0))
            })
            .count();
        assert!(touched > params.len() / 2, "{touched} of {}", params.len());
    }
}
