//! Continual learning under traffic drift (ROADMAP's "closing the production
//! loop"): an incremental re-training driver over the deterministic drift
//! model of [`wsccl_traffic::drift`].
//!
//! Each simulated day the driver (1) realizes that day's drifted congestion,
//! (2) collects fresh weakly-labeled samples under it, (3) re-enters the
//! curriculum stage schedule over a mixed pool of fresh samples and a bounded
//! replay reservoir of past samples — replayed samples keep the weak TCI
//! label from their collection day (the weak-label replay of Wang et al.'s
//! multitask weakly-supervised OD-TTE setup), fresh samples are labeled by
//! the drifted day's [`TciLabeler`] — then (4) absorbs the fresh samples into
//! the reservoir and sweeps the parameters for numeric damage.
//!
//! Everything stochastic is a pure function of `(episode_seed, day)`: the
//! drift realization, the fresh-sample stream, the replay accept/replace
//! decisions, and the curriculum shuffle. The episode is therefore
//! bit-identical across thread counts, and the whole mid-episode state
//! (day counter + reservoir) serializes into an [`EngineCheckpoint`] so a
//! killed episode resumes exactly.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use wsccl_datagen::TemporalPathSample;
use wsccl_obs::AnomalyKind;
pub use wsccl_obs::{AnomalyGuard, AnomalyPolicy};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::gen::mix64;
use wsccl_traffic::{
    CongestionModel, DriftConfig, DriftDay, DriftModel, IndexedTripGen, SimTime, TciLabeler,
    TripConfig, WeakLabel, WeakLabeler,
};
use wsccl_train::{NoopObserver, ReplayBuffer, TrainObserver};

use crate::encoder::TemporalPathEncoder;
use crate::persist::EngineCheckpoint;
use crate::wsc::WscModel;

/// RNG-stream salts (same discipline as the generators in `wsccl-traffic`).
const SALT_REPLAY: u64 = 0x5EED_4E91;
const SALT_FRESH: u64 = 0xDA7A_0001;
const SALT_STAGES: u64 = 0xC42_5106;
/// Eval samples use trip indices far above any fresh index so the two
/// streams never overlap.
const EVAL_INDEX_OFFSET: u64 = 1 << 40;

/// Parameters of a continual-learning episode.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContinualConfig {
    /// Day-over-day drift of the congestion model.
    pub drift: DriftConfig,
    /// Fresh samples collected per simulated day.
    pub fresh_per_day: usize,
    /// Held-out samples per day for the embedding-quality probe.
    pub eval_per_day: usize,
    /// Replay reservoir capacity (past samples mixed into each day's pool).
    pub replay_capacity: usize,
    /// Curriculum stages re-entered on each drift day.
    pub retrain_stages: usize,
    /// Full-pool epochs after the staged warm-up.
    pub retrain_epochs: usize,
    /// Re-training learning rate as a fraction of the model's from-scratch
    /// rate (1.0 = no change). Warm-started fine-tuning is typically run
    /// cooler than from-scratch training.
    pub retrain_lr_scale: f64,
    /// Trip generation parameters for the day's collection.
    pub trip: TripConfig,
    /// Master seed of the episode (drift, sampling, replay, shuffles).
    pub episode_seed: u64,
}

impl ContinualConfig {
    /// Smoke-test scale: a few dozen samples per day.
    pub fn tiny(episode_seed: u64) -> Self {
        Self {
            drift: DriftConfig::default(),
            fresh_per_day: 48,
            eval_per_day: 32,
            replay_capacity: 48,
            retrain_stages: 2,
            retrain_epochs: 1,
            retrain_lr_scale: 1.0,
            trip: TripConfig::default(),
            episode_seed,
        }
    }
}

/// A replayed sample: the temporal path plus the weak TCI label it was given
/// on its collection day. The label is pinned — re-training mixes old and
/// fresh weak labels rather than re-labeling history under today's traffic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplaySample {
    pub path: Path,
    pub departure: SimTime,
    pub label: WeakLabel,
}

/// Serialized mid-episode state, embedded in an [`EngineCheckpoint`] so
/// kill-and-resume holds between days.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContinualState {
    /// Days completed so far (= the next day to run).
    pub day: u64,
    pub cfg: ContinualConfig,
    /// The episode's day-0 base congestion model.
    pub base: CongestionModel,
    /// Total samples offered to the replay reservoir.
    pub replay_seen: u64,
    /// Current reservoir contents.
    pub replay_items: Vec<ReplaySample>,
}

/// What one [`ContinualTrainer::run_day`] did, for logs and the dashboard.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DayReport {
    pub day: u64,
    /// That day's drift summary (incidents, peak shift, roadworks).
    pub drift: DriftDay,
    /// Label margin of the (pre-retrain) model on the day's eval samples.
    pub quality_before: f64,
    /// Label margin after incremental re-training.
    pub quality_after: f64,
    /// Optimizer steps spent re-training.
    pub retrain_steps: u64,
    /// Replayed samples mixed into the pool.
    pub replay_mixed: usize,
    /// Fresh samples collected.
    pub fresh: usize,
    /// Anomaly-guard events raised during the day.
    pub anomalies: usize,
}

/// Labels a day's mixed pool: replayed samples by their pinned
/// collection-day label (keyed by departure second — effectively unique for
/// hash-drawn departures; a collision harmlessly falls back to the current
/// labeler), fresh samples by the current day's TCI labeler.
struct MixedLabeler<'a> {
    current: &'a TciLabeler,
    pinned: HashMap<u32, WeakLabel>,
}

impl WeakLabeler for MixedLabeler<'_> {
    fn label(&self, t: SimTime) -> WeakLabel {
        match self.pinned.get(&t.seconds()) {
            Some(&l) => l,
            None => self.current.label(t),
        }
    }

    fn num_classes(&self) -> usize {
        self.current.num_classes()
    }

    fn name(&self) -> &'static str {
        "TCI-mixed"
    }
}

/// Embedding-quality probe: mean same-label cosine similarity minus mean
/// cross-label cosine similarity over all sample pairs (labels from
/// `labeler`). Positive = the embedding space separates the weak classes;
/// drift erodes it, re-training should restore it. Returns 0 when the
/// sample set has no same-label or no cross-label pair.
///
/// The pairwise-margin math lives with the other evaluation metrics in
/// `wsccl_downstream::metrics::label_margin`; this wrapper owns only the
/// model/labeler plumbing.
pub fn label_margin(
    model: &WscModel,
    samples: &[TemporalPathSample],
    labeler: &dyn WeakLabeler,
) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let embs: Vec<Vec<f64>> = samples.iter().map(|s| model.embed(&s.path, s.departure)).collect();
    let labels: Vec<usize> =
        samples.iter().map(|s| labeler.label(s.departure).class_index()).collect();
    wsccl_downstream::metrics::label_margin(&embs, &labels)
}

/// The incremental re-training driver: owns the model, the drift episode,
/// and the replay reservoir; advances one simulated day at a time.
pub struct ContinualTrainer {
    model: WscModel,
    encoder_seed: u64,
    base: CongestionModel,
    drift: DriftModel,
    replay: ReplayBuffer<ReplaySample>,
    cfg: ContinualConfig,
    day: u64,
}

impl ContinualTrainer {
    /// Start an episode from a (typically pre-trained) model. `base` is the
    /// congestion model the original corpus was collected under (day 0);
    /// `encoder_seed` is the seed of the frozen encoder tables, recorded into
    /// checkpoints exactly as in [`WscModel::checkpoint`].
    pub fn new(
        model: WscModel,
        encoder_seed: u64,
        base: CongestionModel,
        cfg: ContinualConfig,
    ) -> Self {
        let drift = DriftModel::new(cfg.drift.clone(), cfg.episode_seed);
        let replay = ReplayBuffer::new(cfg.replay_capacity, mix64(cfg.episode_seed ^ SALT_REPLAY));
        Self { model, encoder_seed, base, drift, replay, cfg, day: 0 }
    }

    pub fn model(&self) -> &WscModel {
        &self.model
    }

    /// Mutable model access (test instrumentation, e.g. fault injection).
    pub fn model_mut(&mut self) -> &mut WscModel {
        &mut self.model
    }

    /// Days completed so far.
    pub fn day(&self) -> u64 {
        self.day
    }

    pub fn config(&self) -> &ContinualConfig {
        &self.cfg
    }

    pub fn replay_items(&self) -> &[ReplaySample] {
        &self.replay.items()
    }

    /// That day's drifted congestion (pure in `(episode_seed, day)`).
    pub fn day_model(&self, net: &RoadNetwork, day: u64) -> CongestionModel {
        self.drift.day_model(net, &self.base, day)
    }

    /// The day's deterministic fresh-collection and eval streams — exactly
    /// the samples [`Self::run_day`] will use for that day. External
    /// baselines (e.g. the full-retrain ceiling in `bench_drift`) score
    /// themselves on the same eval set to stay comparable.
    pub fn day_samples(
        &self,
        net: &RoadNetwork,
        day: u64,
    ) -> (Vec<TemporalPathSample>, Vec<TemporalPathSample>) {
        let day_model = self.day_model(net, day);
        (
            self.generate(net, &day_model, day, 0, self.cfg.fresh_per_day),
            self.generate(net, &day_model, day, EVAL_INDEX_OFFSET, self.cfg.eval_per_day),
        )
    }

    /// Deterministic per-day sample stream: `IndexedTripGen` over the drifted
    /// model, trip indices `offset..offset+n`.
    fn generate(
        &self,
        net: &RoadNetwork,
        day_model: &CongestionModel,
        day: u64,
        offset: u64,
        n: usize,
    ) -> Vec<TemporalPathSample> {
        let seed = mix64(self.cfg.episode_seed ^ SALT_FRESH) ^ mix64(day);
        let gen = IndexedTripGen::new(net, day_model, self.cfg.trip.clone(), seed);
        (0..n as u64)
            .map(|i| {
                let t = gen.trip(offset + i);
                TemporalPathSample { path: t.path, departure: t.departure }
            })
            .collect()
    }

    /// Run one simulated day: realize drift, collect fresh samples, re-enter
    /// the curriculum schedule over fresh + replay, absorb the fresh samples,
    /// and sweep the parameters for non-finite values (reported to `guard`
    /// with the offending parameter named). Emits `drift/day-N` and
    /// `retrain/stage-K` (+ `retrain/final`) phases to `observer`.
    pub fn run_day(
        &mut self,
        net: &RoadNetwork,
        observer: &mut dyn TrainObserver,
        guard: &mut AnomalyGuard,
    ) -> DayReport {
        let day = self.day;
        let summary = self.drift.day_summary(net, &self.base, day);
        let day_model = self.drift.day_model(net, &self.base, day);
        observer.on_phase(&format!("drift/day-{day}"));

        // Fresh collection + weak TCI labels re-derived under drifted traffic.
        let labeler = TciLabeler::new(net, &day_model);
        let fresh = self.generate(net, &day_model, day, 0, self.cfg.fresh_per_day);
        let eval = self.generate(net, &day_model, day, EVAL_INDEX_OFFSET, self.cfg.eval_per_day);
        let quality_before = label_margin(&self.model, &eval, &labeler);

        // Mixed pool: fresh first, then the replay reservoir (pinned labels).
        let replay_mixed = self.replay.len();
        let mut pool = fresh.clone();
        pool.extend(
            self.replay
                .items()
                .iter()
                .map(|r| TemporalPathSample { path: r.path.clone(), departure: r.departure }),
        );
        let mixed = MixedLabeler {
            current: &labeler,
            pinned: self.replay.items().iter().map(|r| (r.departure.seconds(), r.label)).collect(),
        };

        // Curriculum restart: re-enter the stage schedule with replayed
        // (already-learned) samples scored easiest, fresh samples easy→hard
        // by path length, then the usual full-pool final phase.
        let scores: Vec<f64> = pool
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let len = s.path.len() as f64;
                if i >= fresh.len() {
                    1e6 - len
                } else {
                    -len
                }
            })
            .collect();
        // Fine-tune cooler than from-scratch training. Set unconditionally
        // each day (not only when ≠ 1.0) so a resumed episode — whose trainer
        // reverts to the from-scratch rate — matches an uninterrupted one.
        let lr = self.model.config().lr * self.cfg.retrain_lr_scale;
        self.model.set_lr(lr);
        let step_before = self.model.global_step();
        let mut rng =
            StdRng::seed_from_u64(mix64(self.cfg.episode_seed ^ SALT_STAGES) ^ mix64(day));
        let stages =
            crate::curriculum::curriculum_stages(&scores, self.cfg.retrain_stages.max(1), &mut rng);
        for (k, stage) in stages.iter().enumerate() {
            if stage.is_empty() {
                continue;
            }
            observer.on_phase(&format!("retrain/stage-{}", k + 1));
            let subset: Vec<TemporalPathSample> = stage.iter().map(|&i| pool[i].clone()).collect();
            self.model.train_observed(&subset, &mixed, 1, observer);
        }
        observer.on_phase("retrain/final");
        self.model.train_observed(&pool, &mixed, self.cfg.retrain_epochs.max(1), observer);
        let retrain_steps = self.model.global_step() - step_before;
        let quality_after = label_margin(&self.model, &eval, &labeler);

        // Absorb today's samples with today's labels.
        for s in fresh {
            let label = labeler.label(s.departure);
            self.replay.absorb(ReplaySample { path: s.path, departure: s.departure, label });
        }

        // Parameter health sweep: a NaN that reached the weights produces NaN
        // losses with no gradient to attribute, so the sweep names the
        // offending parameter explicitly.
        let events_before = guard.events().len();
        let step_now = self.model.global_step();
        let (params, _) = self.model.weights();
        let bad: Vec<(String, f64)> = params
            .ids()
            .filter_map(|id| {
                params
                    .value(id)
                    .data()
                    .iter()
                    .copied()
                    .find(|v| !v.is_finite())
                    .map(|v| (params.name(id).to_string(), v))
            })
            .collect();
        for (name, v) in bad {
            guard.report(
                step_now,
                AnomalyKind::NonFiniteParam,
                v,
                format!("param `{name}` after drift/day-{day} re-training"),
            );
        }

        self.day += 1;
        DayReport {
            day,
            drift: summary,
            quality_before,
            quality_after,
            retrain_steps,
            replay_mixed,
            fresh: self.cfg.fresh_per_day,
            anomalies: guard.events().len() - events_before,
        }
    }

    /// [`Self::run_day`] with a no-op observer and a record-only guard.
    pub fn run_day_quiet(&mut self, net: &RoadNetwork) -> DayReport {
        let mut guard = AnomalyGuard::new(AnomalyPolicy::Record);
        self.run_day(net, &mut NoopObserver, &mut guard)
    }

    /// Snapshot the episode: the model's [`EngineCheckpoint`] with the
    /// continual state (day counter + replay reservoir) attached.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        self.model.checkpoint(self.encoder_seed).with_continual(ContinualState {
            day: self.day,
            cfg: self.cfg.clone(),
            base: self.base.clone(),
            replay_seen: self.replay.seen(),
            replay_items: self.replay.items().to_vec(),
        })
    }

    /// Resume a checkpointed episode, rebuilding the frozen encoder from
    /// `(encoder_config, encoder_seed)`. Panics if the checkpoint carries no
    /// continual state.
    pub fn resume(net: &RoadNetwork, cp: EngineCheckpoint) -> Self {
        let encoder =
            Arc::new(TemporalPathEncoder::new(net, cp.encoder_config.clone(), cp.encoder_seed));
        Self::resume_with_encoder(encoder, cp)
    }

    /// [`Self::resume`] with an already-built (shared) encoder.
    pub fn resume_with_encoder(
        encoder: Arc<TemporalPathEncoder>,
        mut cp: EngineCheckpoint,
    ) -> Self {
        let state = cp
            .continual
            .take()
            .expect("checkpoint carries no continual-episode state (plain training run?)");
        let encoder_seed = cp.encoder_seed;
        let model = WscModel::resume_with_encoder(encoder, cp);
        let drift = DriftModel::new(state.cfg.drift.clone(), state.cfg.episode_seed);
        let replay = ReplayBuffer::from_state(
            state.cfg.replay_capacity,
            mix64(state.cfg.episode_seed ^ SALT_REPLAY),
            state.replay_seen,
            state.replay_items,
        );
        Self {
            model,
            encoder_seed,
            base: state.base,
            drift,
            replay,
            cfg: state.cfg,
            day: state.day,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WscclConfig;
    use crate::encoder::EncoderConfig;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;

    fn setup(threads: usize) -> (CityDataset, ContinualTrainer) {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 21));
        let enc = Arc::new(TemporalPathEncoder::new(&ds.net, EncoderConfig::tiny(), 21));
        let cfg = WscclConfig { shards: 2, threads, ..WscclConfig::tiny() };
        let mut model = WscModel::new(enc, cfg, 21);
        let labeler = TciLabeler::new(&ds.net, &ds.congestion);
        model.train(&ds.unlabeled, &labeler, 1);
        let ct = ContinualTrainer::new(model, 21, ds.congestion.clone(), ContinualConfig::tiny(21));
        (ds, ct)
    }

    fn fingerprint(ds: &CityDataset, ct: &ContinualTrainer) -> Vec<Vec<f64>> {
        ds.unlabeled.iter().take(5).map(|s| ct.model().embed(&s.path, s.departure)).collect()
    }

    #[test]
    fn episode_is_bit_identical_across_thread_counts() {
        let (ds1, mut a) = setup(1);
        let (ds3, mut b) = setup(3);
        for _ in 0..2 {
            let ra = a.run_day_quiet(&ds1.net);
            let rb = b.run_day_quiet(&ds3.net);
            assert_eq!(ra.quality_before.to_bits(), rb.quality_before.to_bits());
            assert_eq!(ra.quality_after.to_bits(), rb.quality_after.to_bits());
            assert_eq!(ra.retrain_steps, rb.retrain_steps);
        }
        assert_eq!(a.replay_items(), b.replay_items(), "replay contents must match");
        assert_eq!(fingerprint(&ds1, &a), fingerprint(&ds3, &b), "weights must match");
    }

    #[test]
    fn checkpoint_roundtrips_continual_state_exactly_and_resumes_identically() {
        let (ds, mut a) = setup(1);
        a.run_day_quiet(&ds.net);

        // Through bytes, as a killed process would see it.
        let mut buf = Vec::new();
        a.checkpoint().write_to(&mut buf).expect("write");
        let cp = EngineCheckpoint::read_from(&mut buf.as_slice()).expect("read");
        let state = cp.continual.as_ref().expect("continual state present");
        assert_eq!(state.day, 1);
        assert_eq!(state.replay_items, a.replay_items(), "reservoir must roundtrip exactly");
        assert_eq!(state.replay_seen, ContinualConfig::tiny(21).fresh_per_day as u64);

        let mut b = ContinualTrainer::resume(&ds.net, cp);
        assert_eq!(b.day(), 1);
        let ra = a.run_day_quiet(&ds.net);
        let rb = b.run_day_quiet(&ds.net);
        assert_eq!(ra.quality_after.to_bits(), rb.quality_after.to_bits());
        assert_eq!(a.replay_items(), b.replay_items());
        assert_eq!(fingerprint(&ds, &a), fingerprint(&ds, &b), "resumed weights must match");
    }

    #[test]
    fn plain_checkpoints_still_load_and_carry_no_continual_state() {
        let (ds, ct) = setup(1);
        let cp = ct.model().checkpoint(21);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).expect("write");
        let restored = EngineCheckpoint::read_from(&mut buf.as_slice()).expect("read");
        assert!(restored.continual.is_none());
        // And it still resumes as a plain model.
        let _ = WscModel::resume(&ds.net, restored);
    }

    #[test]
    fn retraining_recovers_label_margin_under_drift() {
        let (ds, mut ct) = setup(1);
        let mut improved = 0;
        for _ in 0..3 {
            let r = ct.run_day_quiet(&ds.net);
            if r.quality_after > r.quality_before {
                improved += 1;
            }
            assert!(r.retrain_steps > 0, "each day must take optimizer steps");
        }
        assert!(improved >= 2, "re-training should usually improve the margin ({improved}/3)");
        assert_eq!(ct.day(), 3);
        assert!(!ct.replay_items().is_empty(), "reservoir must hold past samples");
    }
}
