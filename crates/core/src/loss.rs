//! The weakly-supervised contrastive losses (§V-B/C/D).

use rand::rngs::StdRng;
use rand::RngExt;

use wsccl_nn::{Graph, NodeId};

use crate::sampler::BatchItem;

/// Encoded batch: per item, its TPR node and its per-edge STER nodes.
pub struct EncodedBatch<'a> {
    pub items: &'a [BatchItem],
    pub tprs: Vec<NodeId>,
    pub sters: Vec<Vec<NodeId>>,
}

/// Global WSC objective (Eq. 10), as a node to **maximize**.
///
/// For each query `i` whose positive set is non-empty:
/// `(1/|S_i|) Σ_{j∈S_i} [ sim(TPR_i, TPR_j) − log Σ_{k∈N_i} exp sim(TPR_i, TPR_k) ]`.
/// Returns `None` when no query has both a positive and a negative.
pub fn global_wsc(g: &mut Graph<'_>, batch: &EncodedBatch<'_>) -> Option<NodeId> {
    global_wsc_with_temperature(g, batch, 1.0)
}

/// Global WSC objective with a similarity temperature τ̂ (`sim/τ̂` inside the
/// exponentials; τ̂ = 1 recovers Eq. 10 verbatim).
pub fn global_wsc_with_temperature(
    g: &mut Graph<'_>,
    batch: &EncodedBatch<'_>,
    temperature: f64,
) -> Option<NodeId> {
    assert!(temperature > 0.0, "temperature must be positive");
    let n = batch.items.len();
    // Precompute pairwise cosine similarity nodes lazily.
    let mut sims: Vec<Vec<Option<NodeId>>> = vec![vec![None; n]; n];
    let sim = |g: &mut Graph<'_>, sims: &mut Vec<Vec<Option<NodeId>>>, i: usize, j: usize| {
        if sims[i][j].is_none() {
            let c = g.cos_sim(batch.tprs[i], batch.tprs[j]);
            let s = g.scale_inplace(c, 1.0 / temperature);
            sims[i][j] = Some(s);
            sims[j][i] = Some(s);
        }
        sims[i][j].expect("just inserted")
    };

    let mut per_query = Vec::new();
    for i in 0..n {
        let positives: Vec<usize> =
            (0..n).filter(|&j| j != i && batch.items[i].is_positive_for(&batch.items[j])).collect();
        let negatives: Vec<usize> = (0..n)
            .filter(|&j| j != i && !batch.items[i].is_positive_for(&batch.items[j]))
            .collect();
        if positives.is_empty() || negatives.is_empty() {
            continue;
        }
        let neg_sims: Vec<NodeId> = negatives.iter().map(|&k| sim(g, &mut sims, i, k)).collect();
        let lse = g.log_sum_exp(&neg_sims);
        let mut terms = Vec::with_capacity(positives.len());
        for &j in &positives {
            let s = sim(g, &mut sims, i, j);
            terms.push(g.sub(s, lse));
        }
        let mean_pos = g.mean_scalars(&terms);
        per_query.push(mean_pos);
    }
    if per_query.is_empty() {
        return None;
    }
    Some(g.mean_scalars(&per_query))
}

/// Local WSC objective (Eq. 11), as a node to **maximize**.
///
/// For each query, sample up to `edges_per_side` edges from its positive
/// paths (the positive edge set `PN`, sharing the query's weak label) and from
/// negative paths whose label differs (`NN`). The objective is
/// `(1/|PN|) [ log Σ_PN exp s(TPR, STER) − log Σ_NN exp s(TPR, STER) ]`.
pub fn local_wsc(
    g: &mut Graph<'_>,
    batch: &EncodedBatch<'_>,
    rng: &mut StdRng,
    edges_per_side: usize,
) -> Option<NodeId> {
    let n = batch.items.len();
    let mut per_query = Vec::new();
    for i in 0..n {
        // Positive edge pool: edges of i's own path and of positive partners.
        let mut pos_pool: Vec<(usize, usize)> = Vec::new(); // (item, step)
        for j in 0..n {
            if j == i || batch.items[i].is_positive_for(&batch.items[j]) {
                for s in 0..batch.sters[j].len() {
                    pos_pool.push((j, s));
                }
            }
        }
        // Negative edge pool: edges of paths whose label differs (Eq. 11's
        // `y_j ≠ y_i` condition).
        let mut neg_pool: Vec<(usize, usize)> = Vec::new();
        for j in 0..n {
            if j != i && batch.items[j].label != batch.items[i].label {
                for s in 0..batch.sters[j].len() {
                    neg_pool.push((j, s));
                }
            }
        }
        if pos_pool.is_empty() || neg_pool.is_empty() {
            continue;
        }
        let draw = |rng: &mut StdRng, pool: &[(usize, usize)], k: usize| -> Vec<(usize, usize)> {
            (0..k.min(pool.len())).map(|_| pool[rng.random_range(0..pool.len())]).collect()
        };
        let pos = draw(rng, &pos_pool, edges_per_side);
        let neg = draw(rng, &neg_pool, edges_per_side);

        let pos_sims: Vec<NodeId> =
            pos.iter().map(|&(j, s)| g.cos_sim(batch.tprs[i], batch.sters[j][s])).collect();
        let neg_sims: Vec<NodeId> =
            neg.iter().map(|&(j, s)| g.cos_sim(batch.tprs[i], batch.sters[j][s])).collect();
        let lse_pos = g.log_sum_exp(&pos_sims);
        let lse_neg = g.log_sum_exp(&neg_sims);
        let diff = g.sub_inplace(lse_pos, lse_neg);
        let scaled = g.scale_inplace(diff, 1.0 / pos_sims.len() as f64);
        per_query.push(scaled);
    }
    if per_query.is_empty() {
        return None;
    }
    Some(g.mean_scalars(&per_query))
}

/// Combined WSC **loss to minimize**: `−(λ·L_global + (1−λ)·L_local)` (Eq. 12).
///
/// λ = 1 drops the local term (the paper's "w/o Local"), λ = 0 drops the
/// global term ("w/o Global"). Returns `None` if neither term is computable
/// on this batch.
pub fn wsc_loss(
    g: &mut Graph<'_>,
    batch: &EncodedBatch<'_>,
    rng: &mut StdRng,
    lambda: f64,
    edges_per_side: usize,
) -> Option<NodeId> {
    wsc_loss_with_temperature(g, batch, rng, lambda, edges_per_side, 1.0)
}

/// [`wsc_loss`] with a global-similarity temperature (see
/// [`global_wsc_with_temperature`]).
pub fn wsc_loss_with_temperature(
    g: &mut Graph<'_>,
    batch: &EncodedBatch<'_>,
    rng: &mut StdRng,
    lambda: f64,
    edges_per_side: usize,
    temperature: f64,
) -> Option<NodeId> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
    let global =
        if lambda > 0.0 { global_wsc_with_temperature(g, batch, temperature) } else { None };
    let local = if lambda < 1.0 { local_wsc(g, batch, rng, edges_per_side) } else { None };
    // Expose the raw objective terms to observers. Must happen before the
    // in-place combination below recycles these nodes' buffers; tracking is
    // read-only and leaves the tape untouched.
    if let Some(gl) = global {
        g.track_scalar("wsc/global", gl);
    }
    if let Some(lo) = local {
        g.track_scalar("wsc/local", lo);
    }
    let objective = match (global, local) {
        (Some(gl), Some(lo)) => {
            let a = g.scale_inplace(gl, lambda);
            let b = g.scale_inplace(lo, 1.0 - lambda);
            Some(g.add_inplace(a, b))
        }
        (Some(gl), None) => Some(g.scale_inplace(gl, lambda)),
        (None, Some(lo)) => Some(g.scale_inplace(lo, 1.0 - lambda)),
        (None, None) => None,
    }?;
    Some(g.scale_inplace(objective, -1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsccl_nn::{Parameters, Tensor};
    use wsccl_roadnet::EdgeId;
    use wsccl_roadnet::Path;
    use wsccl_traffic::{SimTime, WeakLabel};

    /// Build a fake batch whose TPRs are parameters, to inspect loss behavior.
    fn fake_batch_items() -> Vec<BatchItem> {
        let path_a = Path::new_unchecked(vec![EdgeId(0), EdgeId(1)]);
        let path_b = Path::new_unchecked(vec![EdgeId(2), EdgeId(3)]);
        vec![
            // Query + positive (same path, same label).
            BatchItem {
                path: path_a.clone(),
                departure: SimTime::from_hm(0, 8, 0),
                label: WeakLabel::MorningPeak,
            },
            BatchItem {
                path: path_a.clone(),
                departure: SimTime::from_hm(1, 8, 30),
                label: WeakLabel::MorningPeak,
            },
            // Same path, different label → negative.
            BatchItem {
                path: path_a,
                departure: SimTime::from_hm(0, 12, 0),
                label: WeakLabel::OffPeak,
            },
            // Different path, same label → negative.
            BatchItem {
                path: path_b,
                departure: SimTime::from_hm(2, 8, 0),
                label: WeakLabel::MorningPeak,
            },
        ]
    }

    fn encode_with_vectors<'a>(
        g: &mut Graph<'_>,
        items: &'a [BatchItem],
        vecs: &[Vec<f64>],
    ) -> EncodedBatch<'a> {
        let tprs: Vec<NodeId> = vecs.iter().map(|v| g.input(Tensor::row(v.clone()))).collect();
        // Fake STERs: two per item, equal to the TPR vector scaled.
        let sters: Vec<Vec<NodeId>> = vecs
            .iter()
            .map(|v| {
                vec![
                    g.input(Tensor::row(v.clone())),
                    g.input(Tensor::row(v.iter().map(|x| x * 0.5).collect())),
                ]
            })
            .collect();
        EncodedBatch { items, tprs, sters }
    }

    #[test]
    fn global_objective_prefers_aligned_positives() {
        let items = fake_batch_items();
        let mut params = Parameters::new();
        // Case 1: positive aligned with query, negatives orthogonal.
        let good = vec![
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.1, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        // Case 2: positive orthogonal, one negative aligned.
        let bad = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.1, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let mut g = Graph::new(&mut params);
        let enc = encode_with_vectors(&mut g, &items, &good);
        let v_good = global_wsc(&mut g, &enc).map(|n| g.value(n).item()).unwrap();
        let enc = encode_with_vectors(&mut g, &items, &bad);
        let v_bad = global_wsc(&mut g, &enc).map(|n| g.value(n).item()).unwrap();
        assert!(v_good > v_bad, "aligned positives should score higher: {v_good:.4} vs {v_bad:.4}");
    }

    #[test]
    fn no_positive_pairs_yields_none() {
        // A batch of four distinct paths: nobody has a positive.
        let mk = |e: u32, label| BatchItem {
            path: Path::new_unchecked(vec![EdgeId(e)]),
            departure: SimTime::from_hm(0, 8, 0),
            label,
        };
        let items = vec![
            mk(0, WeakLabel::MorningPeak),
            mk(1, WeakLabel::OffPeak),
            mk(2, WeakLabel::AfternoonPeak),
            mk(3, WeakLabel::MorningPeak),
        ];
        let mut params = Parameters::new();
        let mut g = Graph::new(&mut params);
        let vecs: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64 + 1.0, 1.0]).collect();
        let enc = encode_with_vectors(&mut g, &items, &vecs);
        assert!(global_wsc(&mut g, &enc).is_none());
        // Local loss still works: labels differ across items.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(local_wsc(&mut g, &enc, &mut rng, 2).is_some());
    }

    #[test]
    fn combined_loss_respects_lambda_extremes() {
        let items = fake_batch_items();
        let vecs = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.9, 0.1, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Graph::new(&mut params);
        let enc = encode_with_vectors(&mut g, &items, &vecs);
        let l_full = wsc_loss(&mut g, &enc, &mut rng, 0.8, 2).map(|n| g.value(n).item());
        let enc = encode_with_vectors(&mut g, &items, &vecs);
        let l_global_only = wsc_loss(&mut g, &enc, &mut rng, 1.0, 2).map(|n| g.value(n).item());
        let enc = encode_with_vectors(&mut g, &items, &vecs);
        let l_local_only = wsc_loss(&mut g, &enc, &mut rng, 0.0, 2).map(|n| g.value(n).item());
        assert!(l_full.is_some() && l_global_only.is_some() && l_local_only.is_some());
        for l in [l_full, l_global_only, l_local_only].into_iter().flatten() {
            assert!(l.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "lambda must be in")]
    fn invalid_lambda_panics() {
        let items = fake_batch_items();
        let mut params = Parameters::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Graph::new(&mut params);
        let vecs = vec![vec![1.0, 0.0]; 4];
        let enc = encode_with_vectors(&mut g, &items, &vecs);
        let _ = wsc_loss(&mut g, &enc, &mut rng, 1.5, 2);
    }
}
