//! Weak-label-aware minibatch construction (§V-A, Fig. 5).
//!
//! Each batch is built from anchor blocks. For an anchor temporal path
//! `(p, t)` with weak label `y`, the block contains:
//!
//! 1. the anchor itself;
//! 2. a **positive**: the same path with a *different* departure time that has
//!    the *same* weak label;
//! 3. a **hard negative**: the same path with a departure time of a
//!    *different* weak label;
//! 4. a random other sample from the pool (different path; same or different
//!    label — both remaining negative categories arise here).
//!
//! Within a batch, every non-positive sample acts as a negative for the
//! anchor, exactly as in Eq. 10's `N_tp = P \ {tp ∪ S_tp}`.

use rand::rngs::StdRng;
use rand::RngExt;

use wsccl_datagen::SamplePool;
use wsccl_roadnet::Path;
use wsccl_traffic::time::WEEK_SECONDS;
use wsccl_traffic::{SimTime, WeakLabel, WeakLabeler};

/// One sample in a contrastive batch.
#[derive(Clone, Debug)]
pub struct BatchItem {
    pub path: Path,
    pub departure: SimTime,
    pub label: WeakLabel,
}

impl BatchItem {
    /// Positive relation per §V-A: same path AND same weak label.
    pub fn is_positive_for(&self, other: &BatchItem) -> bool {
        self.label == other.label && self.path.edges() == other.path.edges()
    }
}

/// Sample a departure time carrying the requested weak label (rejection
/// sampling over the week; labels partition the week so this terminates
/// quickly). Returns `None` only if the label never occurs in `tries` draws.
pub fn sample_time_with_label(
    rng: &mut StdRng,
    labeler: &dyn WeakLabeler,
    target: WeakLabel,
    tries: usize,
) -> Option<SimTime> {
    for _ in 0..tries {
        let t = SimTime::new(rng.random_range(0..WEEK_SECONDS));
        if labeler.label(t) == target {
            return Some(t);
        }
    }
    None
}

/// Sample a departure time with any label other than `avoid`.
pub fn sample_time_with_other_label(
    rng: &mut StdRng,
    labeler: &dyn WeakLabeler,
    avoid: WeakLabel,
    tries: usize,
) -> Option<SimTime> {
    for _ in 0..tries {
        let t = SimTime::new(rng.random_range(0..WEEK_SECONDS));
        if labeler.label(t) != avoid {
            return Some(t);
        }
    }
    None
}

/// Build one batch of ~`batch_size` items from the unlabeled pool.
///
/// Generic over [`SamplePool`], so the pool can be an in-memory slice or a
/// memory-mapped `.wsccl-ds` dataset; at equal seeds the batch is identical
/// either way (the RNG draw sequence depends only on `pool.len()`).
pub fn build_batch<P: SamplePool + ?Sized>(
    rng: &mut StdRng,
    pool: &P,
    labeler: &dyn WeakLabeler,
    batch_size: usize,
) -> Vec<BatchItem> {
    assert!(!pool.is_empty(), "cannot sample from an empty pool");
    let blocks = (batch_size / 4).max(1);
    let mut batch = Vec::with_capacity(blocks * 4);
    for _ in 0..blocks {
        let anchor = pool.get(rng.random_range(0..pool.len()));
        let label = labeler.label(anchor.departure);
        batch.push(BatchItem { path: anchor.path.clone(), departure: anchor.departure, label });
        // Positive: same path, same label, (almost surely) different time.
        if let Some(t) = sample_time_with_label(rng, labeler, label, 200) {
            batch.push(BatchItem { path: anchor.path.clone(), departure: t, label });
        }
        // Hard negative: same path, different label.
        if let Some(t) = sample_time_with_other_label(rng, labeler, label, 200) {
            batch.push(BatchItem { path: anchor.path, departure: t, label: labeler.label(t) });
        }
        // Random other sample: different path.
        let other = pool.get(rng.random_range(0..pool.len()));
        batch.push(BatchItem {
            path: other.path,
            departure: other.departure,
            label: labeler.label(other.departure),
        });
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsccl_datagen::{CityDataset, DatasetConfig, TemporalPathSample};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::PopLabeler;

    fn pool() -> Vec<TemporalPathSample> {
        CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 1)).unlabeled
    }

    #[test]
    fn labeled_time_sampling_hits_the_target() {
        let mut rng = StdRng::seed_from_u64(1);
        for target in [WeakLabel::MorningPeak, WeakLabel::AfternoonPeak, WeakLabel::OffPeak] {
            let t = sample_time_with_label(&mut rng, &PopLabeler, target, 500).expect("found");
            assert_eq!(PopLabeler.label(t), target);
        }
        let t = sample_time_with_other_label(&mut rng, &PopLabeler, WeakLabel::OffPeak, 500)
            .expect("found");
        assert_ne!(PopLabeler.label(t), WeakLabel::OffPeak);
    }

    #[test]
    fn every_anchor_has_a_positive_and_negatives() {
        let pool = pool();
        let mut rng = StdRng::seed_from_u64(2);
        let batch = build_batch(&mut rng, &pool, &PopLabeler, 16);
        assert!(batch.len() >= 12, "batch size {}", batch.len());
        // For each item, count positives/negatives among others.
        let mut anchors_with_pos = 0;
        for (i, a) in batch.iter().enumerate() {
            let pos =
                batch.iter().enumerate().filter(|&(j, b)| j != i && a.is_positive_for(b)).count();
            if pos > 0 {
                anchors_with_pos += 1;
            }
        }
        // Anchor+positive pairs guarantee at least half the items have a
        // positive partner.
        assert!(anchors_with_pos >= batch.len() / 2, "{anchors_with_pos} of {}", batch.len());
    }

    #[test]
    fn hard_negatives_share_path_but_not_label() {
        let pool = pool();
        let mut rng = StdRng::seed_from_u64(3);
        let batch = build_batch(&mut rng, &pool, &PopLabeler, 16);
        let has_hard_negative = batch.iter().enumerate().any(|(i, a)| {
            batch
                .iter()
                .enumerate()
                .any(|(j, b)| i != j && a.path.edges() == b.path.edges() && a.label != b.label)
        });
        assert!(has_hard_negative, "expected same-path different-label pairs");
    }

    #[test]
    fn batches_are_identical_between_memory_and_mmap_pools() {
        let cfg = DatasetConfig::tiny(CityProfile::Aalborg, 5);
        let path = std::env::temp_dir().join("wsccl_sampler_pool_eq.wsccl-ds");
        wsccl_datagen::write_dataset(&cfg, &wsccl_datagen::StreamConfig::serial(), &path)
            .expect("write dataset");
        let disk = wsccl_datagen::DiskDataset::open(&path).expect("open dataset");
        let mem: Vec<TemporalPathSample> =
            (0..wsccl_datagen::SamplePool::len(&disk)).map(|i| disk.get(i)).collect();
        for seed in [0u64, 9, 77] {
            let a = build_batch(&mut StdRng::seed_from_u64(seed), &disk, &PopLabeler, 32);
            let b = build_batch(&mut StdRng::seed_from_u64(seed), &mem, &PopLabeler, 32);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.path.edges(), y.path.edges());
                assert_eq!(x.departure, y.departure);
                assert_eq!(x.label, y.label);
            }
        }
        drop(disk);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn items_carry_consistent_labels() {
        let pool = pool();
        let mut rng = StdRng::seed_from_u64(4);
        let batch = build_batch(&mut rng, &pool, &PopLabeler, 12);
        for item in &batch {
            assert_eq!(item.label, PopLabeler.label(item.departure));
        }
    }
}
