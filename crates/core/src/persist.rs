//! Model persistence: save a trained WSC model's weights and reload them
//! into a compatible encoder.
//!
//! Only the *trainable* state is serialized (parameter tensors plus the layer
//! handles that index into them). The frozen node2vec tables are rebuilt
//! deterministically from the same seed, so a checkpoint is
//! `(encoder config, seed, weights)`.

use std::io::{Read, Write};
use std::path::Path as FsPath;

use serde::{Deserialize, Serialize};

use wsccl_nn::Parameters;

use crate::encoder::{EncoderConfig, EncoderWeights};

/// A serializable WSC checkpoint.
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, bumped on breaking layout changes.
    pub version: u32,
    /// Encoder architecture (needed to rebuild the frozen tables).
    pub encoder_config: EncoderConfig,
    /// Seed the frozen node2vec tables were built from.
    pub encoder_seed: u64,
    /// All trainable parameter tensors.
    pub params: Parameters,
    /// Layer handles into `params`.
    pub weights: EncoderWeights,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Encode(String),
    /// The file's version does not match [`CHECKPOINT_VERSION`].
    VersionMismatch { found: u32 },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            PersistError::Encode(e) => write!(f, "checkpoint encoding error: {e}"),
            PersistError::VersionMismatch { found } => {
                write!(f, "checkpoint version {found} != supported {CHECKPOINT_VERSION}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl Checkpoint {
    pub fn new(
        encoder_config: EncoderConfig,
        encoder_seed: u64,
        params: Parameters,
        weights: EncoderWeights,
    ) -> Self {
        Self { version: CHECKPOINT_VERSION, encoder_config, encoder_seed, params, weights }
    }

    /// Serialize to a writer as JSON.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), PersistError> {
        let json = serde_json::to_string(self).map_err(|e| PersistError::Encode(e.to_string()))?;
        w.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Deserialize from a reader, validating the version.
    pub fn read_from(r: &mut impl Read) -> Result<Self, PersistError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        let cp: Checkpoint =
            serde_json::from_str(&buf).map_err(|e| PersistError::Encode(e.to_string()))?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(PersistError::VersionMismatch { found: cp.version });
        }
        Ok(cp)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<FsPath>) -> Result<(), PersistError> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<FsPath>) -> Result<Self, PersistError> {
        let mut f = std::fs::File::open(path)?;
        Self::read_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::TemporalPathEncoder;
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::SimTime;

    #[test]
    fn roundtrip_preserves_embeddings() {
        let net = CityProfile::Aalborg.generate(3);
        let cfg = EncoderConfig::tiny();
        let enc = TemporalPathEncoder::new(&net, cfg.clone(), 3);
        let mut params = Parameters::new();
        let weights = enc.init_weights(&mut params, 9);

        // A short valid path.
        let mut edges = Vec::new();
        let mut cur = wsccl_roadnet::NodeId(0);
        for _ in 0..4 {
            let e = net.out_edges(cur)[0];
            edges.push(e);
            cur = net.edge(e).to;
        }
        let path = wsccl_roadnet::Path::new_unchecked(edges);
        let t = SimTime::from_hm(0, 8, 0);
        let before = enc.embed(&mut params, &weights, &path, t);

        // Roundtrip through bytes.
        let cp = Checkpoint::new(cfg.clone(), 3, params, weights);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).expect("write");
        let restored = Checkpoint::read_from(&mut buf.as_slice()).expect("read");

        // Rebuild the frozen encoder from (config, seed) and compare.
        let enc2 = TemporalPathEncoder::new(&net, restored.encoder_config.clone(), restored.encoder_seed);
        let mut params2 = restored.params;
        let after = enc2.embed(&mut params2, &restored.weights, &path, t);
        assert_eq!(before, after, "checkpoint roundtrip must be exact");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let net = CityProfile::Aalborg.generate(3);
        let cfg = EncoderConfig::tiny();
        let enc = TemporalPathEncoder::new(&net, cfg.clone(), 3);
        let mut params = Parameters::new();
        let weights = enc.init_weights(&mut params, 9);
        let mut cp = Checkpoint::new(cfg, 3, params, weights);
        cp.version = 99;
        let mut buf = Vec::new();
        // Bypass write-side checks by serializing directly.
        buf.extend_from_slice(serde_json::to_string(&cp).unwrap().as_bytes());
        match Checkpoint::read_from(&mut buf.as_slice()) {
            Err(PersistError::VersionMismatch { found: 99 }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use crate::encoder::TemporalPathEncoder;
    use wsccl_roadnet::CityProfile;

    #[test]
    fn params_roundtrip_bit_exact() {
        let net = CityProfile::Aalborg.generate(3);
        let cfg = EncoderConfig::tiny();
        let enc = TemporalPathEncoder::new(&net, cfg.clone(), 3);
        let mut params = Parameters::new();
        let weights = enc.init_weights(&mut params, 9);
        let orig = params.clone();
        let cp = Checkpoint::new(cfg, 3, params, weights);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).unwrap();
        let restored = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        for id in orig.ids() {
            assert_eq!(orig.value(id).data(), restored.params.value(id).data(), "param {:?}", id);
        }
    }
}
