//! Model persistence: save a trained WSC model's weights and reload them
//! into a compatible encoder.
//!
//! Two formats share one version number:
//!
//! * [`Checkpoint`] — weights only. The frozen node2vec tables are rebuilt
//!   deterministically from the same seed, so a checkpoint is
//!   `(encoder config, seed, weights)`.
//! * [`EngineCheckpoint`] — weights *plus* the training-engine state
//!   (optimizer moments, step/epoch counters, RNG stream), sufficient for
//!   [`crate::wsc::WscModel::resume`] to continue a run bit-for-bit.
//!
//! The plain reader refuses engine checkpoints (and vice versa an engine
//! read of a plain file fails on the missing trainer state), so a file is
//! never silently loaded with half its state dropped.

use std::io::{Read, Write};
use std::path::Path as FsPath;

use serde::{DeError, Deserialize, Serialize, Value};

use wsccl_nn::Parameters;
use wsccl_train::TrainerState;

use crate::config::WscclConfig;
use crate::continual::ContinualState;
use crate::encoder::{EncoderConfig, EncoderWeights};

/// A serializable weights-only WSC checkpoint.
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, bumped on breaking layout changes.
    pub version: u32,
    /// Encoder architecture (needed to rebuild the frozen tables).
    pub encoder_config: EncoderConfig,
    /// Seed the frozen node2vec tables were built from.
    pub encoder_seed: u64,
    /// All trainable parameter tensors.
    pub params: Parameters,
    /// Layer handles into `params`.
    pub weights: EncoderWeights,
}

/// Current checkpoint format version. Version 2 introduced the engine
/// checkpoint (trainer state alongside the weights).
pub const CHECKPOINT_VERSION: u32 = 2;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Encode(String),
    /// The file's version does not match [`CHECKPOINT_VERSION`].
    VersionMismatch {
        found: u32,
    },
    /// An engine checkpoint (carrying trainer state) was handed to the plain
    /// weights-only reader, which would silently drop the optimizer moments
    /// and RNG stream. Load it with [`EngineCheckpoint::load`] instead.
    EngineCheckpointRequiresEngineReader,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            PersistError::Encode(e) => write!(f, "checkpoint encoding error: {e}"),
            PersistError::VersionMismatch { found } => {
                write!(f, "checkpoint version {found} != supported {CHECKPOINT_VERSION}")
            }
            PersistError::EngineCheckpointRequiresEngineReader => {
                write!(
                    f,
                    "file is an engine checkpoint (has trainer state); \
                     load it with EngineCheckpoint, not Checkpoint"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Header-level look at a checkpoint file: version plus whether it carries
/// engine state. Deserialized manually so it tolerates (and ignores) every
/// other field of either format.
struct CheckpointProbe {
    version: u32,
    has_trainer: bool,
}

impl Deserialize for CheckpointProbe {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object("checkpoint")?;
        let version = u32::from_value(serde::field(obj, "version", "checkpoint")?)?;
        let has_trainer = obj.iter().any(|(k, _)| k == "trainer");
        Ok(Self { version, has_trainer })
    }
}

fn probe(buf: &str) -> Result<CheckpointProbe, PersistError> {
    serde_json::from_str(buf).map_err(|e| PersistError::Encode(e.to_string()))
}

impl Checkpoint {
    pub fn new(
        encoder_config: EncoderConfig,
        encoder_seed: u64,
        params: Parameters,
        weights: EncoderWeights,
    ) -> Self {
        Self { version: CHECKPOINT_VERSION, encoder_config, encoder_seed, params, weights }
    }

    /// Serialize to a writer as JSON.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), PersistError> {
        let json = serde_json::to_string(self).map_err(|e| PersistError::Encode(e.to_string()))?;
        w.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Deserialize from a reader, validating the version and rejecting
    /// engine checkpoints (which need [`EngineCheckpoint::read_from`]).
    pub fn read_from(r: &mut impl Read) -> Result<Self, PersistError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        let head = probe(&buf)?;
        if head.version != CHECKPOINT_VERSION {
            return Err(PersistError::VersionMismatch { found: head.version });
        }
        if head.has_trainer {
            return Err(PersistError::EngineCheckpointRequiresEngineReader);
        }
        serde_json::from_str(&buf).map_err(|e| PersistError::Encode(e.to_string()))
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<FsPath>) -> Result<(), PersistError> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<FsPath>) -> Result<Self, PersistError> {
        let mut f = std::fs::File::open(path)?;
        Self::read_from(&mut f)
    }
}

/// A full training-run checkpoint: everything in [`Checkpoint`] plus the
/// model config, the engine state, and the loss history so far.
#[derive(Debug, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    pub version: u32,
    pub encoder_config: EncoderConfig,
    pub encoder_seed: u64,
    /// The model's training config (loss hyper-parameters etc.).
    pub config: WscclConfig,
    pub params: Parameters,
    pub weights: EncoderWeights,
    /// Optimizer moments, step/epoch counters, and engine RNG state.
    pub trainer: TrainerState,
    /// Mean training loss per completed epoch.
    pub loss_history: Vec<f64>,
    /// Continual-learning episode state (drift day counter + replay buffer);
    /// `None` for plain training runs. `#[serde(default)]` keeps checkpoints
    /// written before this field existed loadable, and the probe ignores it,
    /// so the version number stays at 2.
    #[serde(default)]
    pub continual: Option<ContinualState>,
}

impl EngineCheckpoint {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        encoder_config: EncoderConfig,
        encoder_seed: u64,
        config: WscclConfig,
        params: Parameters,
        weights: EncoderWeights,
        trainer: TrainerState,
        loss_history: Vec<f64>,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            encoder_config,
            encoder_seed,
            config,
            params,
            weights,
            trainer,
            loss_history,
            continual: None,
        }
    }

    /// Attach continual-learning episode state (builder style).
    pub fn with_continual(mut self, state: ContinualState) -> Self {
        self.continual = Some(state);
        self
    }

    /// Serialize to a writer as JSON.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), PersistError> {
        let json = serde_json::to_string(self).map_err(|e| PersistError::Encode(e.to_string()))?;
        w.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Deserialize from a reader, validating the version.
    pub fn read_from(r: &mut impl Read) -> Result<Self, PersistError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        let head = probe(&buf)?;
        if head.version != CHECKPOINT_VERSION {
            return Err(PersistError::VersionMismatch { found: head.version });
        }
        serde_json::from_str(&buf).map_err(|e| PersistError::Encode(e.to_string()))
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<FsPath>) -> Result<(), PersistError> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<FsPath>) -> Result<Self, PersistError> {
        let mut f = std::fs::File::open(path)?;
        Self::read_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::TemporalPathEncoder;
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::SimTime;

    #[test]
    fn roundtrip_preserves_embeddings() {
        let net = CityProfile::Aalborg.generate(3);
        let cfg = EncoderConfig::tiny();
        let enc = TemporalPathEncoder::new(&net, cfg.clone(), 3);
        let mut params = Parameters::new();
        let weights = enc.init_weights(&mut params, 9);

        // A short valid path.
        let mut edges = Vec::new();
        let mut cur = wsccl_roadnet::NodeId(0);
        for _ in 0..4 {
            let e = net.out_edges(cur)[0];
            edges.push(e);
            cur = net.edge(e).to;
        }
        let path = wsccl_roadnet::Path::new_unchecked(edges);
        let t = SimTime::from_hm(0, 8, 0);
        let before = enc.embed(&mut params, &weights, &path, t);

        // Roundtrip through bytes.
        let cp = Checkpoint::new(cfg.clone(), 3, params, weights);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).expect("write");
        let restored = Checkpoint::read_from(&mut buf.as_slice()).expect("read");

        // Rebuild the frozen encoder from (config, seed) and compare.
        let enc2 =
            TemporalPathEncoder::new(&net, restored.encoder_config.clone(), restored.encoder_seed);
        let mut params2 = restored.params;
        let after = enc2.embed(&mut params2, &restored.weights, &path, t);
        assert_eq!(before, after, "checkpoint roundtrip must be exact");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let net = CityProfile::Aalborg.generate(3);
        let cfg = EncoderConfig::tiny();
        let enc = TemporalPathEncoder::new(&net, cfg.clone(), 3);
        let mut params = Parameters::new();
        let weights = enc.init_weights(&mut params, 9);
        let mut cp = Checkpoint::new(cfg, 3, params, weights);
        cp.version = 99;
        let mut buf = Vec::new();
        // Bypass write-side checks by serializing directly.
        buf.extend_from_slice(serde_json::to_string(&cp).unwrap().as_bytes());
        match Checkpoint::read_from(&mut buf.as_slice()) {
            Err(PersistError::VersionMismatch { found: 99 }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn engine_checkpoint_is_rejected_by_plain_reader() {
        // The engine layout is a superset of the plain layout, so a naive
        // field-by-field read would "succeed" while dropping the optimizer
        // moments and RNG stream. The plain reader must refuse instead.
        let net = CityProfile::Aalborg.generate(3);
        let cfg = EncoderConfig::tiny();
        let enc = TemporalPathEncoder::new(&net, cfg.clone(), 3);
        let mut params = Parameters::new();
        let weights = enc.init_weights(&mut params, 9);
        let trainer = wsccl_train::Trainer::new(wsccl_train::TrainSpec::adam(1e-3, 1, 3));
        let cp = EngineCheckpoint::new(
            cfg,
            3,
            WscclConfig::tiny(),
            params,
            weights,
            trainer.state(),
            vec![1.0, 0.5],
        );
        let mut buf = Vec::new();
        cp.write_to(&mut buf).expect("write");
        match Checkpoint::read_from(&mut buf.as_slice()) {
            Err(PersistError::EngineCheckpointRequiresEngineReader) => {}
            other => panic!("expected engine-checkpoint rejection, got {other:?}"),
        }
        // The engine reader accepts the same bytes.
        let restored = EngineCheckpoint::read_from(&mut buf.as_slice()).expect("engine read");
        assert_eq!(restored.loss_history, vec![1.0, 0.5]);
        assert_eq!(restored.trainer.step, 0);
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use crate::encoder::TemporalPathEncoder;
    use wsccl_roadnet::CityProfile;

    #[test]
    fn params_roundtrip_bit_exact() {
        let net = CityProfile::Aalborg.generate(3);
        let cfg = EncoderConfig::tiny();
        let enc = TemporalPathEncoder::new(&net, cfg.clone(), 3);
        let mut params = Parameters::new();
        let weights = enc.init_weights(&mut params, 9);
        let orig = params.clone();
        let cp = Checkpoint::new(cfg, 3, params, weights);
        let mut buf = Vec::new();
        cp.write_to(&mut buf).unwrap();
        let restored = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        for id in orig.ids() {
            assert_eq!(orig.value(id).data(), restored.params.value(id).data(), "param {:?}", id);
        }
    }
}
