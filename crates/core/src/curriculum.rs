//! Contrastive curriculum learning (§VI): curriculum sample evaluation with
//! expert models (Eq. 13) and curriculum sample selection over easy-to-hard
//! stages, yielding the advanced WSCCL model.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wsccl_datagen::TemporalPathSample;
use wsccl_roadnet::RoadNetwork;
use wsccl_traffic::WeakLabeler;

use crate::config::WscclConfig;
use crate::encoder::TemporalPathEncoder;
use crate::wsc::{TrainedRepresenter, WscModel};

/// How the training curriculum is constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CurriculumStrategy {
    /// Expert-based difficulty scores (the paper's WSCCL, §VI-B).
    Learned,
    /// Sort by path length only (the paper's "Heuristic" baseline, Table V).
    Heuristic,
    /// No curriculum: plain WSC on shuffled data ("w/o CL", Table VI).
    None,
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Split data (sorted by path length, §VI-B) into `n` contiguous meta-sets.
/// Returns index sets into `data`.
pub fn meta_sets(data: &[TemporalPathSample], n: usize) -> Vec<Vec<usize>> {
    assert!(n >= 1 && n <= data.len(), "need 1 ≤ N ≤ |D|");
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.sort_by_key(|&i| data[i].path.len());
    let chunk = data.len().div_ceil(n);
    order.chunks(chunk).map(|c| c.to_vec()).collect()
}

/// Compute difficulty scores (Eq. 13): for `tp_i` in meta-set `j`, the sum
/// over other experts `k` of `sim(WSC_j(tp_i), WSC_k(tp_i))`. Higher = easier.
pub fn difficulty_scores(
    experts: &[WscModel],
    data: &[TemporalPathSample],
    membership: &[usize],
) -> Vec<f64> {
    let n_experts = experts.len();
    let mut scores = vec![0.0; data.len()];
    // Pre-embed every sample under every expert. Embedding is lock-free and
    // read-only, so each expert's pass runs on its own thread; collecting the
    // joins in expert order keeps the output deterministic.
    let reprs: Vec<Vec<Vec<f64>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = experts
            .iter()
            .map(|expert| {
                scope.spawn(move |_| {
                    data.iter().map(|s| expert.embed(&s.path, s.departure)).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("embed thread")).collect()
    })
    .expect("difficulty scope");
    for (i, &own) in membership.iter().enumerate() {
        let own_repr = &reprs[own][i];
        let mut s = 0.0;
        for k in 0..n_experts {
            if k != own {
                s += cosine(own_repr, &reprs[k][i]);
            }
        }
        scores[i] = s;
    }
    scores
}

/// Partition sample indices into `m` stages, easiest (highest score) first,
/// shuffling within each stage (§VI-C).
pub fn curriculum_stages(scores: &[f64], m: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    assert!(m >= 1 && m <= scores.len(), "need 1 ≤ M ≤ |D|");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // Descending score = ascending difficulty.
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let chunk = scores.len().div_ceil(m);
    order
        .chunks(chunk)
        .map(|c| {
            let mut stage = c.to_vec();
            stage.shuffle(rng);
            stage
        })
        .collect()
}

/// Train the full WSCCL pipeline and return a frozen representer.
///
/// With [`CurriculumStrategy::Learned`]: sort by length → N meta-sets → N
/// expert WSC models (trained in parallel) → difficulty scores → M = N stages
/// easy→hard, one epoch each → final stage on all data for `cfg.epochs`.
pub fn train_wsccl_with_strategy(
    net: &RoadNetwork,
    data: &[TemporalPathSample],
    labeler: &(dyn WeakLabeler + Sync),
    cfg: &WscclConfig,
    strategy: CurriculumStrategy,
    name: &str,
) -> TrainedRepresenter {
    train_wsccl_with_strategy_observed(
        net,
        data,
        labeler,
        cfg,
        strategy,
        name,
        &mut wsccl_train::NoopObserver,
    )
}

/// [`train_wsccl_with_strategy`] with a [`wsccl_train::TrainObserver`]
/// receiving the *main* model's training records (curriculum stages plus the
/// final full-data stage). Expert models train unobserved on their own
/// threads.
pub fn train_wsccl_with_strategy_observed(
    net: &RoadNetwork,
    data: &[TemporalPathSample],
    labeler: &(dyn WeakLabeler + Sync),
    cfg: &WscclConfig,
    strategy: CurriculumStrategy,
    name: &str,
    observer: &mut dyn wsccl_train::TrainObserver,
) -> TrainedRepresenter {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let encoder = Arc::new(TemporalPathEncoder::new(net, cfg.encoder.clone(), cfg.seed));
    let mut model = WscModel::new(Arc::clone(&encoder), cfg.clone(), cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC42);

    let stages: Vec<Vec<usize>> = match strategy {
        CurriculumStrategy::None => Vec::new(),
        CurriculumStrategy::Heuristic => {
            // Difficulty = path length: shorter paths are assumed easier.
            let scores: Vec<f64> = data.iter().map(|s| -(s.path.len() as f64)).collect();
            let m = cfg.num_meta_sets.clamp(1, data.len());
            curriculum_stages(&scores, m, &mut rng)
        }
        CurriculumStrategy::Learned => {
            let n = cfg.num_meta_sets.clamp(1, data.len());
            let sets = meta_sets(data, n);
            let mut membership = vec![0usize; data.len()];
            for (j, set) in sets.iter().enumerate() {
                for &i in set {
                    membership[i] = j;
                }
            }
            // Train experts in parallel: each on its own meta-set.
            let expert_cfg = cfg.clone();
            let experts: Vec<WscModel> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = sets
                    .iter()
                    .enumerate()
                    .map(|(j, set)| {
                        let encoder = Arc::clone(&encoder);
                        let expert_cfg = expert_cfg.clone();
                        let subset: Vec<TemporalPathSample> =
                            set.iter().map(|&i| data[i].clone()).collect();
                        scope.spawn(move |_| {
                            let mut expert = WscModel::new(
                                encoder,
                                expert_cfg.clone(),
                                expert_cfg.seed ^ (j as u64 + 1),
                            );
                            expert.train(&subset, labeler, expert_cfg.expert_epochs);
                            expert
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("expert thread")).collect()
            })
            .expect("expert training scope");

            let scores = difficulty_scores(&experts, data, &membership);
            curriculum_stages(&scores, sets.len(), &mut rng)
        }
    };

    // Curriculum phase: one epoch per stage, easy → hard.
    for (i, stage) in stages.iter().enumerate() {
        observer.on_phase(&format!("curriculum/stage-{}", i + 1));
        let subset: Vec<TemporalPathSample> = stage.iter().map(|&i| data[i].clone()).collect();
        model.train_observed(&subset, labeler, 1, observer);
    }
    // Final stage S_{M+1}: the whole training set until convergence
    // (cfg.epochs at reproduction scale).
    observer.on_phase("final");
    model.train_observed(data, labeler, cfg.epochs, observer);
    model.into_representer(name)
}

/// Train the paper's default WSCCL (learned curriculum).
pub fn train_wsccl(
    net: &RoadNetwork,
    data: &[TemporalPathSample],
    labeler: &(dyn WeakLabeler + Sync),
    cfg: &WscclConfig,
) -> TrainedRepresenter {
    train_wsccl_with_strategy(net, data, labeler, cfg, CurriculumStrategy::Learned, "WSCCL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::represent::PathRepresenter;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::PopLabeler;

    fn tiny_data() -> CityDataset {
        CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 17))
    }

    #[test]
    fn meta_sets_partition_and_sort_by_length() {
        let ds = tiny_data();
        let sets = meta_sets(&ds.unlabeled, 3);
        assert_eq!(sets.len(), 3);
        let total: usize = sets.iter().map(Vec::len).sum();
        assert_eq!(total, ds.unlabeled.len());
        // Max length in set i ≤ min length in set i+1.
        for w in sets.windows(2) {
            let max_prev = w[0].iter().map(|&i| ds.unlabeled[i].path.len()).max().unwrap();
            let min_next = w[1].iter().map(|&i| ds.unlabeled[i].path.len()).min().unwrap();
            assert!(max_prev <= min_next);
        }
        // No overlaps.
        let mut all: Vec<usize> = sets.concat();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ds.unlabeled.len());
    }

    #[test]
    fn stages_order_easy_to_hard() {
        let scores = vec![5.0, 1.0, 4.0, 2.0, 3.0, 0.0];
        let mut rng = StdRng::seed_from_u64(1);
        let stages = curriculum_stages(&scores, 3, &mut rng);
        assert_eq!(stages.len(), 3);
        // First stage holds the two highest scores (easiest samples).
        let s0: std::collections::HashSet<usize> = stages[0].iter().copied().collect();
        assert_eq!(s0, [0usize, 2].into_iter().collect());
        let s2: std::collections::HashSet<usize> = stages[2].iter().copied().collect();
        assert_eq!(s2, [1usize, 5].into_iter().collect());
    }

    #[test]
    fn full_wsccl_pipeline_trains_and_represents() {
        let ds = tiny_data();
        let cfg = WscclConfig::tiny();
        let rep = train_wsccl(&ds.net, &ds.unlabeled, &PopLabeler, &cfg);
        let s = &ds.unlabeled[0];
        let v = rep.represent(&ds.net, &s.path, s.departure);
        assert_eq!(v.len(), rep.dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn heuristic_and_no_curriculum_variants_train() {
        let ds = tiny_data();
        let cfg = WscclConfig::tiny();
        for strategy in [CurriculumStrategy::Heuristic, CurriculumStrategy::None] {
            let rep = train_wsccl_with_strategy(
                &ds.net,
                &ds.unlabeled,
                &PopLabeler,
                &cfg,
                strategy,
                "variant",
            );
            let s = &ds.unlabeled[1];
            assert!(rep.represent(&ds.net, &s.path, s.departure).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn difficulty_scores_are_bounded_by_expert_count() {
        let ds = tiny_data();
        let encoder =
            Arc::new(TemporalPathEncoder::new(&ds.net, crate::encoder::EncoderConfig::tiny(), 1));
        let sets = meta_sets(&ds.unlabeled, 2);
        let mut membership = vec![0usize; ds.unlabeled.len()];
        for (j, set) in sets.iter().enumerate() {
            for &i in set {
                membership[i] = j;
            }
        }
        let experts: Vec<WscModel> = (0..2)
            .map(|j| WscModel::new(Arc::clone(&encoder), WscclConfig::tiny(), j as u64))
            .collect();
        let scores = difficulty_scores(&experts, &ds.unlabeled, &membership);
        // Score is a sum of N−1 cosines, each in [−1, 1].
        for &s in &scores {
            assert!((-1.0..=1.0).contains(&s), "score {s} out of range for N=2");
        }
    }
}
