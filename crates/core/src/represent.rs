//! The method-agnostic representation interface.

use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::SimTime;

/// Anything that maps a temporal path to a fixed-size vector.
///
/// WSCCL and every baseline implement this; downstream task evaluation
/// (travel time, ranking, recommendation) consumes it uniformly. Methods that
/// ignore the temporal aspect (the paper's unsupervised baselines) simply
/// disregard `departure`.
pub trait PathRepresenter {
    /// Dimensionality of the produced representations.
    fn dim(&self) -> usize;

    /// Represent a temporal path `(path, departure)`.
    fn represent(&self, net: &RoadNetwork, path: &Path, departure: SimTime) -> Vec<f64>;

    /// Human-readable method name for result tables.
    fn name(&self) -> &str;
}
