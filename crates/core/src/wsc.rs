//! The WSC base model (Fig. 5): temporal path encoder + WSC losses + Adam.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wsccl_datagen::TemporalPathSample;
use wsccl_nn::optim::Adam;
use wsccl_nn::{Graph, Parameters};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::{SimTime, WeakLabeler};

use crate::config::WscclConfig;
use crate::encoder::{EncoderWeights, TemporalPathEncoder};
use crate::loss::{wsc_loss_with_temperature, EncodedBatch};
use crate::represent::PathRepresenter;
use crate::sampler::build_batch;

/// A trainable WSC model instance. The (expensive, frozen) encoder tables are
/// shared via `Arc`; the trainable weights are private to this instance.
pub struct WscModel {
    encoder: Arc<TemporalPathEncoder>,
    params: Parameters,
    weights: EncoderWeights,
    optimizer: Adam,
    cfg: WscclConfig,
    rng: StdRng,
    /// Mean training loss per epoch, for diagnostics and tests.
    pub loss_history: Vec<f64>,
}

impl WscModel {
    pub fn new(encoder: Arc<TemporalPathEncoder>, cfg: WscclConfig, seed: u64) -> Self {
        let mut params = Parameters::new();
        let weights = encoder.init_weights(&mut params, seed);
        let optimizer = Adam::new(cfg.lr);
        Self {
            encoder,
            params,
            weights,
            optimizer,
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x5C3A),
            loss_history: Vec::new(),
        }
    }

    pub fn encoder(&self) -> &TemporalPathEncoder {
        &self.encoder
    }

    pub fn config(&self) -> &WscclConfig {
        &self.cfg
    }

    /// One optimization step on one sampled batch. Returns the loss, or
    /// `None` if the batch had no usable contrastive structure.
    pub fn train_step(
        &mut self,
        pool: &[TemporalPathSample],
        labeler: &dyn WeakLabeler,
    ) -> Option<f64> {
        let items = build_batch(&mut self.rng, pool, labeler, self.cfg.batch_size);
        self.params.zero_grads();
        let mut g = Graph::new(&mut self.params);
        let mut tprs = Vec::with_capacity(items.len());
        let mut sters = Vec::with_capacity(items.len());
        for item in &items {
            let (tpr, st) = self.encoder.forward(&mut g, &self.weights, &item.path, item.departure);
            tprs.push(tpr);
            sters.push(st);
        }
        let batch = EncodedBatch { items: &items, tprs, sters };
        let loss = wsc_loss_with_temperature(
            &mut g,
            &batch,
            &mut self.rng,
            self.cfg.lambda,
            self.cfg.local_edges,
            self.cfg.temperature,
        )?;
        let value = g.value(loss).item();
        if !value.is_finite() {
            return None;
        }
        g.backward(loss);
        self.params.clip_grad_norm(self.cfg.grad_clip);
        self.optimizer.step(&mut self.params);
        Some(value)
    }

    /// Train for `epochs` passes of `pool.len() / batch_size` steps each.
    pub fn train(
        &mut self,
        pool: &[TemporalPathSample],
        labeler: &dyn WeakLabeler,
        epochs: usize,
    ) {
        assert!(!pool.is_empty(), "cannot train on an empty pool");
        let steps = (pool.len() / self.cfg.batch_size).max(1);
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut n = 0usize;
            for _ in 0..steps {
                if let Some(l) = self.train_step(pool, labeler) {
                    total += l;
                    n += 1;
                }
            }
            self.loss_history.push(if n > 0 { total / n as f64 } else { f64::NAN });
        }
    }

    /// Embed one temporal path.
    pub fn embed(&mut self, path: &Path, departure: SimTime) -> Vec<f64> {
        self.encoder.embed(&mut self.params, &self.weights, path, departure)
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// Freeze into a shareable [`PathRepresenter`].
    pub fn into_representer(self, name: impl Into<String>) -> TrainedRepresenter {
        TrainedRepresenter {
            encoder: self.encoder,
            inner: Mutex::new((self.params, self.weights)),
            name: name.into(),
        }
    }

    /// Borrow the trained weights (for transfer, e.g. pre-training PathRank).
    pub fn weights(&self) -> (&Parameters, &EncoderWeights) {
        (&self.params, &self.weights)
    }
}

/// A frozen, thread-safe representer produced by training.
pub struct TrainedRepresenter {
    encoder: Arc<TemporalPathEncoder>,
    inner: Mutex<(Parameters, EncoderWeights)>,
    name: String,
}

impl TrainedRepresenter {
    /// Assemble from previously trained (e.g. checkpointed) state.
    pub fn from_parts(
        encoder: Arc<TemporalPathEncoder>,
        params: Parameters,
        weights: EncoderWeights,
        name: impl Into<String>,
    ) -> Self {
        Self { encoder, inner: Mutex::new((params, weights)), name: name.into() }
    }
}

impl PathRepresenter for TrainedRepresenter {
    fn dim(&self) -> usize {
        self.encoder.out_dim()
    }

    fn represent(&self, _net: &RoadNetwork, path: &Path, departure: SimTime) -> Vec<f64> {
        let mut guard = self.inner.lock();
        let (params, weights) = &mut *guard;
        // Safe split: embed only reads weights but Graph requires &mut params.
        let weights = weights.clone();
        self.encoder.embed(params, &weights, path, departure)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::PopLabeler;

    fn quick_setup() -> (CityDataset, Arc<TemporalPathEncoder>) {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 11));
        let enc = Arc::new(TemporalPathEncoder::new(
            &ds.net,
            crate::encoder::EncoderConfig::tiny(),
            11,
        ));
        (ds, enc)
    }

    #[test]
    fn training_reduces_contrastive_loss() {
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 1);
        // Average loss over the first few steps vs. the last few.
        let mut losses = Vec::new();
        for _ in 0..30 {
            if let Some(l) = model.train_step(&ds.unlabeled, &PopLabeler) {
                losses.push(l);
            }
        }
        assert!(losses.len() >= 25, "most steps should produce a loss");
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(
            tail < head,
            "contrastive loss should fall during training: {head:.4} → {tail:.4}"
        );
    }

    #[test]
    fn trained_model_separates_weak_label_classes() {
        // After training, the same path at two same-label times should be
        // more similar than at different-label times.
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 2);
        model.train(&ds.unlabeled, &PopLabeler, 10);
        let cos = |a: &[f64], b: &[f64]| {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb)
        };
        let mut same_sum = 0.0;
        let mut diff_sum = 0.0;
        let mut n = 0;
        for s in ds.unlabeled.iter().take(10) {
            let peak1 = model.embed(&s.path, SimTime::from_hm(0, 8, 0));
            let peak2 = model.embed(&s.path, SimTime::from_hm(2, 8, 20));
            let off = model.embed(&s.path, SimTime::from_hm(0, 13, 0));
            same_sum += cos(&peak1, &peak2);
            diff_sum += cos(&peak1, &off);
            n += 1;
        }
        let (same, diff) = (same_sum / n as f64, diff_sum / n as f64);
        assert!(
            same > diff,
            "same weak label should be closer: same {same:.4} vs diff {diff:.4}"
        );
    }

    #[test]
    fn representer_is_deterministic_and_named() {
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 3);
        model.train_step(&ds.unlabeled, &PopLabeler);
        let rep = model.into_representer("WSCCL");
        let s = &ds.unlabeled[0];
        let a = rep.represent(&ds.net, &s.path, s.departure);
        let b = rep.represent(&ds.net, &s.path, s.departure);
        assert_eq!(a, b);
        assert_eq!(rep.name(), "WSCCL");
        assert_eq!(a.len(), rep.dim());
    }
}
