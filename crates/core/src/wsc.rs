//! The WSC base model (Fig. 5): temporal path encoder + WSC losses + Adam.
//!
//! Training is data-parallel: each step draws `cfg.shards` independent
//! sub-batches, runs forward + backward for every shard on its own tape over
//! the *shared* parameter values, reduces the shard gradients in shard order,
//! and applies a single optimizer step. The shard count is part of the math
//! (it determines which negatives each query sees); the thread count is not —
//! for a fixed seed and shard count, training is bit-for-bit identical at any
//! `cfg.threads`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_datagen::TemporalPathSample;
use wsccl_nn::optim::Adam;
use wsccl_nn::{GradStore, Graph, Parameters};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::{SimTime, WeakLabeler};

use crate::config::WscclConfig;
use crate::encoder::{EncoderWeights, TemporalPathEncoder};
use crate::loss::{wsc_loss_with_temperature, EncodedBatch};
use crate::represent::PathRepresenter;
use crate::sampler::build_batch;

/// A trainable WSC model instance. The (expensive, frozen) encoder tables are
/// shared via `Arc`; the trainable weights are private to this instance.
pub struct WscModel {
    encoder: Arc<TemporalPathEncoder>,
    params: Parameters,
    weights: EncoderWeights,
    optimizer: Adam,
    cfg: WscclConfig,
    rng: StdRng,
    /// Mean training loss per epoch, for diagnostics and tests.
    pub loss_history: Vec<f64>,
}

/// Forward + loss + backward for one shard on its own tape. Runs against the
/// shared read-only parameter values; everything this computes is a pure
/// function of `(params, weights, cfg, seed)`, which is what makes the
/// thread schedule irrelevant to the result.
fn run_shard(
    encoder: &TemporalPathEncoder,
    params: &Parameters,
    weights: &EncoderWeights,
    cfg: &WscclConfig,
    pool: &[TemporalPathSample],
    labeler: &dyn WeakLabeler,
    batch_size: usize,
    seed: u64,
) -> Option<(f64, GradStore)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let items = build_batch(&mut rng, pool, labeler, batch_size);
    let mut g = Graph::new(params);
    let mut tprs = Vec::with_capacity(items.len());
    let mut sters = Vec::with_capacity(items.len());
    for item in &items {
        let (tpr, st) = encoder.forward(&mut g, weights, &item.path, item.departure);
        tprs.push(tpr);
        sters.push(st);
    }
    let batch = EncodedBatch { items: &items, tprs, sters };
    let loss = wsc_loss_with_temperature(
        &mut g,
        &batch,
        &mut rng,
        cfg.lambda,
        cfg.local_edges,
        cfg.temperature,
    )?;
    let (value, grads) = g.finish(loss);
    value.is_finite().then_some((value, grads))
}

impl WscModel {
    pub fn new(encoder: Arc<TemporalPathEncoder>, cfg: WscclConfig, seed: u64) -> Self {
        let mut params = Parameters::new();
        let weights = encoder.init_weights(&mut params, seed);
        let optimizer = Adam::new(cfg.lr);
        Self {
            encoder,
            params,
            weights,
            optimizer,
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x5C3A),
            loss_history: Vec::new(),
        }
    }

    pub fn encoder(&self) -> &TemporalPathEncoder {
        &self.encoder
    }

    pub fn config(&self) -> &WscclConfig {
        &self.cfg
    }

    /// One optimization step over `cfg.shards` data-parallel sub-batches.
    /// Returns the mean shard loss, or `None` if no shard had usable
    /// contrastive structure.
    pub fn train_step(
        &mut self,
        pool: &[TemporalPathSample],
        labeler: &(dyn WeakLabeler + Sync),
    ) -> Option<f64> {
        let shards = self.cfg.shards.max(1);
        // Per-shard batch size; `build_batch` clamps to at least one anchor
        // block, so over-sharding degrades gracefully.
        let per_shard = (self.cfg.batch_size / shards).max(1);
        // Draw every shard's seed upfront, in shard order, so shard work is
        // independent of execution interleaving.
        let seeds: Vec<u64> = (0..shards).map(|_| self.rng.random()).collect();

        let threads = self.cfg.threads.max(1).min(shards);
        let results: Vec<Option<(f64, GradStore)>> = if threads == 1 {
            seeds
                .iter()
                .map(|&seed| {
                    run_shard(
                        &self.encoder,
                        &self.params,
                        &self.weights,
                        &self.cfg,
                        pool,
                        labeler,
                        per_shard,
                        seed,
                    )
                })
                .collect()
        } else {
            let (encoder, params, weights, cfg) =
                (&*self.encoder, &self.params, &self.weights, &self.cfg);
            let mut results: Vec<Option<(f64, GradStore)>> = (0..shards).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let seeds = &seeds;
                        scope.spawn(move |_| {
                            // Worker `t` owns shards t, t+threads, … — a fixed
                            // partition, so results carry their shard index.
                            (t..shards)
                                .step_by(threads)
                                .map(|s| {
                                    let r = run_shard(
                                        encoder, params, weights, cfg, pool, labeler,
                                        per_shard, seeds[s],
                                    );
                                    (s, r)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (s, r) in h.join().expect("shard worker panicked") {
                        results[s] = r;
                    }
                }
            })
            .expect("shard scope");
            results
        };

        // Reduce in ascending shard order (results is shard-indexed), average,
        // clip, and take one optimizer step.
        let mut total = GradStore::new();
        let mut loss_sum = 0.0;
        let mut used = 0usize;
        for (value, grads) in results.into_iter().flatten() {
            total.accumulate(&grads);
            loss_sum += value;
            used += 1;
        }
        if used == 0 {
            return None;
        }
        total.scale(1.0 / used as f64);
        total.clip_norm(self.cfg.grad_clip);
        self.optimizer.step(&mut self.params, &total);
        Some(loss_sum / used as f64)
    }

    /// Train for `epochs` passes of `pool.len() / batch_size` steps each.
    pub fn train(
        &mut self,
        pool: &[TemporalPathSample],
        labeler: &(dyn WeakLabeler + Sync),
        epochs: usize,
    ) {
        assert!(!pool.is_empty(), "cannot train on an empty pool");
        let steps = (pool.len() / self.cfg.batch_size).max(1);
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut n = 0usize;
            for _ in 0..steps {
                if let Some(l) = self.train_step(pool, labeler) {
                    total += l;
                    n += 1;
                }
            }
            self.loss_history.push(if n > 0 { total / n as f64 } else { f64::NAN });
        }
    }

    /// Embed one temporal path.
    pub fn embed(&self, path: &Path, departure: SimTime) -> Vec<f64> {
        self.encoder.embed(&self.params, &self.weights, path, departure)
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// Freeze into a shareable [`PathRepresenter`].
    pub fn into_representer(self, name: impl Into<String>) -> TrainedRepresenter {
        TrainedRepresenter {
            encoder: self.encoder,
            params: self.params,
            weights: self.weights,
            name: name.into(),
        }
    }

    /// Borrow the trained weights (for transfer, e.g. pre-training PathRank).
    pub fn weights(&self) -> (&Parameters, &EncoderWeights) {
        (&self.params, &self.weights)
    }
}

/// A frozen, thread-safe representer produced by training.
///
/// `represent` is lock-free: inference builds a throwaway tape over shared
/// read-only state, so any number of threads can embed concurrently through a
/// plain `&TrainedRepresenter` without synchronization or weight copies.
pub struct TrainedRepresenter {
    encoder: Arc<TemporalPathEncoder>,
    params: Parameters,
    weights: EncoderWeights,
    name: String,
}

impl TrainedRepresenter {
    /// Assemble from previously trained (e.g. checkpointed) state.
    pub fn from_parts(
        encoder: Arc<TemporalPathEncoder>,
        params: Parameters,
        weights: EncoderWeights,
        name: impl Into<String>,
    ) -> Self {
        Self { encoder, params, weights, name: name.into() }
    }
}

impl PathRepresenter for TrainedRepresenter {
    fn dim(&self) -> usize {
        self.encoder.out_dim()
    }

    fn represent(&self, _net: &RoadNetwork, path: &Path, departure: SimTime) -> Vec<f64> {
        self.encoder.embed(&self.params, &self.weights, path, departure)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::PopLabeler;

    fn quick_setup() -> (CityDataset, Arc<TemporalPathEncoder>) {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 11));
        let enc = Arc::new(TemporalPathEncoder::new(
            &ds.net,
            crate::encoder::EncoderConfig::tiny(),
            11,
        ));
        (ds, enc)
    }

    #[test]
    fn training_reduces_contrastive_loss() {
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 1);
        // Average loss over the first few steps vs. the last few.
        let mut losses = Vec::new();
        for _ in 0..30 {
            if let Some(l) = model.train_step(&ds.unlabeled, &PopLabeler) {
                losses.push(l);
            }
        }
        assert!(losses.len() >= 25, "most steps should produce a loss");
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(
            tail < head,
            "contrastive loss should fall during training: {head:.4} → {tail:.4}"
        );
    }

    #[test]
    fn trained_model_separates_weak_label_classes() {
        // After training, the same path at two same-label times should be
        // more similar than at different-label times.
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 6);
        model.train(&ds.unlabeled, &PopLabeler, 10);
        let cos = |a: &[f64], b: &[f64]| {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb)
        };
        let mut same_sum = 0.0;
        let mut diff_sum = 0.0;
        let mut n = 0;
        for s in ds.unlabeled.iter().take(10) {
            let peak1 = model.embed(&s.path, SimTime::from_hm(0, 8, 0));
            let peak2 = model.embed(&s.path, SimTime::from_hm(2, 8, 20));
            let off = model.embed(&s.path, SimTime::from_hm(0, 13, 0));
            same_sum += cos(&peak1, &peak2);
            diff_sum += cos(&peak1, &off);
            n += 1;
        }
        let (same, diff) = (same_sum / n as f64, diff_sum / n as f64);
        assert!(
            same > diff,
            "same weak label should be closer: same {same:.4} vs diff {diff:.4}"
        );
    }

    #[test]
    fn representer_is_deterministic_and_named() {
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 3);
        model.train_step(&ds.unlabeled, &PopLabeler);
        let rep = model.into_representer("WSCCL");
        let s = &ds.unlabeled[0];
        let a = rep.represent(&ds.net, &s.path, s.departure);
        let b = rep.represent(&ds.net, &s.path, s.departure);
        assert_eq!(a, b);
        assert_eq!(rep.name(), "WSCCL");
        assert_eq!(a.len(), rep.dim());
    }

    #[test]
    fn representer_is_shareable_across_threads_without_locks() {
        // Regression test for the lock-free `represent`: a plain shared
        // reference is embedded from several threads concurrently and every
        // thread must see the exact single-threaded result.
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 4);
        model.train_step(&ds.unlabeled, &PopLabeler);
        let rep = model.into_representer("WSCCL");
        let samples: Vec<_> = ds.unlabeled.iter().take(8).collect();
        let expected: Vec<Vec<f64>> =
            samples.iter().map(|s| rep.represent(&ds.net, &s.path, s.departure)).collect();

        let rep = &rep;
        let net = &ds.net;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let samples = &samples;
                    scope.spawn(move |_| {
                        samples
                            .iter()
                            .map(|s| rep.represent(net, &s.path, s.departure))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("embed thread"), expected);
            }
        })
        .expect("embed scope");
    }

    #[test]
    fn thread_count_does_not_change_training() {
        // `threads` is an execution knob only: for a fixed seed and shard
        // count, every thread count must produce bit-for-bit identical
        // training trajectories and final embeddings.
        let (ds, enc) = quick_setup();
        let train = |threads: usize| {
            let cfg = WscclConfig { shards: 4, threads, ..WscclConfig::tiny() };
            let mut model = WscModel::new(Arc::clone(&enc), cfg, 7);
            model.train(&ds.unlabeled, &PopLabeler, 2);
            let emb: Vec<Vec<f64>> = ds
                .unlabeled
                .iter()
                .take(5)
                .map(|s| model.embed(&s.path, s.departure))
                .collect();
            (model.loss_history.clone(), emb)
        };
        let (hist1, emb1) = train(1);
        let (hist4, emb4) = train(4);
        assert_eq!(hist1, hist4, "loss history must not depend on thread count");
        assert_eq!(emb1, emb4, "final embeddings must not depend on thread count");
    }

    #[test]
    fn sharded_training_still_reduces_loss() {
        let (ds, enc) = quick_setup();
        let cfg = WscclConfig { shards: 2, batch_size: 16, ..WscclConfig::tiny() };
        let mut model = WscModel::new(enc, cfg, 5);
        let mut losses = Vec::new();
        for _ in 0..30 {
            if let Some(l) = model.train_step(&ds.unlabeled, &PopLabeler) {
                losses.push(l);
            }
        }
        assert!(losses.len() >= 25, "most sharded steps should produce a loss");
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(tail < head, "sharded loss should fall: {head:.4} → {tail:.4}");
    }
}
