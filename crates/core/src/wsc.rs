//! The WSC base model (Fig. 5): temporal path encoder + WSC losses, trained
//! through the shared [`wsccl_train`] engine.
//!
//! Training is data-parallel: each step draws `cfg.shards` independent
//! sub-batches, runs forward + backward for every shard on its own tape over
//! the *shared* parameter values, reduces the shard gradients in shard order,
//! and applies a single optimizer step. The shard count is part of the math
//! (it determines which negatives each query sees); the thread count is not —
//! for a fixed seed and shard count, training is bit-for-bit identical at any
//! `cfg.threads`. All of that now lives in [`wsccl_train::Trainer`]; this
//! module only knows how to build one shard's loss.

use std::sync::Arc;

use rand::rngs::StdRng;

use wsccl_datagen::SamplePool;
use wsccl_nn::{Graph, NodeId, Parameters};
use wsccl_roadnet::{Path, RoadNetwork};
use wsccl_traffic::{SimTime, WeakLabeler};
use wsccl_train::{
    LrSchedule, NoopObserver, OptimizerKind, TrainObserver, TrainSpec, Trainable, Trainer,
};

use crate::config::WscclConfig;
use crate::encoder::{EncoderWeights, FrozenEncoder, TemporalPathEncoder};
use crate::loss::{wsc_loss_with_temperature, EncodedBatch};
use crate::persist::EngineCheckpoint;
use crate::represent::PathRepresenter;
use crate::sampler::build_batch;

/// A trainable WSC model instance. The (expensive, frozen) encoder tables are
/// shared via `Arc`; the trainable weights are private to this instance.
pub struct WscModel {
    encoder: Arc<TemporalPathEncoder>,
    params: Parameters,
    weights: EncoderWeights,
    trainer: Trainer,
    cfg: WscclConfig,
    /// Mean training loss per epoch, for diagnostics and tests.
    pub loss_history: Vec<f64>,
}

/// Map the model config onto an engine spec: Adam at a constant rate with
/// clipping, shard/thread knobs passed straight through.
fn train_spec(cfg: &WscclConfig, seed: u64) -> TrainSpec {
    TrainSpec {
        epochs: cfg.epochs,
        optimizer: OptimizerKind::Adam,
        lr: cfg.lr,
        schedule: LrSchedule::Constant,
        grad_clip: Some(cfg.grad_clip),
        seed,
        shards: cfg.shards,
        threads: cfg.threads,
        pool_buffers: cfg.pooling,
        kernels: cfg.kernels,
    }
}

/// WSC as seen by the engine. Every batch is a unit marker: the actual
/// sub-batch is sampled inside the shard from the shard RNG, so each of the
/// `cfg.shards` shards sees its own independently drawn sub-batch. Everything
/// a shard computes is a pure function of `(params, weights, cfg, shard
/// seed)`, which is what makes the thread schedule irrelevant to the result.
struct WscTrainable<'a, P: SamplePool + ?Sized> {
    encoder: &'a TemporalPathEncoder,
    weights: &'a EncoderWeights,
    cfg: &'a WscclConfig,
    pool: &'a P,
    labeler: &'a (dyn WeakLabeler + Sync),
    /// Per-shard batch size; `build_batch` clamps to at least one anchor
    /// block, so over-sharding degrades gracefully.
    per_shard: usize,
    /// Steps per epoch.
    steps: usize,
}

impl<'a, P: SamplePool + ?Sized> WscTrainable<'a, P> {
    fn new(
        encoder: &'a TemporalPathEncoder,
        weights: &'a EncoderWeights,
        cfg: &'a WscclConfig,
        pool: &'a P,
        labeler: &'a (dyn WeakLabeler + Sync),
        steps: usize,
    ) -> Self {
        let per_shard = (cfg.batch_size / cfg.shards.max(1)).max(1);
        Self { encoder, weights, cfg, pool, labeler, per_shard, steps }
    }
}

impl<P: SamplePool + ?Sized> Trainable for WscTrainable<'_, P> {
    type Batch = ();

    fn epoch_batches(&mut self, _epoch: u64, _rng: &mut StdRng) -> Vec<()> {
        vec![(); self.steps]
    }

    fn build_loss(&self, g: &mut Graph<'_>, _batch: &(), rng: &mut StdRng) -> Option<NodeId> {
        let items = build_batch(rng, self.pool, self.labeler, self.per_shard);
        let mut tprs = Vec::with_capacity(items.len());
        let mut sters = Vec::with_capacity(items.len());
        for item in &items {
            let (tpr, st) = self.encoder.forward(g, self.weights, &item.path, item.departure);
            tprs.push(tpr);
            sters.push(st);
        }
        let batch = EncodedBatch { items: &items, tprs, sters };
        wsc_loss_with_temperature(
            g,
            &batch,
            rng,
            self.cfg.lambda,
            self.cfg.local_edges,
            self.cfg.temperature,
        )
    }
}

impl WscModel {
    pub fn new(encoder: Arc<TemporalPathEncoder>, cfg: WscclConfig, seed: u64) -> Self {
        let mut params = Parameters::new();
        let weights = encoder.init_weights(&mut params, seed);
        let trainer = Trainer::new(train_spec(&cfg, seed));
        Self { encoder, params, weights, trainer, cfg, loss_history: Vec::new() }
    }

    pub fn encoder(&self) -> &TemporalPathEncoder {
        &self.encoder
    }

    pub fn config(&self) -> &WscclConfig {
        &self.cfg
    }

    /// Override the base learning rate for subsequent training (fine-tuning
    /// a warm-started model at a fraction of the from-scratch rate). Does not
    /// touch `config().lr`, which stays the from-scratch rate.
    pub fn set_lr(&mut self, lr: f64) {
        self.trainer.set_base_lr(lr);
    }

    /// Tape buffer-pool statistics accumulated by the training engine (all
    /// zeros when `cfg.pooling` is off).
    pub fn pool_stats(&self) -> wsccl_nn::PoolStats {
        self.trainer.pool_stats()
    }

    /// Start per-op tape profiling for every subsequent training step.
    /// Profiling observes timing only and never changes the math.
    pub fn enable_profiling(&mut self) {
        self.trainer.enable_profiling();
    }

    /// Merged per-op forward/backward timings across all shards.
    pub fn profile(&self) -> wsccl_obs::TapeProfile {
        self.trainer.profile()
    }

    /// Discard accumulated profile data (profiling stays enabled).
    pub fn reset_profile(&mut self) {
        self.trainer.reset_profile();
    }

    /// Install a numeric anomaly guard on the underlying trainer. The guard
    /// watches every step's loss and gradient norm.
    pub fn set_anomaly_guard(&mut self, guard: wsccl_obs::AnomalyGuard) {
        self.trainer.set_anomaly_guard(guard);
    }

    /// The installed anomaly guard, if any, with its recorded events.
    pub fn anomaly_guard(&self) -> Option<&wsccl_obs::AnomalyGuard> {
        self.trainer.anomaly_guard()
    }

    /// One optimization step over `cfg.shards` data-parallel sub-batches.
    /// Returns the mean shard loss, or `None` if no shard had usable
    /// contrastive structure. The pool may live in memory or be an
    /// mmap-backed [`wsccl_datagen::DiskDataset`]; the math is identical.
    pub fn train_step<P: SamplePool + ?Sized>(
        &mut self,
        pool: &P,
        labeler: &(dyn WeakLabeler + Sync),
    ) -> Option<f64> {
        let Self { encoder, params, weights, trainer, cfg, .. } = self;
        let mut t = WscTrainable::new(encoder, weights, cfg, pool, labeler, 1);
        trainer.step(&mut t, params, &()).map(|o| o.loss)
    }

    /// Train for `epochs` passes of `pool.len() / batch_size` steps each.
    pub fn train<P: SamplePool + ?Sized>(
        &mut self,
        pool: &P,
        labeler: &(dyn WeakLabeler + Sync),
        epochs: usize,
    ) {
        self.train_observed(pool, labeler, epochs, &mut NoopObserver);
    }

    /// [`Self::train`] with a [`TrainObserver`] receiving per-step and
    /// per-epoch records.
    pub fn train_observed<P: SamplePool + ?Sized>(
        &mut self,
        pool: &P,
        labeler: &(dyn WeakLabeler + Sync),
        epochs: usize,
        observer: &mut dyn TrainObserver,
    ) {
        assert!(!pool.is_empty(), "cannot train on an empty pool");
        let Self { encoder, params, weights, trainer, cfg, loss_history } = self;
        let steps = (pool.len() / cfg.batch_size).max(1);
        let mut t = WscTrainable::new(encoder, weights, cfg, pool, labeler, steps);
        let history = trainer.run(&mut t, params, epochs, observer);
        loss_history.extend(history);
    }

    /// Snapshot the full training run (weights + optimizer moments + engine
    /// RNG + counters). `encoder_seed` is the seed the frozen encoder tables
    /// were built from, so [`Self::resume`] can rebuild them.
    pub fn checkpoint(&self, encoder_seed: u64) -> EngineCheckpoint {
        EngineCheckpoint::new(
            self.encoder.config().clone(),
            encoder_seed,
            self.cfg.clone(),
            self.params.clone(),
            self.weights.clone(),
            self.trainer.state(),
            self.loss_history.clone(),
        )
    }

    /// Continue a checkpointed run, rebuilding the frozen encoder tables
    /// from `(encoder_config, encoder_seed)`. The resumed model's trajectory
    /// is bit-for-bit the one the checkpointed model would have produced.
    pub fn resume(net: &RoadNetwork, cp: EngineCheckpoint) -> Self {
        let encoder =
            Arc::new(TemporalPathEncoder::new(net, cp.encoder_config.clone(), cp.encoder_seed));
        Self::resume_with_encoder(encoder, cp)
    }

    /// [`Self::resume`] with an already-built (shared) encoder.
    pub fn resume_with_encoder(encoder: Arc<TemporalPathEncoder>, cp: EngineCheckpoint) -> Self {
        Self {
            encoder,
            params: cp.params,
            weights: cp.weights,
            trainer: Trainer::from_state(cp.trainer),
            cfg: cp.config,
            loss_history: cp.loss_history,
        }
    }

    /// Embed one temporal path.
    pub fn embed(&self, path: &Path, departure: SimTime) -> Vec<f64> {
        self.encoder.embed(&self.params, &self.weights, path, departure)
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// Freeze into a shareable [`PathRepresenter`].
    pub fn into_representer(self, name: impl Into<String>) -> TrainedRepresenter {
        TrainedRepresenter::from_parts(self.encoder, self.params, self.weights, name)
    }

    /// Borrow the trained weights (for transfer, e.g. pre-training PathRank).
    pub fn weights(&self) -> (&Parameters, &EncoderWeights) {
        (&self.params, &self.weights)
    }

    /// Global optimizer step counter (survives checkpoint/resume).
    pub fn global_step(&self) -> u64 {
        self.trainer.step_count()
    }

    /// Mutable access to the trainable parameters. Intended for test
    /// instrumentation (e.g. fault injection); mutating mid-run forfeits the
    /// bit-reproducibility guarantees.
    pub fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }
}

/// A frozen, thread-safe representer produced by training.
///
/// `represent` is lock-free: inference builds a throwaway tape over shared
/// read-only state, so any number of threads can embed concurrently through a
/// plain `&TrainedRepresenter` without synchronization or weight copies.
///
/// Construction additionally freezes an f32 copy of the trained weights
/// (LSTM arch only) so [`TrainedRepresenter::embed`] can skip the tape
/// entirely; `represent` stays on the f64 path as the precision oracle.
pub struct TrainedRepresenter {
    encoder: Arc<TemporalPathEncoder>,
    params: Parameters,
    weights: EncoderWeights,
    frozen: Option<FrozenEncoder>,
    name: String,
}

impl TrainedRepresenter {
    /// Assemble from previously trained (e.g. checkpointed) state.
    pub fn from_parts(
        encoder: Arc<TemporalPathEncoder>,
        params: Parameters,
        weights: EncoderWeights,
        name: impl Into<String>,
    ) -> Self {
        let frozen = encoder.freeze(&params, &weights);
        Self { encoder, params, weights, frozen, name: name.into() }
    }

    /// Fast single-path embedding: the f32 inference path through the active
    /// SIMD kernel backend (falls back to the f64 tape for the Transformer
    /// arch, which has no frozen form). Differs from
    /// [`PathRepresenter::represent`] only by f32 rounding; records a
    /// per-backend `embed_us.<backend>` latency histogram.
    pub fn embed(&self, path: &Path, departure: SimTime) -> Vec<f64> {
        let start = std::time::Instant::now();
        let v = match &self.frozen {
            Some(f) => self.encoder.embed_frozen(f, path, departure),
            None => self.encoder.embed(&self.params, &self.weights, path, departure),
        };
        let us = start.elapsed().as_nanos() as f64 / 1e3;
        let name = match wsccl_nn::kernels::active_name() {
            "simd" => "embed_us.simd",
            _ => "embed_us.scalar",
        };
        wsccl_obs::global().latency_us(name).record(us);
        v
    }

    /// Whether the f32 frozen fast path is available (LSTM arch).
    pub fn has_frozen_path(&self) -> bool {
        self.frozen.is_some()
    }

    /// The shared frozen encoder tables backing this representer. Hot
    /// checkpoint reload reuses these via
    /// [`EngineCheckpoint`](crate::persist::EngineCheckpoint) +
    /// [`TrainedRepresenter::from_parts`] instead of regenerating them.
    pub fn encoder_arc(&self) -> Arc<TemporalPathEncoder> {
        Arc::clone(&self.encoder)
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Batched [`TrainedRepresenter::embed`]: `N` queries through one fused
    /// f32 forward pass per timestep (see
    /// [`TemporalPathEncoder::embed_frozen_batch`]). Each returned embedding
    /// is bitwise identical to the corresponding single `embed` call; the
    /// Transformer arch (no frozen form) falls back to the embed loop.
    ///
    /// `scratch` carries the reusable batch buffers; the serving loop holds
    /// one across its lifetime so steady-state batches allocate nothing.
    pub fn embed_batch_with(
        &self,
        queries: &[(&Path, SimTime)],
        scratch: &mut crate::encoder::BatchScratch,
    ) -> Vec<Vec<f64>> {
        match &self.frozen {
            Some(f) => {
                let start = std::time::Instant::now();
                let out = self.encoder.embed_frozen_batch(f, queries, scratch);
                let us = start.elapsed().as_nanos() as f64 / 1e3;
                wsccl_obs::global().latency_us("embed_batch_us").record(us);
                out
            }
            None => queries.iter().map(|&(p, t)| self.embed(p, t)).collect(),
        }
    }

    /// [`TrainedRepresenter::embed_batch_with`] with a throwaway scratch.
    pub fn embed_batch(&self, queries: &[(&Path, SimTime)]) -> Vec<Vec<f64>> {
        self.embed_batch_with(queries, &mut crate::encoder::BatchScratch::default())
    }
}

impl PathRepresenter for TrainedRepresenter {
    fn dim(&self) -> usize {
        self.encoder.out_dim()
    }

    fn represent(&self, _net: &RoadNetwork, path: &Path, departure: SimTime) -> Vec<f64> {
        self.encoder.embed(&self.params, &self.weights, path, departure)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_datagen::{CityDataset, DatasetConfig};
    use wsccl_roadnet::CityProfile;
    use wsccl_traffic::PopLabeler;
    use wsccl_train::LossCurve;

    fn quick_setup() -> (CityDataset, Arc<TemporalPathEncoder>) {
        let ds = CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 11));
        let enc =
            Arc::new(TemporalPathEncoder::new(&ds.net, crate::encoder::EncoderConfig::tiny(), 11));
        (ds, enc)
    }

    #[test]
    fn training_reduces_contrastive_loss() {
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 1);
        // Average loss over the first few steps vs. the last few.
        let mut losses = Vec::new();
        for _ in 0..30 {
            if let Some(l) = model.train_step(&ds.unlabeled, &PopLabeler) {
                losses.push(l);
            }
        }
        assert!(losses.len() >= 25, "most steps should produce a loss");
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(tail < head, "contrastive loss should fall during training: {head:.4} → {tail:.4}");
    }

    #[test]
    fn trained_model_separates_weak_label_classes() {
        // After training, the same path at two same-label times should be
        // more similar than at different-label times.
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 6);
        model.train(&ds.unlabeled, &PopLabeler, 10);
        let cos = |a: &[f64], b: &[f64]| {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb)
        };
        let mut same_sum = 0.0;
        let mut diff_sum = 0.0;
        let mut n = 0;
        for s in ds.unlabeled.iter().take(10) {
            let peak1 = model.embed(&s.path, SimTime::from_hm(0, 8, 0));
            let peak2 = model.embed(&s.path, SimTime::from_hm(2, 8, 20));
            let off = model.embed(&s.path, SimTime::from_hm(0, 13, 0));
            same_sum += cos(&peak1, &peak2);
            diff_sum += cos(&peak1, &off);
            n += 1;
        }
        let (same, diff) = (same_sum / n as f64, diff_sum / n as f64);
        assert!(same > diff, "same weak label should be closer: same {same:.4} vs diff {diff:.4}");
    }

    #[test]
    fn representer_is_deterministic_and_named() {
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 3);
        model.train_step(&ds.unlabeled, &PopLabeler);
        let rep = model.into_representer("WSCCL");
        let s = &ds.unlabeled[0];
        let a = rep.represent(&ds.net, &s.path, s.departure);
        let b = rep.represent(&ds.net, &s.path, s.departure);
        assert_eq!(a, b);
        assert_eq!(rep.name(), "WSCCL");
        assert_eq!(a.len(), rep.dim());
    }

    #[test]
    fn representer_is_shareable_across_threads_without_locks() {
        // Regression test for the lock-free `represent`: a plain shared
        // reference is embedded from several threads concurrently and every
        // thread must see the exact single-threaded result.
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 4);
        model.train_step(&ds.unlabeled, &PopLabeler);
        let rep = model.into_representer("WSCCL");
        let samples: Vec<_> = ds.unlabeled.iter().take(8).collect();
        let expected: Vec<Vec<f64>> =
            samples.iter().map(|s| rep.represent(&ds.net, &s.path, s.departure)).collect();

        let rep = &rep;
        let net = &ds.net;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let samples = &samples;
                    scope.spawn(move |_| {
                        samples
                            .iter()
                            .map(|s| rep.represent(net, &s.path, s.departure))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("embed thread"), expected);
            }
        })
        .expect("embed scope");
    }

    #[test]
    fn thread_count_does_not_change_training() {
        // `threads` is an execution knob only: for a fixed seed and shard
        // count, every thread count must produce bit-for-bit identical
        // training trajectories and final embeddings. This now exercises the
        // engine's shard-parallel path end to end.
        let (ds, enc) = quick_setup();
        let train = |threads: usize| {
            let cfg = WscclConfig { shards: 4, threads, ..WscclConfig::tiny() };
            let mut model = WscModel::new(Arc::clone(&enc), cfg, 7);
            model.train(&ds.unlabeled, &PopLabeler, 2);
            let emb: Vec<Vec<f64>> =
                ds.unlabeled.iter().take(5).map(|s| model.embed(&s.path, s.departure)).collect();
            (model.loss_history.clone(), emb)
        };
        let (hist1, emb1) = train(1);
        let (hist4, emb4) = train(4);
        assert_eq!(hist1, hist4, "loss history must not depend on thread count");
        assert_eq!(emb1, emb4, "final embeddings must not depend on thread count");
    }

    #[test]
    fn kernel_backend_does_not_change_training() {
        // The f64 kernel contract: scalar and SIMD backends are bit-identical,
        // so the full training trajectory — loss history and final embeddings —
        // must not depend on which backend is active.
        use wsccl_nn::kernels::{self, KernelBackend};
        let (ds, enc) = quick_setup();
        let train = |backend: KernelBackend| {
            kernels::force(backend);
            let mut model = WscModel::new(Arc::clone(&enc), WscclConfig::tiny(), 7);
            model.train(&ds.unlabeled, &PopLabeler, 2);
            let emb: Vec<Vec<f64>> =
                ds.unlabeled.iter().take(5).map(|s| model.embed(&s.path, s.departure)).collect();
            (model.loss_history.clone(), emb)
        };
        let (hist_s, emb_s) = train(KernelBackend::Scalar);
        let (hist_v, emb_v) = train(KernelBackend::Simd);
        kernels::force(KernelBackend::Auto);
        assert_eq!(hist_s, hist_v, "loss history must not depend on the kernel backend");
        assert_eq!(emb_s, emb_v, "embeddings must not depend on the kernel backend");
    }

    #[test]
    fn f32_embedding_drift() {
        // The frozen f32 inference path may drift from the f64 tape oracle
        // only by f32 rounding. Stated bound (also in DESIGN.md): relative
        // L2 drift below 1e-4 per path, under both kernel backends.
        use wsccl_nn::kernels::{self, KernelBackend};
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(Arc::clone(&enc), WscclConfig::tiny(), 3);
        model.train(&ds.unlabeled, &PopLabeler, 1);
        let rep = model.into_representer("WSCCL");
        assert!(rep.has_frozen_path(), "LSTM encoder must freeze to an f32 path");
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            kernels::force(backend);
            for s in ds.unlabeled.iter().take(10) {
                let oracle = rep.represent(&ds.net, &s.path, s.departure);
                let fast = rep.embed(&s.path, s.departure);
                let norm: f64 = oracle.iter().map(|v| v * v).sum::<f64>().sqrt();
                let drift: f64 =
                    oracle.iter().zip(&fast).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
                assert!(
                    drift <= 1e-4 * norm.max(1e-8),
                    "f32 drift {drift:.3e} vs ‖oracle‖ {norm:.3e} under {}",
                    kernels::active_name()
                );
            }
        }
        kernels::force(KernelBackend::Auto);
    }

    #[test]
    fn embed_batch_is_bitwise_equal_to_looped_embed() {
        // The serving contract: batched f32 embeddings are **bitwise** equal
        // to looped single `embed()` calls for every batch size 1..=17 (odd
        // tails included), under both kernel backends. The batch mixes path
        // lengths and departure slots so the active-prefix shrink logic and
        // the per-query temporal rows are both exercised.
        use wsccl_nn::kernels::{self, KernelBackend};
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(Arc::clone(&enc), WscclConfig::tiny(), 8);
        model.train(&ds.unlabeled, &PopLabeler, 1);
        let rep = model.into_representer("WSCCL");
        assert!(rep.has_frozen_path(), "LSTM encoder must freeze to an f32 path");
        let mut scratch = crate::encoder::BatchScratch::default();
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            kernels::force(backend);
            for n in 1..=17usize {
                let queries: Vec<(&Path, SimTime)> = ds
                    .unlabeled
                    .iter()
                    .cycle()
                    .take(n)
                    .enumerate()
                    .map(|(i, s)| (&s.path, SimTime::new(s.departure.seconds() + 700 * i as u32)))
                    .collect();
                let single: Vec<Vec<f64>> = queries.iter().map(|&(p, t)| rep.embed(p, t)).collect();
                let batched = rep.embed_batch_with(&queries, &mut scratch);
                assert_eq!(
                    batched,
                    single,
                    "batch size {n} must be bitwise equal under {}",
                    kernels::active_name()
                );
            }
        }
        kernels::force(KernelBackend::Auto);
    }

    #[test]
    fn sharded_training_still_reduces_loss() {
        let (ds, enc) = quick_setup();
        let cfg = WscclConfig { shards: 2, batch_size: 16, ..WscclConfig::tiny() };
        let mut model = WscModel::new(enc, cfg, 5);
        let mut losses = Vec::new();
        for _ in 0..30 {
            if let Some(l) = model.train_step(&ds.unlabeled, &PopLabeler) {
                losses.push(l);
            }
        }
        assert!(losses.len() >= 25, "most sharded steps should produce a loss");
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(tail < head, "sharded loss should fall: {head:.4} → {tail:.4}");
    }

    #[test]
    fn observer_sees_every_step_and_epoch() {
        let (ds, enc) = quick_setup();
        let mut model = WscModel::new(enc, WscclConfig::tiny(), 2);
        let mut curve = LossCurve::new();
        let epochs = 3;
        let steps = (ds.unlabeled.len() / model.config().batch_size).max(1);
        model.train_observed(&ds.unlabeled, &PopLabeler, epochs, &mut curve);
        assert_eq!(curve.step_losses.len(), epochs * steps);
        assert_eq!(curve.epoch_losses.len(), epochs);
        assert_eq!(curve.epoch_losses, model.loss_history);
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        // The acceptance test for engine checkpointing: train A for 4 epochs
        // straight; train B for 2 epochs, checkpoint through bytes (as a
        // killed and restarted process would), resume, train 2 more. Loss
        // histories and final embeddings must agree bit for bit. B logs both
        // halves through a JSONL observer — run logging must neither perturb
        // the math nor break across a kill/resume boundary.
        use wsccl_train::JsonlObserver;
        let (ds, enc) = quick_setup();
        let cfg = WscclConfig { shards: 2, ..WscclConfig::tiny() };

        let mut a = WscModel::new(Arc::clone(&enc), cfg.clone(), 9);
        a.train(&ds.unlabeled, &PopLabeler, 4);

        let mut log = JsonlObserver::new(Vec::new());
        log.set_phase("before-kill");
        let mut b = WscModel::new(Arc::clone(&enc), cfg, 9);
        b.train_observed(&ds.unlabeled, &PopLabeler, 2, &mut log);
        let mut buf = Vec::new();
        b.checkpoint(11).write_to(&mut buf).expect("write checkpoint");
        drop(b);
        let cp = EngineCheckpoint::read_from(&mut buf.as_slice()).expect("read checkpoint");
        // The encoder tables are deterministic per (config, seed); sharing
        // the Arc here mirrors `resume` without re-running node2vec.
        let mut b = WscModel::resume_with_encoder(Arc::clone(&enc), cp);
        log.set_phase("after-resume");
        b.train_observed(&ds.unlabeled, &PopLabeler, 2, &mut log);

        // The log spans the kill: step records in both phases, step counters
        // continuing (not restarting) after resume.
        let text = String::from_utf8(log.into_inner()).expect("utf8 log");
        let steps: Vec<wsccl_train::StepLine> = text
            .lines()
            .filter_map(|l| serde_json::from_str(l).ok())
            .filter(|s: &wsccl_train::StepLine| s.record == "step")
            .collect();
        assert!(steps.iter().any(|s| s.phase == "before-kill"));
        assert!(steps.iter().any(|s| s.phase == "after-resume"));
        for w in steps.windows(2) {
            assert!(w[1].step > w[0].step, "step counter must survive the resume");
        }

        assert_eq!(a.loss_history, b.loss_history, "resumed loss history must match");
        for s in ds.unlabeled.iter().take(5) {
            assert_eq!(
                a.embed(&s.path, s.departure),
                b.embed(&s.path, s.departure),
                "resumed embeddings must match"
            );
        }
    }
}
