//! WSCCL hyperparameters.

use serde::{Deserialize, Serialize};

use wsccl_nn::KernelBackend;

use crate::encoder::EncoderConfig;

/// Full training configuration.
///
/// Paper defaults (§VII-A.6): d_rt/d_l/d_o/d_ts = 64/32/16/16, node2vec dim
/// 128, 2 LSTM layers of 128, λ = 0.8, lr = 3e-4, batch 32, N = M = 10.
/// Reproduction defaults scale every width down ~4–8× and N = M down to 4 so
/// the full evaluation runs on CPU (DESIGN.md §1); the λ and the structure are
/// unchanged.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WscclConfig {
    pub encoder: EncoderConfig,
    /// Balance between global and local WSC loss (Eq. 12); paper: 0.8.
    pub lambda: f64,
    /// Temperature τ̂ dividing the cosine similarities in the global WSC loss
    /// (the paper's Eq. 9 carries a temperature; Eq. 10 inherits the
    /// convention from SupCon). Values > 1 soften the uniformity pressure,
    /// which matters at reproduction scale where a small encoder can
    /// otherwise orthogonalize the whole training pool.
    pub temperature: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Minibatch size (anchor–positive–negative blocks; see `sampler`).
    pub batch_size: usize,
    /// Training epochs for the plain WSC model (and the final curriculum
    /// stage).
    pub epochs: usize,
    /// Number of meta-sets N = number of curriculum stages M (§VI; paper 10).
    pub num_meta_sets: usize,
    /// Epochs used to train each curriculum expert.
    pub expert_epochs: usize,
    /// Positive/negative edges sampled per query for the local loss.
    pub local_edges: usize,
    /// Gradient clipping threshold (global L2 norm).
    pub grad_clip: f64,
    /// Number of data-parallel shards per contrastive training step. Each
    /// shard is an independently sampled sub-batch (negatives stay within the
    /// shard) whose gradients are reduced in shard order before one optimizer
    /// step. This is a *logical* split: it changes the math, so it lives in
    /// the config; see `threads` for the execution knob.
    pub shards: usize,
    /// Worker threads used to execute the shards of one training step.
    /// Purely an execution detail — any value produces bit-for-bit identical
    /// training for a fixed seed and shard count.
    pub threads: usize,
    /// Recycle tape buffers across training steps (see `wsccl_nn::TensorPool`).
    /// Execution detail only: pooled and unpooled training are bit-for-bit
    /// identical. Defaults to on; configs written before this knob existed
    /// load as on.
    #[serde(default = "default_pooling")]
    pub pooling: bool,
    /// Compute kernel backend (scalar oracle vs. AVX2 SIMD). Execution detail
    /// only for f64 training — every choice is bit-for-bit identical; it also
    /// selects the f32 inference kernels. `Auto` picks SIMD when the CPU
    /// supports AVX2+FMA. Overridable at run time via `WSCCL_KERNELS`.
    #[serde(default)]
    pub kernels: KernelBackend,
    pub seed: u64,
}

fn default_pooling() -> bool {
    true
}

impl Default for WscclConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderConfig::default(),
            lambda: 0.8,
            temperature: 1.0,
            lr: 3e-3,
            batch_size: 16,
            epochs: 3,
            num_meta_sets: 4,
            expert_epochs: 1,
            local_edges: 3,
            grad_clip: 5.0,
            shards: 1,
            threads: 1,
            pooling: true,
            kernels: KernelBackend::Auto,
            seed: 0,
        }
    }
}

impl WscclConfig {
    /// Tiny configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            encoder: EncoderConfig::tiny(),
            epochs: 1,
            num_meta_sets: 2,
            expert_epochs: 1,
            batch_size: 8,
            ..Default::default()
        }
    }
}
