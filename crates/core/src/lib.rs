//! WSCCL — Weakly-Supervised Contrastive Curriculum Learning for temporal
//! path representations (Yang et al., ICDE 2022).
//!
//! The crate implements the paper's full pipeline:
//!
//! * [`encoder`] — the temporal path encoder (§IV): spatial feature
//!   embeddings (Eq. 3–4), road-topology node2vec embeddings (Eq. 5–6),
//!   temporal-graph node2vec embeddings (Eq. 2), an LSTM over per-edge
//!   spatio-temporal inputs (Eq. 7), and mean aggregation into a TPR (Eq. 8).
//! * [`sampler`] — weak-label-aware positive/negative minibatch construction
//!   (§V-A, Fig. 5).
//! * [`loss`] — the global WSC loss (Eq. 10) and local WSC loss (Eq. 11),
//!   combined with the balance factor λ (Eq. 12).
//! * [`wsc`] — the WSC base model: encoder + losses + Adam training loop.
//! * [`curriculum`] — curriculum sample evaluation (meta-sets by path length,
//!   expert models, similarity-sum difficulty scores, Eq. 13) and curriculum
//!   sample selection (M easy-to-hard stages plus a final full-data stage,
//!   §VI-C), yielding the advanced WSCCL model.
//! * [`represent`] — the [`represent::PathRepresenter`] trait every method in
//!   the evaluation (WSCCL and all baselines) implements, so downstream tasks
//!   are method-agnostic.
//! * [`continual`] — incremental re-training under day-over-day traffic
//!   drift: weak-label replay, curriculum restarts, and checkpointable
//!   episode state (the train-while-serve production loop).

pub mod config;
pub mod continual;
pub mod curriculum;
pub mod encoder;
pub mod loss;
pub mod persist;
pub mod represent;
pub mod sampler;
pub mod wsc;

pub use config::WscclConfig;
pub use continual::{
    label_margin, ContinualConfig, ContinualState, ContinualTrainer, DayReport, ReplaySample,
};
pub use curriculum::train_wsccl;
pub use encoder::{EncoderConfig, FrozenEncoder, TemporalPathEncoder};
pub use represent::PathRepresenter;
pub use wsc::{TrainedRepresenter, WscModel};
