//! Property-based tests for the WSCCL core: batch construction, loss
//! computability, and curriculum invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsccl_core::curriculum::{curriculum_stages, meta_sets};
use wsccl_core::sampler::{build_batch, sample_time_with_label};
use wsccl_datagen::{CityDataset, DatasetConfig};
use wsccl_roadnet::CityProfile;
use wsccl_traffic::{PopLabeler, WeakLabel, WeakLabeler};

fn pool() -> Vec<wsccl_datagen::TemporalPathSample> {
    CityDataset::generate(&DatasetConfig::tiny(CityProfile::Aalborg, 4)).unlabeled
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batches always label items consistently with the labeler and contain
    /// at least one anchor–positive pair.
    #[test]
    fn batches_are_well_formed(seed in 0u64..500, size in 8usize..32) {
        let pool = pool();
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = build_batch(&mut rng, &pool, &PopLabeler, size);
        prop_assert!(!batch.is_empty());
        for item in &batch {
            prop_assert_eq!(item.label, PopLabeler.label(item.departure));
            prop_assert!(!item.path.is_empty());
        }
        let has_positive_pair = batch.iter().enumerate().any(|(i, a)| {
            batch.iter().enumerate().any(|(j, b)| i != j && a.is_positive_for(b))
        });
        prop_assert!(has_positive_pair);
    }

    /// Label-conditioned time sampling always returns the requested label.
    #[test]
    fn time_sampling_honors_label(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for target in [WeakLabel::MorningPeak, WeakLabel::AfternoonPeak, WeakLabel::OffPeak] {
            if let Some(t) = sample_time_with_label(&mut rng, &PopLabeler, target, 500) {
                prop_assert_eq!(PopLabeler.label(t), target);
            }
        }
    }

    /// Meta-sets partition the data into non-overlapping, length-sorted sets.
    #[test]
    fn meta_sets_partition(n in 1usize..8) {
        let data = pool();
        prop_assume!(n <= data.len());
        let sets = meta_sets(&data, n);
        prop_assert_eq!(sets.len(), n);
        let mut all: Vec<usize> = sets.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..data.len()).collect::<Vec<_>>());
        for w in sets.windows(2) {
            let max_prev = w[0].iter().map(|&i| data[i].path.len()).max().unwrap();
            let min_next = w[1].iter().map(|&i| data[i].path.len()).min().unwrap();
            prop_assert!(max_prev <= min_next);
        }
    }

    /// Curriculum stages partition samples and order easiest-first.
    #[test]
    fn stages_partition_and_order(
        scores in proptest::collection::vec(-5.0f64..5.0, 6..40),
        m in 1usize..6,
        seed in 0u64..100,
    ) {
        prop_assume!(m <= scores.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let stages = curriculum_stages(&scores, m, &mut rng);
        let mut all: Vec<usize> = stages.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..scores.len()).collect::<Vec<_>>());
        // Min score of a stage ≥ max score of the next stage (easy → hard).
        for w in stages.windows(2) {
            let min_prev =
                w[0].iter().map(|&i| scores[i]).fold(f64::INFINITY, f64::min);
            let max_next =
                w[1].iter().map(|&i| scores[i]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(min_prev >= max_next - 1e-12);
        }
    }
}
