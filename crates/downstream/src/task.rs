//! The downstream task framework (§VII-A.2/4).
//!
//! Every evaluation in the paper follows the same frozen-representation
//! protocol: embed paths with the (frozen) representation model, fit a small
//! head on the training rows, predict on held-out rows, and score with the
//! task's metrics. This module is the single owner of that fit → predict →
//! score shape; no other crate may run a private head-fitting loop.
//!
//! A [`Task`] bundles the head family, the label type, and the scoring rule:
//!
//! * [`EtaRegression`] — travel-time estimation: GBR head, Eq. 14 metrics
//!   ([`TteScores`]).
//! * [`PathRanking`] — candidate-route ranking: GBR head on ranking scores,
//!   Eq. 15 metrics averaged per candidate group ([`RankScores`]).
//! * [`PathClassification`] — path recommendation: GBC head on used/unused
//!   labels, per-group argmax recommendation, Eq. 16 metrics ([`RecScores`]).
//!
//! Fitted heads are plain serde-serializable values ([`Task::Head`]), so a
//! head fit offline can be shipped to the serving layer (the `wsccl-serve`
//! ETA head is exactly an [`EtaRegression`] head) or persisted next to a
//! checkpoint.

use serde::{Deserialize, Serialize};

use crate::gbdt::{GbClassifier, GbConfig, GbRegressor};
use crate::metrics;

/// Row grouping for listwise tasks: consecutive group sizes partitioning the
/// rows (e.g. `[4, 4, 6]` for three candidate groups). An empty slice means
/// one flat group spanning every row.
pub type GroupSizes = [usize];

/// A downstream task over frozen embeddings: fit a head on training rows,
/// predict a scalar per row, score predictions against ground truth.
pub trait Task {
    /// Per-row supervision target.
    type Label: Clone;
    /// Fitted head state — serializable, so heads travel to the serving
    /// layer or to disk unchanged.
    type Head: Clone + Serialize + Deserialize;
    /// Task-specific score bundle.
    type Score: Clone + std::fmt::Debug;

    fn name(&self) -> &'static str;

    /// Fit the head on frozen-embedding rows `x` with targets `y`.
    ///
    /// # Panics
    /// Panics on empty or length-mismatched inputs (no task is defined on
    /// no data).
    fn fit(&self, x: &[Vec<f64>], y: &[Self::Label]) -> Self::Head;

    /// Raw per-row prediction: the regression value for regression heads,
    /// the positive-class probability for classification heads.
    fn predict(&self, head: &Self::Head, row: &[f64]) -> f64;

    /// Score raw predictions against ground truth. `groups` partitions the
    /// rows into consecutive candidate groups for listwise tasks; pointwise
    /// tasks ignore it.
    fn score(&self, truth: &[Self::Label], pred: &[f64], groups: &GroupSizes) -> Self::Score;

    /// Fit on the `train` rows, predict every `test` row. The common middle
    /// of every evaluation protocol, provided once here.
    fn fit_predict(
        &self,
        train_x: &[Vec<f64>],
        train_y: &[Self::Label],
        test_x: &[Vec<f64>],
    ) -> (Self::Head, Vec<f64>) {
        let head = self.fit(train_x, train_y);
        let pred = test_x.iter().map(|row| self.predict(&head, row)).collect();
        (head, pred)
    }

    /// Full protocol: fit on the train split, score predictions on the test
    /// split.
    fn evaluate(
        &self,
        train_x: &[Vec<f64>],
        train_y: &[Self::Label],
        test_x: &[Vec<f64>],
        test_y: &[Self::Label],
        groups: &GroupSizes,
    ) -> Self::Score {
        let (_, pred) = self.fit_predict(train_x, train_y, test_x);
        self.score(test_y, &pred, groups)
    }
}

/// Travel-time estimation metrics (Eq. 14).
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct TteScores {
    pub mae: f64,
    pub mare: f64,
    pub mape: f64,
}

/// Path-ranking metrics (Eq. 15): MAE over all candidates, τ and ρ averaged
/// per candidate group.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct RankScores {
    pub mae: f64,
    pub tau: f64,
    pub rho: f64,
}

/// Path-recommendation metrics (Eq. 16).
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct RecScores {
    pub acc: f64,
    pub hr: f64,
}

/// Travel-time estimation: GBR on (embedding → seconds), Eq. 14 scores.
#[derive(Clone, Copy, Debug, Default)]
pub struct EtaRegression {
    pub gb: GbConfig,
}

impl Task for EtaRegression {
    type Label = f64;
    type Head = GbRegressor;
    type Score = TteScores;

    fn name(&self) -> &'static str {
        "eta-regression"
    }

    fn fit(&self, x: &[Vec<f64>], y: &[f64]) -> GbRegressor {
        GbRegressor::fit(x, y, &self.gb)
    }

    fn predict(&self, head: &GbRegressor, row: &[f64]) -> f64 {
        head.predict(row)
    }

    fn score(&self, truth: &[f64], pred: &[f64], _groups: &GroupSizes) -> TteScores {
        TteScores {
            mae: metrics::mae(truth, pred),
            mare: metrics::mare(truth, pred),
            mape: metrics::mape(truth, pred),
        }
    }
}

/// Path ranking: GBR on (embedding → ranking score); MAE over all test
/// candidates, τ and ρ averaged over groups with at least two candidates
/// (§VII-A.2b).
#[derive(Clone, Copy, Debug, Default)]
pub struct PathRanking {
    pub gb: GbConfig,
}

impl Task for PathRanking {
    type Label = f64;
    type Head = GbRegressor;
    type Score = RankScores;

    fn name(&self) -> &'static str {
        "path-ranking"
    }

    fn fit(&self, x: &[Vec<f64>], y: &[f64]) -> GbRegressor {
        GbRegressor::fit(x, y, &self.gb)
    }

    fn predict(&self, head: &GbRegressor, row: &[f64]) -> f64 {
        head.predict(row)
    }

    fn score(&self, truth: &[f64], pred: &[f64], groups: &GroupSizes) -> RankScores {
        let mut tau_sum = 0.0;
        let mut rho_sum = 0.0;
        let mut n_groups = 0usize;
        for (t, p) in group_slices(truth, pred, groups) {
            if t.len() >= 2 {
                tau_sum += metrics::kendall_tau(t, p);
                rho_sum += metrics::spearman_rho(t, p);
                n_groups += 1;
            }
        }
        RankScores {
            mae: metrics::mae(truth, pred),
            tau: tau_sum / n_groups.max(1) as f64,
            rho: rho_sum / n_groups.max(1) as f64,
        }
    }
}

/// Path recommendation: GBC on (embedding → used/unused); scoring recommends
/// the highest-probability candidate of each group (exactly one positive per
/// group in the paper's protocol) and reports accuracy + hit rate over the
/// per-candidate labels (§VII-A.2c). Ties in the argmax go to the last
/// maximal candidate (`Iterator::max_by` semantics, kept for bit-identity
/// with the historical evaluation code).
#[derive(Clone, Copy, Debug, Default)]
pub struct PathClassification {
    pub gb: GbConfig,
}

impl Task for PathClassification {
    type Label = bool;
    type Head = GbClassifier;
    type Score = RecScores;

    fn name(&self) -> &'static str {
        "path-classification"
    }

    fn fit(&self, x: &[Vec<f64>], y: &[bool]) -> GbClassifier {
        GbClassifier::fit(x, y, &self.gb)
    }

    fn predict(&self, head: &GbClassifier, row: &[f64]) -> f64 {
        head.predict_proba(row)
    }

    fn score(&self, truth: &[bool], pred: &[f64], groups: &GroupSizes) -> RecScores {
        let mut t_all = Vec::with_capacity(truth.len());
        let mut p_all = Vec::with_capacity(truth.len());
        for (t, p) in group_slices(truth, pred, groups) {
            let best = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probability"))
                .map(|(i, _)| i)
                .expect("non-empty group");
            for (i, &label) in t.iter().enumerate() {
                t_all.push(label);
                p_all.push(i == best);
            }
        }
        RecScores { acc: metrics::accuracy(&t_all, &p_all), hr: metrics::hit_rate(&t_all, &p_all) }
    }
}

/// Iterate `(truth, pred)` slices per group. An empty `groups` yields the
/// whole row range as one group.
fn group_slices<'a, L>(
    truth: &'a [L],
    pred: &'a [f64],
    groups: &'a GroupSizes,
) -> impl Iterator<Item = (&'a [L], &'a [f64])> {
    assert_eq!(truth.len(), pred.len());
    let sizes: Vec<usize> = if groups.is_empty() {
        if truth.is_empty() {
            Vec::new()
        } else {
            vec![truth.len()]
        }
    } else {
        assert_eq!(
            groups.iter().sum::<usize>(),
            truth.len(),
            "group sizes must partition the rows"
        );
        groups.to_vec()
    };
    sizes.into_iter().scan(0usize, move |at, n| {
        let s = (&truth[*at..*at + n], &pred[*at..*at + n]);
        *at += n;
        Some(s)
    })
}

/// K-fold cross-validated MAE with modulo fold assignment (row `i` is test
/// in fold `i % k`): every row is scored exactly once, which keeps the
/// probe's variance well below the effects it measures. This is the
/// embedding-quality probe shape of the drift benchmarks.
pub fn kfold_modulo_mae(task: &EtaRegression, x: &[Vec<f64>], y: &[f64], k: usize) -> f64 {
    assert!(k >= 2, "need at least two folds");
    assert_eq!(x.len(), y.len());
    let mut maes = Vec::with_capacity(k);
    for fold in 0..k {
        let (mut xt, mut yt, mut truth, mut test_x) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for i in 0..x.len() {
            if i % k == fold {
                truth.push(y[i]);
                test_x.push(x[i].clone());
            } else {
                xt.push(x[i].clone());
                yt.push(y[i]);
            }
        }
        let (_, pred) = task.fit_predict(&xt, &yt, &test_x);
        maes.push(metrics::mae(&truth, &pred));
    }
    maes.iter().sum::<f64>() / k as f64
}

/// K-fold cross-validated MAE over caller-supplied test folds (each fold is
/// a list of row indices; the complement trains). Used by the shuffled-fold
/// stability analysis in the bench harness.
pub fn kfold_indexed_mae(
    task: &EtaRegression,
    x: &[Vec<f64>],
    y: &[f64],
    folds: &[Vec<usize>],
) -> Vec<f64> {
    assert_eq!(x.len(), y.len());
    let mut maes = Vec::with_capacity(folds.len());
    for test in folds {
        let test_set: std::collections::HashSet<usize> = test.iter().copied().collect();
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for i in 0..x.len() {
            if !test_set.contains(&i) {
                xt.push(x[i].clone());
                yt.push(y[i]);
            }
        }
        let head = task.fit(&xt, &yt);
        let truth: Vec<f64> = test.iter().map(|&i| y[i]).collect();
        let pred: Vec<f64> = test.iter().map(|&i| task.predict(&head, &x[i])).collect();
        maes.push(metrics::mae(&truth, &pred));
    }
    maes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
        (x, y)
    }

    #[test]
    fn eta_regression_matches_direct_gbr_bitwise() {
        let (x, y) = rows(60);
        let task = EtaRegression::default();
        let head = task.fit(&x, &y);
        let direct = GbRegressor::fit(&x, &y, &GbConfig::default());
        for row in &x {
            assert_eq!(task.predict(&head, row).to_bits(), direct.predict(row).to_bits());
        }
    }

    #[test]
    fn eta_scores_match_metric_functions() {
        let truth = [100.0, 200.0, 300.0];
        let pred = [110.0, 180.0, 300.0];
        let s = EtaRegression::default().score(&truth, &pred, &[]);
        assert_eq!(s.mae.to_bits(), metrics::mae(&truth, &pred).to_bits());
        assert_eq!(s.mare.to_bits(), metrics::mare(&truth, &pred).to_bits());
        assert_eq!(s.mape.to_bits(), metrics::mape(&truth, &pred).to_bits());
    }

    #[test]
    fn ranking_scores_average_per_group_and_skip_singletons() {
        // Group 1: perfectly concordant; group 2: perfectly discordant;
        // group 3: a singleton that must not count toward τ/ρ.
        let truth = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 9.0];
        let pred = [10.0, 20.0, 30.0, 30.0, 20.0, 10.0, 5.0];
        let s = PathRanking::default().score(&truth, &pred, &[3, 3, 1]);
        assert!((s.tau - 0.0).abs() < 1e-12, "(+1 - 1) / 2 groups = 0, got {}", s.tau);
        assert!((s.rho - 0.0).abs() < 1e-12);
        assert_eq!(s.mae.to_bits(), metrics::mae(&truth, &pred).to_bits());
    }

    #[test]
    fn classification_score_recommends_argmax_per_group() {
        // Two groups of 3, one positive each; the head ranks the positive
        // first in group 1 and last in group 2.
        let truth = [true, false, false, true, false, false];
        let pred = [0.9, 0.2, 0.1, 0.1, 0.2, 0.9];
        let s = PathClassification::default().score(&truth, &pred, &[3, 3]);
        // Predicted positives: index 0 (correct) and index 5 (wrong):
        // acc = 4/6, hit rate = TP/(TP+FN) = 1/2.
        assert!((s.acc - 4.0 / 6.0).abs() < 1e-12);
        assert!((s.hr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn argmax_ties_go_to_the_last_maximal_candidate() {
        // `max_by` keeps the later of two equal maxima — pinned here because
        // the historical eval code used the same iterator and scores must
        // stay bit-identical across the migration.
        let truth = [true, false];
        let pred = [0.5, 0.5];
        let s = PathClassification::default().score(&truth, &pred, &[2]);
        assert_eq!(s.acc, 0.0);
        assert_eq!(s.hr, 0.0);
    }

    #[test]
    fn fitted_heads_serialize_and_roundtrip_bitwise() {
        let (x, y) = rows(40);
        let task = EtaRegression::default();
        let head = task.fit(&x, &y);
        let json = serde_json::to_string(&head).expect("serialize head");
        let back: GbRegressor = serde_json::from_str(&json).expect("deserialize head");
        for row in &x {
            assert_eq!(task.predict(&head, row).to_bits(), task.predict(&back, row).to_bits());
        }
    }

    #[test]
    fn kfold_modulo_scores_every_row_once() {
        let (x, y) = rows(37);
        let m = kfold_modulo_mae(&EtaRegression::default(), &x, &y, 4);
        assert!(m.is_finite() && m >= 0.0);
    }

    #[test]
    #[should_panic(expected = "partition the rows")]
    fn mismatched_group_sizes_panic() {
        let _ = PathRanking::default().score(&[1.0, 2.0], &[1.0, 2.0], &[3]);
    }
}
