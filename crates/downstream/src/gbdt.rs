//! Gradient boosting over regression trees.
//!
//! [`GbRegressor`] boosts squared loss (residual fitting); [`GbClassifier`]
//! boosts binary logistic loss. These stand in for sklearn's
//! GradientBoostingRegressor / GradientBoostingClassifier used by the paper
//! for all downstream tasks (§VII-A.4).

use serde::{Deserialize, Serialize};

use crate::tree::{RegressionTree, TreeConfig};

/// Boosting hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GbConfig {
    pub n_trees: usize,
    pub learning_rate: f64,
    pub tree: TreeConfig,
}

impl Default for GbConfig {
    fn default() -> Self {
        Self { n_trees: 80, learning_rate: 0.1, tree: TreeConfig::default() }
    }
}

/// Gradient-boosted regressor (squared loss).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GbRegressor {
    base: f64,
    trees: Vec<RegressionTree>,
    lr: f64,
}

impl GbRegressor {
    /// Fit on rows `x` and targets `y`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &GbConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit on no data");
        assert_eq!(x.len(), y.len());
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            let residuals: Vec<f64> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let tree = RegressionTree::fit(x, &residuals, &cfg.tree);
            for (p, row) in pred.iter_mut().zip(x) {
                *p += cfg.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Self { base, trees, lr: cfg.learning_rate }
    }

    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base + self.lr * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    pub fn predict_batch(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|row| self.predict(row)).collect()
    }
}

/// Gradient-boosted binary classifier (logistic loss).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GbClassifier {
    base: f64,
    trees: Vec<RegressionTree>,
    lr: f64,
}

impl GbClassifier {
    /// Fit on rows `x` and binary labels `y ∈ {0, 1}`.
    pub fn fit(x: &[Vec<f64>], y: &[bool], cfg: &GbConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit on no data");
        assert_eq!(x.len(), y.len());
        let pos = y.iter().filter(|&&b| b).count() as f64 / y.len() as f64;
        // Initial log-odds, clamped away from degenerate all-one-class data.
        let p0 = pos.clamp(1e-3, 1.0 - 1e-3);
        let base = (p0 / (1.0 - p0)).ln();
        let mut score = vec![base; y.len()];
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            // Negative gradient of logistic loss: y - σ(score).
            let grad: Vec<f64> = y
                .iter()
                .zip(&score)
                .map(|(&t, &s)| (t as u8 as f64) - 1.0 / (1.0 + (-s).exp()))
                .collect();
            let tree = RegressionTree::fit(x, &grad, &cfg.tree);
            for (s, row) in score.iter_mut().zip(x) {
                *s += cfg.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Self { base, trees, lr: cfg.learning_rate }
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let s = self.base + self.lr * self.trees.iter().map(|t| t.predict(row)).sum::<f64>();
        1.0 / (1.0 + (-s).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn regressor_beats_the_mean_baseline() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 0.5 * r[0] * r[1]).collect();
        let model = GbRegressor::fit(&x, &y, &GbConfig::default());
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let mse_model: f64 =
            x.iter().zip(&y).map(|(r, t)| (model.predict(r) - t).powi(2)).sum::<f64>()
                / y.len() as f64;
        let mse_mean: f64 = y.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / y.len() as f64;
        assert!(mse_model < 0.15 * mse_mean, "model {mse_model:.4} vs mean {mse_mean:.4}");
    }

    #[test]
    fn regressor_is_near_exact_on_training_step_function() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
        let model = GbRegressor::fit(&x, &y, &GbConfig::default());
        assert!((model.predict(&[10.0]) - 0.0).abs() < 0.5);
        assert!((model.predict(&[90.0]) - 10.0).abs() < 0.5);
    }

    #[test]
    fn classifier_learns_a_nonlinear_boundary() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)])
            .collect();
        // XOR-ish quadrant labels — linearly inseparable.
        let y: Vec<bool> = x.iter().map(|r| (r[0] > 0.0) ^ (r[1] > 0.0)).collect();
        let model = GbClassifier::fit(&x, &y, &GbConfig::default());
        let correct = x.iter().zip(&y).filter(|(r, &t)| model.predict(r) == t).count();
        let acc = correct as f64 / y.len() as f64;
        assert!(acc > 0.9, "accuracy {acc:.3}");
    }

    #[test]
    fn classifier_probabilities_are_calibrated_in_direction() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let y: Vec<bool> = (0..200).map(|i| i >= 100).collect();
        let model = GbClassifier::fit(&x, &y, &GbConfig::default());
        assert!(model.predict_proba(&[0.05]) < 0.2);
        assert!(model.predict_proba(&[0.95]) > 0.8);
    }

    #[test]
    fn single_class_data_degrades_gracefully() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y = vec![true; 30];
        let model = GbClassifier::fit(&x, &y, &GbConfig::default());
        assert!(model.predict(&[15.0]));
        assert!(model.predict_proba(&[15.0]) > 0.9);
    }
}

impl GbRegressor {
    /// Split-count feature importance: how many internal splits across the
    /// ensemble test each feature, normalized to sum to 1. Zero-length when
    /// the ensemble consists solely of leaves (constant target).
    pub fn feature_importance(&self, num_features: usize) -> Vec<f64> {
        let mut counts = vec![0.0f64; num_features];
        for tree in &self.trees {
            tree.accumulate_split_counts(&mut counts);
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            counts.iter_mut().for_each(|c| *c /= total);
        }
        counts
    }
}

#[cfg(test)]
mod importance_tests {
    use super::*;

    #[test]
    fn importance_concentrates_on_the_informative_feature() {
        // y depends only on feature 1; feature 0 is noise-free constant-ish.
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 7) as f64, i as f64]).collect();
        let y: Vec<f64> = (0..200).map(|i| if i < 100 { 0.0 } else { 5.0 }).collect();
        let model = GbRegressor::fit(&x, &y, &GbConfig::default());
        let imp = model.feature_importance(2);
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.8, "importance should concentrate on feature 1: {imp:?}");
    }

    #[test]
    fn constant_target_has_zero_importance() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 30];
        let model = GbRegressor::fit(&x, &y, &GbConfig::default());
        let imp = model.feature_importance(1);
        assert_eq!(imp, vec![0.0]);
    }
}
