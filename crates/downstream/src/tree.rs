//! CART regression trees with variance-reduction splits.

use serde::{Deserialize, Serialize};

/// Tree growth limits.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Candidate thresholds per feature (quantile grid); keeps fitting
    /// O(features × candidates × samples) instead of sorting per node.
    pub candidates_per_feature: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 3, min_samples_leaf: 5, candidates_per_feature: 16 }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted regression tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Fit a tree to rows `x` (all the same width) and targets `y`.
    ///
    /// # Panics
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &TreeConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on no data");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let num_features = x[0].len();
        let mut tree = Self { nodes: Vec::new(), num_features };
        let indices: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, &indices, 0, cfg);
        tree
    }

    fn mean(y: &[f64], idx: &[usize]) -> f64 {
        idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
    }

    fn sse(y: &[f64], idx: &[usize]) -> f64 {
        let m = Self::mean(y, idx);
        idx.iter().map(|&i| (y[i] - m).powi(2)).sum()
    }

    /// Grow a subtree over `idx`; returns the new node's index.
    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        depth: usize,
        cfg: &TreeConfig,
    ) -> usize {
        let leaf = |tree: &mut Self| {
            tree.nodes.push(Node::Leaf { value: Self::mean(y, idx) });
            tree.nodes.len() - 1
        };
        if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_samples_leaf {
            return leaf(self);
        }
        let parent_sse = Self::sse(y, idx);
        if parent_sse < 1e-12 {
            return leaf(self);
        }

        // Best split over a quantile grid of thresholds per feature.
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for f in 0..self.num_features {
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() as f64 / (cfg.candidates_per_feature + 1) as f64).max(1.0);
            let mut k = step;
            while (k as usize) < vals.len() {
                let threshold = (vals[k as usize - 1] + vals[k as usize]) / 2.0;
                // Partition statistics in one pass.
                let (mut ls, mut lc, mut lsum) = (0.0, 0usize, 0.0);
                let (mut rs, mut rc, mut rsum) = (0.0, 0usize, 0.0);
                for &i in idx {
                    if x[i][f] <= threshold {
                        lc += 1;
                        lsum += y[i];
                        ls += y[i] * y[i];
                    } else {
                        rc += 1;
                        rsum += y[i];
                        rs += y[i] * y[i];
                    }
                }
                if lc >= cfg.min_samples_leaf && rc >= cfg.min_samples_leaf {
                    let child_sse = (ls - lsum * lsum / lc as f64) + (rs - rsum * rsum / rc as f64);
                    let gain = parent_sse - child_sse;
                    if best.map_or(true, |(g, _, _)| gain > g) {
                        best = Some((gain, f, threshold));
                    }
                }
                k += step;
            }
        }

        let Some((gain, feature, threshold)) = best else { return leaf(self) };
        if gain <= 1e-12 {
            return leaf(self);
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);

        // Reserve this node's slot, then grow children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 });
        let left = self.grow(x, y, &left_idx, depth + 1, cfg);
        let right = self.grow(x, y, &right_idx, depth + 1, cfg);
        self.nodes[me] = Node::Split { feature, threshold, left, right };
        me
    }

    /// Predict one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.num_features);
        // The root is the first node pushed by the outermost grow() call —
        // but grow() pushes children after reserving the parent slot only for
        // splits; for a pure leaf the root is node 0. Either way index 0 is
        // the root.
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    cur = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default());
        assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[33.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![2.5; 20];
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(tree.num_nodes(), 1);
        assert!((tree.predict(&[7.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let cfg = TreeConfig { min_samples_leaf: 4, max_depth: 5, ..Default::default() };
        let tree = RegressionTree::fit(&x, &y, &cfg);
        // With 8 samples and min leaf 4, at most one split is possible.
        assert!(tree.num_nodes() <= 3);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 10 if x0 > 0.5 and x1 > 0.5 else 0; depth-2 tree can capture it.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (i as f64 / 10.0, j as f64 / 10.0);
                x.push(vec![a, b]);
                y.push(if a > 0.5 && b > 0.5 { 10.0 } else { 0.0 });
            }
        }
        let cfg = TreeConfig { max_depth: 2, min_samples_leaf: 2, candidates_per_feature: 20 };
        let tree = RegressionTree::fit(&x, &y, &cfg);
        assert!(tree.predict(&[0.9, 0.9]) > 8.0);
        assert!(tree.predict(&[0.1, 0.9]) < 2.0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        RegressionTree::fit(&[], &[], &TreeConfig::default());
    }
}

impl RegressionTree {
    /// Add one count per internal split testing each feature.
    pub fn accumulate_split_counts(&self, counts: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature] += 1.0;
            }
        }
    }
}
