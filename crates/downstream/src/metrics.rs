//! Evaluation metrics: Eq. 14 (MAE / MARE / MAPE), Eq. 15 (Kendall τ,
//! Spearman ρ), and Eq. 16 (accuracy, hit rate).

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty(), "mae of nothing");
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Mean absolute relative error: Σ|t−p| / Σ|t|.
pub fn mare(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let denom: f64 = truth.iter().map(|t| t.abs()).sum();
    assert!(denom > 0.0, "mare undefined for all-zero truth");
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / denom
}

/// Mean absolute percentage error (in %, matching the paper's tables).
/// Zero-truth entries are skipped.
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() > 1e-9 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    assert!(n > 0, "mape undefined: all truths are zero");
    100.0 * sum / n as f64
}

/// Kendall rank correlation coefficient τ (Eq. 15), with the τ-a convention:
/// ties count as neither concordant nor discordant, and the denominator is
/// the total pair count n(n−1)/2 regardless of ties. Under heavy ties τ-a is
/// bounded away from ±1; use [`kendall_tau_b`] when a tie-corrected
/// coefficient is needed.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    let (con, dis, _, _, pairs) = kendall_pair_counts(a, b);
    (con - dis) as f64 / pairs as f64
}

/// Kendall τ-b: tie-corrected Kendall coefficient,
/// `(C − D) / sqrt((n0 − n1)(n0 − n2))` where `n0` is the total pair count
/// and `n1`/`n2` count pairs tied in `a`/`b` respectively. Reaches ±1 on
/// perfectly concordant/discordant data even under ties. Defined as 0 when
/// either input is constant (no order information).
pub fn kendall_tau_b(a: &[f64], b: &[f64]) -> f64 {
    let (con, dis, ties_a, ties_b, pairs) = kendall_pair_counts(a, b);
    let da = (pairs - ties_a) as f64;
    let db = (pairs - ties_b) as f64;
    if da <= 0.0 || db <= 0.0 {
        return 0.0; // a constant ranking carries no order information
    }
    (con - dis) as f64 / (da * db).sqrt()
}

/// Shared pair scan for the Kendall coefficients: returns
/// `(concordant, discordant, ties_in_a, ties_in_b, total_pairs)`. A pair
/// tied in both sequences counts toward both tie tallies and toward neither
/// C nor D.
fn kendall_pair_counts(a: &[f64], b: &[f64]) -> (i64, i64, i64, i64, i64) {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n >= 2, "kendall tau needs at least two items");
    let (mut con, mut dis, mut ties_a, mut ties_b) = (0i64, 0i64, 0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 {
                ties_a += 1;
            }
            if db == 0.0 {
                ties_b += 1;
            }
            let s = da * db;
            if s > 0.0 {
                con += 1;
            } else if s < 0.0 {
                dis += 1;
            }
        }
    }
    (con, dis, ties_a, ties_b, (n * (n - 1) / 2) as i64)
}

/// Average ranks (1-based), ties receive their mean rank.
fn average_ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[order[j + 1]] == x[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation ρ computed as Pearson correlation of average
/// ranks (exact under ties, and equal to Eq. 15 without ties).
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2, "spearman needs at least two items");
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let n = ra.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va < 1e-12 || vb < 1e-12 {
        return 0.0; // constant ranking carries no order information
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Classification accuracy (Eq. 16).
pub fn accuracy(truth: &[bool], pred: &[bool]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    truth.iter().zip(pred).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64
}

/// Hit rate = TP / (TP + FN) (Eq. 16), i.e. recall on the positive class.
pub fn hit_rate(truth: &[bool], pred: &[bool]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let tp = truth.iter().zip(pred).filter(|(&t, &p)| t && p).count() as f64;
    let fnn = truth.iter().zip(pred).filter(|(&t, &p)| t && !p).count() as f64;
    if tp + fnn == 0.0 {
        0.0
    } else {
        tp / (tp + fnn)
    }
}

/// Cosine similarity, defined as 0 when either vector is all-zero.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Embedding-quality margin: mean same-label cosine similarity minus mean
/// cross-label cosine similarity over all embedding pairs. Positive = the
/// embedding space separates the label classes. Returns 0 when there are
/// fewer than two embeddings, or no same-label or no cross-label pair.
pub fn label_margin(embs: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(embs.len(), labels.len());
    if embs.len() < 2 {
        return 0.0;
    }
    let (mut same, mut diff) = ((0.0, 0u64), (0.0, 0u64));
    for i in 0..embs.len() {
        for j in i + 1..embs.len() {
            let c = cosine(&embs[i], &embs[j]);
            if labels[i] == labels[j] {
                same = (same.0 + c, same.1 + 1);
            } else {
                diff = (diff.0 + c, diff.1 + 1);
            }
        }
    }
    if same.1 == 0 || diff.1 == 0 {
        return 0.0;
    }
    same.0 / same.1 as f64 - diff.0 / diff.1 as f64
}

/// Top-k hit rate for one candidate group: 1.0 if any positively-labelled
/// candidate appears among the k highest-scored candidates, else 0.0. Ties
/// in `scores` are broken by candidate index (earlier wins), matching a
/// stable descending sort, so the result is deterministic.
///
/// Returns 0.0 when the group has no positive candidate (nothing to hit).
pub fn hit_rate_at_k(labels: &[bool], scores: &[f64], k: usize) -> f64 {
    assert_eq!(labels.len(), scores.len());
    assert!(k >= 1, "hit_rate_at_k needs k >= 1");
    if !labels.iter().any(|&l| l) {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // Stable sort by descending score: equal scores keep index order.
    order.sort_by(|&i, &j| scores[j].partial_cmp(&scores[i]).expect("finite scores"));
    if order.iter().take(k).any(|&i| labels[i]) {
        1.0
    } else {
        0.0
    }
}

/// Mean top-k hit rate over consecutive candidate groups (`groups` holds the
/// group sizes, partitioning the rows). Groups without a positive candidate
/// contribute 0. Returns 0.0 when there are no groups.
pub fn mean_hit_rate_at_k(labels: &[bool], scores: &[f64], groups: &[usize], k: usize) -> f64 {
    assert_eq!(labels.len(), scores.len());
    assert_eq!(groups.iter().sum::<usize>(), labels.len(), "group sizes must partition the rows");
    if groups.is_empty() {
        return 0.0;
    }
    let mut at = 0usize;
    let mut sum = 0.0;
    for &n in groups {
        sum += hit_rate_at_k(&labels[at..at + n], &scores[at..at + n], k);
        at += n;
    }
    sum / groups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_metrics_on_known_values() {
        let t = [100.0, 200.0, 300.0];
        let p = [110.0, 180.0, 300.0];
        assert!((mae(&t, &p) - 10.0).abs() < 1e-12);
        assert!((mare(&t, &p) - 30.0 / 600.0).abs() < 1e-12);
        let expect_mape = 100.0 * (0.1 + 0.1 + 0.0) / 3.0;
        assert!((mape(&t, &p) - expect_mape).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_zeroes_errors() {
        let t = [5.0, 7.0, 9.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(mare(&t, &t), 0.0);
        assert_eq!(mape(&t, &t), 0.0);
    }

    #[test]
    fn kendall_on_known_orderings() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b_same = [10.0, 20.0, 30.0, 40.0];
        let b_rev = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&a, &b_same) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &b_rev) + 1.0).abs() < 1e-12);
        // One swap out of 6 pairs: τ = (5 - 1) / 6.
        let b_swap = [20.0, 10.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b_swap) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_on_known_orderings() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        assert!((spearman_rho(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_constants() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-9);
        let c = [2.0, 2.0, 2.0, 2.0];
        assert_eq!(spearman_rho(&a, &c), 0.0);
    }

    #[test]
    fn classification_metrics() {
        let t = [true, true, false, false, true];
        let p = [true, false, false, true, true];
        assert!((accuracy(&t, &p) - 0.6).abs() < 1e-12);
        // TP = 2, FN = 1 → HR = 2/3.
        assert!((hit_rate(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        // No positives → hit rate defined as 0.
        assert_eq!(hit_rate(&[false, false], &[false, true]), 0.0);
    }

    #[test]
    fn mape_skips_zero_truth_entries() {
        let t = [0.0, 100.0];
        let p = [5.0, 110.0];
        assert!((mape(&t, &p) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tau_a_and_tau_b_agree_without_ties() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [20.0, 10.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b) - kendall_tau_b(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn tau_b_tie_correction_on_hand_computed_example() {
        // a = [1,2,2,3], b = [1,2,3,4]: 6 pairs total.
        // Pair (a2,a3) is tied in a → n1 = 1, n2 = 0.
        // Concordant pairs: (1,2),(1,3),(1,4),(2,4),(3,4) = 5; discordant 0.
        // τ-a = 5/6; τ-b = 5 / sqrt(5 * 6).
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&a, &b) - 5.0 / 6.0).abs() < 1e-12);
        assert!((kendall_tau_b(&a, &b) - 5.0 / (5.0f64 * 6.0).sqrt()).abs() < 1e-12);
        // Under these ties, τ-b is the larger (tie-corrected) coefficient.
        assert!(kendall_tau_b(&a, &b) > kendall_tau(&a, &b));
    }

    #[test]
    fn tau_b_reaches_one_under_ties_and_zero_on_constants() {
        // Perfectly concordant despite a tie in both sequences at the same
        // pair: τ-b = C / sqrt(C · C) = 1.
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [10.0, 20.0, 20.0, 30.0];
        assert!((kendall_tau_b(&a, &b) - 1.0).abs() < 1e-12);
        // τ-a cannot reach 1 here: 5 concordant of 6 pairs.
        assert!((kendall_tau(&a, &b) - 5.0 / 6.0).abs() < 1e-12);
        // Constant input → no order information.
        let c = [7.0, 7.0, 7.0, 7.0];
        assert_eq!(kendall_tau_b(&a, &c), 0.0);
    }

    #[test]
    fn hit_rate_at_k_hand_computed() {
        let labels = [false, true, false, false];
        let scores = [0.9, 0.8, 0.7, 0.6];
        // Positive is ranked 2nd: misses k=1, hits k=2.
        assert_eq!(hit_rate_at_k(&labels, &scores, 1), 0.0);
        assert_eq!(hit_rate_at_k(&labels, &scores, 2), 1.0);
        // k beyond group size behaves like k = n.
        assert_eq!(hit_rate_at_k(&labels, &scores, 10), 1.0);
    }

    #[test]
    fn hit_rate_at_k_breaks_ties_by_index() {
        // All scores tied: the stable order is candidate index, so top-1 is
        // candidate 0 (negative) and top-2 reaches candidate 1 (positive).
        let labels = [false, true, false];
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(hit_rate_at_k(&labels, &scores, 1), 0.0);
        assert_eq!(hit_rate_at_k(&labels, &scores, 2), 1.0);
    }

    #[test]
    fn hit_rate_at_k_without_positives_is_zero() {
        assert_eq!(hit_rate_at_k(&[false, false], &[1.0, 2.0], 2), 0.0);
    }

    #[test]
    fn mean_hit_rate_at_k_over_groups() {
        // Group 1 (size 3): positive ranked 1st → hit@1.
        // Group 2 (size 3): positive ranked 3rd → miss@1, miss@2, hit@3.
        let labels = [true, false, false, false, false, true];
        let scores = [0.9, 0.5, 0.1, 0.9, 0.5, 0.1];
        assert!((mean_hit_rate_at_k(&labels, &scores, &[3, 3], 1) - 0.5).abs() < 1e-12);
        assert!((mean_hit_rate_at_k(&labels, &scores, &[3, 3], 2) - 0.5).abs() < 1e-12);
        assert!((mean_hit_rate_at_k(&labels, &scores, &[3, 3], 3) - 1.0).abs() < 1e-12);
    }
}
