//! Evaluation metrics: Eq. 14 (MAE / MARE / MAPE), Eq. 15 (Kendall τ,
//! Spearman ρ), and Eq. 16 (accuracy, hit rate).

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty(), "mae of nothing");
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Mean absolute relative error: Σ|t−p| / Σ|t|.
pub fn mare(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let denom: f64 = truth.iter().map(|t| t.abs()).sum();
    assert!(denom > 0.0, "mare undefined for all-zero truth");
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / denom
}

/// Mean absolute percentage error (in %, matching the paper's tables).
/// Zero-truth entries are skipped.
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() > 1e-9 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    assert!(n > 0, "mape undefined: all truths are zero");
    100.0 * sum / n as f64
}

/// Kendall rank correlation coefficient τ (Eq. 15), with the τ-a convention:
/// ties count as neither concordant nor discordant.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n >= 2, "kendall tau needs at least two items");
    let mut con = 0i64;
    let mut dis = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let s = (a[i] - a[j]) * (b[i] - b[j]);
            if s > 0.0 {
                con += 1;
            } else if s < 0.0 {
                dis += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (con - dis) as f64 / pairs
}

/// Average ranks (1-based), ties receive their mean rank.
fn average_ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[order[j + 1]] == x[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation ρ computed as Pearson correlation of average
/// ranks (exact under ties, and equal to Eq. 15 without ties).
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2, "spearman needs at least two items");
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let n = ra.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va < 1e-12 || vb < 1e-12 {
        return 0.0; // constant ranking carries no order information
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Classification accuracy (Eq. 16).
pub fn accuracy(truth: &[bool], pred: &[bool]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    truth.iter().zip(pred).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64
}

/// Hit rate = TP / (TP + FN) (Eq. 16), i.e. recall on the positive class.
pub fn hit_rate(truth: &[bool], pred: &[bool]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let tp = truth.iter().zip(pred).filter(|(&t, &p)| t && p).count() as f64;
    let fnn = truth.iter().zip(pred).filter(|(&t, &p)| t && !p).count() as f64;
    if tp + fnn == 0.0 {
        0.0
    } else {
        tp / (tp + fnn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_metrics_on_known_values() {
        let t = [100.0, 200.0, 300.0];
        let p = [110.0, 180.0, 300.0];
        assert!((mae(&t, &p) - 10.0).abs() < 1e-12);
        assert!((mare(&t, &p) - 30.0 / 600.0).abs() < 1e-12);
        let expect_mape = 100.0 * (0.1 + 0.1 + 0.0) / 3.0;
        assert!((mape(&t, &p) - expect_mape).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_zeroes_errors() {
        let t = [5.0, 7.0, 9.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(mare(&t, &t), 0.0);
        assert_eq!(mape(&t, &t), 0.0);
    }

    #[test]
    fn kendall_on_known_orderings() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b_same = [10.0, 20.0, 30.0, 40.0];
        let b_rev = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&a, &b_same) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &b_rev) + 1.0).abs() < 1e-12);
        // One swap out of 6 pairs: τ = (5 - 1) / 6.
        let b_swap = [20.0, 10.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b_swap) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_on_known_orderings() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        assert!((spearman_rho(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_constants() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-9);
        let c = [2.0, 2.0, 2.0, 2.0];
        assert_eq!(spearman_rho(&a, &c), 0.0);
    }

    #[test]
    fn classification_metrics() {
        let t = [true, true, false, false, true];
        let p = [true, false, false, true, true];
        assert!((accuracy(&t, &p) - 0.6).abs() < 1e-12);
        // TP = 2, FN = 1 → HR = 2/3.
        assert!((hit_rate(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        // No positives → hit rate defined as 0.
        assert_eq!(hit_rate(&[false, false], &[false, true]), 0.0);
    }

    #[test]
    fn mape_skips_zero_truth_entries() {
        let t = [0.0, 100.0];
        let p = [5.0, 110.0];
        assert!((mape(&t, &p) - 10.0).abs() < 1e-9);
    }
}
