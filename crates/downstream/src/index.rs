//! Trajectory-similarity search over frozen path embeddings (ROADMAP item 4,
//! after ST2Vec-style similarity retrieval).
//!
//! Two [`VectorIndex`] implementations over contiguous f32 embedding storage:
//!
//! * [`ExactIndex`] — brute-force top-k by Euclidean distance; the ground
//!   truth every approximate structure is measured against.
//! * [`AnnIndex`] — an IVF (inverted-file) index: a seeded k-means coarse
//!   quantizer partitions the vectors into lists, and a query scans only the
//!   `nprobe` lists whose centroids are nearest. Build and search are fully
//!   deterministic (serial Lloyd iterations from a seeded init), so
//!   recall@k against [`ExactIndex`] is a stable, testable number
//!   ([`recall_at_k`]).
//!
//! Both indexes break distance ties by ascending id, so results are unique
//! even with duplicate vectors. Vectors are stored row-major in one `Vec<f32>`
//! (the scan auto-vectorizes in release builds; this crate stays free of the
//! kernel backends by design).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One search result: the stored vector's id and its Euclidean distance to
/// the query.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Neighbor {
    pub id: u64,
    pub dist: f32,
}

/// A top-k similarity index over f32 embeddings.
pub trait VectorIndex: Send + Sync {
    /// The `k` nearest stored vectors to `query`, ascending by
    /// `(distance, id)`. Returns fewer than `k` results only when the index
    /// holds fewer than `k` vectors (exact) or the probed lists do (ANN).
    fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// Number of stored vectors.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Embedding dimensionality.
    fn dim(&self) -> usize;
}

/// Bounded top-k collector. Keys are `(dist.to_bits(), id)`: L2 distances are
/// non-negative, so the IEEE-754 bit pattern of the distance orders exactly
/// like the float and the derived tuple `Ord` gives a total, deterministic
/// order with ties going to the smaller id.
struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<(u32, u64)>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    #[inline]
    fn push(&mut self, dist_sq: f32, id: u64) {
        let key = (dist_sq.to_bits(), id);
        if self.heap.len() < self.k {
            self.heap.push(key);
        } else if let Some(&worst) = self.heap.peek() {
            if key < worst {
                self.heap.pop();
                self.heap.push(key);
            }
        }
    }

    /// Drain into ascending `(dist, id)` order, converting squared L2 back to
    /// Euclidean distance.
    fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<(u32, u64)> = self.heap.into_vec();
        v.sort_unstable();
        v.into_iter().map(|(bits, id)| Neighbor { id, dist: f32::from_bits(bits).sqrt() }).collect()
    }
}

#[inline]
fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Brute-force exact top-k index: one linear scan per query.
pub struct ExactIndex {
    dim: usize,
    ids: Vec<u64>,
    data: Vec<f32>, // row-major, ids.len() × dim
}

impl ExactIndex {
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional index");
        Self { dim, ids: Vec::new(), data: Vec::new() }
    }

    pub fn add(&mut self, id: u64, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        self.ids.push(id);
        self.data.extend_from_slice(v);
    }

    /// Build from parallel id/vector lists.
    pub fn build(dim: usize, ids: &[u64], vectors: &[Vec<f32>]) -> Self {
        assert_eq!(ids.len(), vectors.len());
        let mut idx = Self::new(dim);
        for (&id, v) in ids.iter().zip(vectors) {
            idx.add(id, v);
        }
        idx
    }

    #[inline]
    fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

impl VectorIndex for ExactIndex {
    fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        for i in 0..self.ids.len() {
            top.push(l2_sq(query, self.row(i)), self.ids[i]);
        }
        top.into_sorted()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// IVF index build parameters.
#[derive(Clone, Copy, Debug)]
pub struct AnnConfig {
    /// Number of inverted lists (k-means centroids); 0 picks `√n`, the usual
    /// IVF balance point between quantizer and list scan cost.
    pub n_lists: usize,
    /// Lists probed per query. Recall and scan cost both grow with `nprobe`;
    /// the default reaches recall@10 ≥ 0.9 on the bench workloads while
    /// scanning a few percent of the data.
    pub nprobe: usize,
    /// Lloyd iterations for the coarse quantizer. A handful suffices — the
    /// quantizer only routes queries, it is not itself the answer.
    pub kmeans_iters: usize,
    /// Seed for the centroid init; fixed seed ⇒ bit-identical index.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self { n_lists: 0, nprobe: 16, kmeans_iters: 5, seed: 0x1DF5 }
    }
}

/// IVF (inverted-file) approximate index over f32 embeddings.
pub struct AnnIndex {
    dim: usize,
    nprobe: usize,
    ids: Vec<u64>,
    data: Vec<f32>,       // row-major, ids.len() × dim
    centroids: Vec<f32>,  // row-major, n_lists × dim
    lists: Vec<Vec<u32>>, // row indices per centroid
}

impl AnnIndex {
    /// Build the index: seeded distinct-point centroid init, `kmeans_iters`
    /// serial Lloyd rounds (empty clusters keep their previous centroid),
    /// then one final assignment into inverted lists.
    pub fn build(dim: usize, ids: &[u64], vectors: &[Vec<f32>], cfg: &AnnConfig) -> Self {
        assert!(dim > 0, "zero-dimensional index");
        assert_eq!(ids.len(), vectors.len());
        let n = ids.len();
        let mut data = Vec::with_capacity(n * dim);
        for v in vectors {
            assert_eq!(v.len(), dim, "vector dimension mismatch");
            data.extend_from_slice(v);
        }
        let n_lists = if cfg.n_lists == 0 {
            ((n as f64).sqrt().round() as usize).max(1)
        } else {
            cfg.n_lists
        }
        .min(n.max(1));

        let row = |i: usize| &data[i * dim..(i + 1) * dim];

        // Init: n_lists distinct points chosen by a seeded shuffle.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        perm.shuffle(&mut rng);
        let mut centroids = vec![0.0f32; n_lists * dim];
        for (c, &p) in perm.iter().take(n_lists).enumerate() {
            centroids[c * dim..(c + 1) * dim].copy_from_slice(row(p));
        }

        let nearest_centroid = |centroids: &[f32], v: &[f32]| -> usize {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..n_lists {
                let d = l2_sq(v, &centroids[c * dim..(c + 1) * dim]);
                // Strict less keeps the lowest centroid index on ties.
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        };

        let mut assign = vec![0usize; n];
        for _ in 0..cfg.kmeans_iters.max(1) {
            for i in 0..n {
                assign[i] = nearest_centroid(&centroids, row(i));
            }
            let mut sums = vec![0.0f64; n_lists * dim];
            let mut counts = vec![0usize; n_lists];
            for i in 0..n {
                let c = assign[i];
                counts[c] += 1;
                for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row(i)) {
                    *s += x as f64;
                }
            }
            for c in 0..n_lists {
                if counts[c] > 0 {
                    for d in 0..dim {
                        centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                    }
                }
            }
        }

        let mut lists = vec![Vec::new(); n_lists];
        for i in 0..n {
            lists[nearest_centroid(&centroids, row(i))].push(i as u32);
        }

        Self { dim, nprobe: cfg.nprobe.max(1), ids: ids.to_vec(), data, centroids, lists }
    }

    /// Fraction of vectors a query scans on average — the cost model behind
    /// the speedup vs. [`ExactIndex`].
    pub fn mean_scan_fraction(&self) -> f64 {
        if self.ids.is_empty() || self.lists.is_empty() {
            return 0.0;
        }
        let probed: f64 = {
            // Expected scan size ≈ nprobe × mean list length.
            let mean_list = self.ids.len() as f64 / self.lists.len() as f64;
            (self.nprobe.min(self.lists.len())) as f64 * mean_list
        };
        (probed / self.ids.len() as f64).min(1.0)
    }

    pub fn n_lists(&self) -> usize {
        self.lists.len()
    }
}

impl VectorIndex for AnnIndex {
    fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.ids.is_empty() {
            return Vec::new();
        }
        // Rank centroids by (distance, index) — deterministic probe order.
        let mut by_dist: Vec<(u32, u32)> = (0..self.lists.len())
            .map(|c| {
                let d = l2_sq(query, &self.centroids[c * self.dim..(c + 1) * self.dim]);
                (d.to_bits(), c as u32)
            })
            .collect();
        let probe = self.nprobe.min(by_dist.len());
        by_dist.select_nth_unstable(probe.saturating_sub(1));
        let mut top = TopK::new(k);
        for &(_, c) in &by_dist[..probe] {
            for &i in &self.lists[c as usize] {
                let i = i as usize;
                top.push(l2_sq(query, &self.data[i * self.dim..(i + 1) * self.dim]), self.ids[i]);
            }
        }
        top.into_sorted()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Recall@k of an approximate result list against the exact one: the
/// fraction of exact neighbor ids the approximate search recovered.
/// Defined as 1.0 when the exact list is empty (nothing to miss).
pub fn recall_at_k(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let found: std::collections::HashSet<u64> = approx.iter().map(|n| n.id).collect();
    exact.iter().filter(|n| found.contains(&n.id)).count() as f64 / exact.len() as f64
}

/// Convert an f64 embedding (the representation model's native output) to
/// the index's f32 storage format.
pub fn to_f32(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.random_range(-1.0..1.0) as f32).collect()).collect()
    }

    #[test]
    fn exact_knn_on_a_line() {
        let vecs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, 0.0]).collect();
        let ids: Vec<u64> = (0..10).collect();
        let idx = ExactIndex::build(2, &ids, &vecs);
        let r = idx.knn(&[3.2, 0.0], 3);
        assert_eq!(r.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 4, 2]);
        assert!((r[0].dist - 0.2).abs() < 1e-6);
    }

    #[test]
    fn exact_ties_resolve_by_id() {
        // Two identical vectors: the smaller id must rank first.
        let vecs = vec![vec![1.0f32, 1.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        let idx = ExactIndex::build(2, &[7, 3, 9], &vecs);
        let r = idx.knn(&[1.0, 1.0], 2);
        assert_eq!(r.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn exact_k_larger_than_index() {
        let idx = ExactIndex::build(1, &[1, 2], &[vec![0.0], vec![1.0]]);
        assert_eq!(idx.knn(&[0.0], 10).len(), 2);
        assert!(idx.knn(&[0.0], 0).is_empty());
    }

    #[test]
    fn ann_matches_exact_on_high_recall_settings() {
        let n = 600;
        let vecs = random_vectors(n, 8, 11);
        let ids: Vec<u64> = (0..n as u64).collect();
        let exact = ExactIndex::build(8, &ids, &vecs);
        // Probing every list makes IVF exhaustive: recall must be 1.
        let cfg = AnnConfig { n_lists: 20, nprobe: 20, ..AnnConfig::default() };
        let ann = AnnIndex::build(8, &ids, &vecs, &cfg);
        for q in random_vectors(20, 8, 99) {
            let e = exact.knn(&q, 10);
            let a = ann.knn(&q, 10);
            assert_eq!(
                e.iter().map(|x| x.id).collect::<Vec<_>>(),
                a.iter().map(|x| x.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn ann_is_deterministic_across_builds() {
        let n = 400;
        let vecs = random_vectors(n, 6, 5);
        let ids: Vec<u64> = (0..n as u64).collect();
        let cfg = AnnConfig::default();
        let a = AnnIndex::build(6, &ids, &vecs, &cfg);
        let b = AnnIndex::build(6, &ids, &vecs, &cfg);
        for q in random_vectors(10, 6, 77) {
            let ra = a.knn(&q, 10);
            let rb = b.knn(&q, 10);
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
        }
    }

    #[test]
    fn empty_index_returns_nothing() {
        let ann = AnnIndex::build(4, &[], &[], &AnnConfig::default());
        assert!(ann.knn(&[0.0; 4], 5).is_empty());
        assert!(ann.is_empty());
        let exact = ExactIndex::new(4);
        assert!(exact.knn(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn recall_helper_counts_overlap() {
        let e = [Neighbor { id: 1, dist: 0.0 }, Neighbor { id: 2, dist: 1.0 }];
        let a = [Neighbor { id: 2, dist: 1.0 }, Neighbor { id: 3, dist: 2.0 }];
        assert!((recall_at_k(&e, &a) - 0.5).abs() < 1e-12);
        assert_eq!(recall_at_k(&[], &a), 1.0);
    }
}
