//! Origin–destination travel-time estimation from sparse trajectories
//! (ROADMAP item 4, after the OD-TTE line of work of Wang et al.).
//!
//! At query time only `(origin, destination, departure)` is known — there is
//! no path to embed. Instead, historical trips are bucketed by
//! `(origin, destination, departure slot)` and each bucket aggregates the
//! mean of its members' frozen path embeddings plus the mean weak TCI class
//! (the same weak supervision signal the representation was trained on). An
//! [`EtaRegression`] head is then fit on per-trip rows whose features are
//! the trip's *bucket* aggregate — exactly what will be available at query
//! time — plus a time-of-day feature.
//!
//! Unseen buckets fall back along a coarsening hierarchy:
//! `(O, D, slot)` → `(O, D)` over all slots → the global aggregate. The
//! fallback level is reported per query ([`OdFallback`]) so benchmarks can
//! track coverage alongside error.
//!
//! This module is deliberately generic over plain integer node ids and
//! departure seconds; mapping road-network paths onto [`OdTrip`] rows lives
//! with the callers (see the bench crate's workloads harness).

use std::collections::BTreeMap;

use crate::task::{EtaRegression, Task, TteScores};

/// One historical trip: endpoints, departure, the frozen path embedding, the
/// weak TCI class of the trip, and the observed travel time (seconds).
#[derive(Clone, Debug)]
pub struct OdTrip {
    pub origin: u64,
    pub dest: u64,
    pub departure_seconds: u32,
    pub embedding: Vec<f64>,
    pub weak_class: usize,
    pub travel_time: f64,
}

/// OD-TTE aggregation parameters.
#[derive(Clone, Copy, Debug)]
pub struct OdtteConfig {
    /// Departure-slot width in seconds. Coarser than the representation
    /// model's temporal resolution on purpose: sparse OD data needs wide
    /// buckets to accumulate support. Default one hour.
    pub slot_seconds: u32,
    /// Head configuration, shared with every other [`EtaRegression`] site.
    pub task: EtaRegression,
}

impl Default for OdtteConfig {
    fn default() -> Self {
        Self { slot_seconds: 3600, task: EtaRegression::default() }
    }
}

/// Which level of the fallback hierarchy answered a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OdFallback {
    /// Exact `(origin, destination, slot)` bucket.
    Bucket,
    /// `(origin, destination)` aggregate over all slots.
    Pair,
    /// Global aggregate — the estimator has never seen this OD pair.
    Global,
}

/// Running mean of embeddings and weak classes for one bucket.
#[derive(Clone, Debug, Default)]
struct Agg {
    emb_sum: Vec<f64>,
    class_sum: f64,
    n: usize,
}

impl Agg {
    fn push(&mut self, emb: &[f64], class: usize) {
        if self.emb_sum.is_empty() {
            self.emb_sum = vec![0.0; emb.len()];
        }
        for (s, &x) in self.emb_sum.iter_mut().zip(emb) {
            *s += x;
        }
        self.class_sum += class as f64;
        self.n += 1;
    }

    fn mean_emb(&self) -> Vec<f64> {
        self.emb_sum.iter().map(|s| s / self.n as f64).collect()
    }

    fn mean_class(&self) -> f64 {
        self.class_sum / self.n as f64
    }
}

const SECONDS_PER_DAY: u32 = 86_400;

/// Fitted OD travel-time estimator.
pub struct OdtteModel {
    slot_seconds: u32,
    task: EtaRegression,
    head: <EtaRegression as Task>::Head,
    buckets: BTreeMap<(u64, u64, u32), (Vec<f64>, f64)>,
    pairs: BTreeMap<(u64, u64), (Vec<f64>, f64)>,
    global: (Vec<f64>, f64),
}

impl OdtteModel {
    /// Aggregate training trips into buckets and fit the regression head on
    /// per-trip rows with bucket-level features. Fully deterministic: sums
    /// accumulate in trip order and rows are fit in trip order.
    pub fn fit(trips: &[OdTrip], cfg: &OdtteConfig) -> Self {
        assert!(!trips.is_empty(), "odtte fit needs at least one trip");
        assert!(cfg.slot_seconds > 0);
        let mut buckets: BTreeMap<(u64, u64, u32), Agg> = BTreeMap::new();
        let mut pairs: BTreeMap<(u64, u64), Agg> = BTreeMap::new();
        let mut global = Agg::default();
        for t in trips {
            let slot = Self::slot_of(cfg.slot_seconds, t.departure_seconds);
            buckets.entry((t.origin, t.dest, slot)).or_default().push(&t.embedding, t.weak_class);
            pairs.entry((t.origin, t.dest)).or_default().push(&t.embedding, t.weak_class);
            global.push(&t.embedding, t.weak_class);
        }
        let buckets: BTreeMap<_, _> =
            buckets.into_iter().map(|(k, a)| (k, (a.mean_emb(), a.mean_class()))).collect();
        let pairs: BTreeMap<_, _> =
            pairs.into_iter().map(|(k, a)| (k, (a.mean_emb(), a.mean_class()))).collect();
        let global = (global.mean_emb(), global.mean_class());

        // Train rows see exactly the query-time features: their bucket's
        // aggregate, never their own embedding.
        let mut x = Vec::with_capacity(trips.len());
        let mut y = Vec::with_capacity(trips.len());
        for t in trips {
            let slot = Self::slot_of(cfg.slot_seconds, t.departure_seconds);
            let (emb, class) = &buckets[&(t.origin, t.dest, slot)];
            x.push(Self::features(emb, *class, cfg.slot_seconds, t.departure_seconds));
            y.push(t.travel_time);
        }
        let head = cfg.task.fit(&x, &y);
        Self { slot_seconds: cfg.slot_seconds, task: cfg.task, head, buckets, pairs, global }
    }

    fn slot_of(slot_seconds: u32, departure_seconds: u32) -> u32 {
        (departure_seconds % SECONDS_PER_DAY) / slot_seconds
    }

    /// Feature row: bucket-mean embedding ++ [mean weak class, time-of-day].
    /// The time-of-day fraction lets the head keep a temporal signal even
    /// when a query falls back to the slot-blind `(O, D)` aggregate.
    fn features(emb: &[f64], class: f64, _slot_seconds: u32, departure_seconds: u32) -> Vec<f64> {
        let mut row = Vec::with_capacity(emb.len() + 2);
        row.extend_from_slice(emb);
        row.push(class);
        row.push((departure_seconds % SECONDS_PER_DAY) as f64 / SECONDS_PER_DAY as f64);
        row
    }

    /// Predict travel time, reporting the fallback level that supplied the
    /// features.
    pub fn predict_with_fallback(
        &self,
        origin: u64,
        dest: u64,
        departure_seconds: u32,
    ) -> (f64, OdFallback) {
        let slot = Self::slot_of(self.slot_seconds, departure_seconds);
        let (agg, level) = if let Some(a) = self.buckets.get(&(origin, dest, slot)) {
            (a, OdFallback::Bucket)
        } else if let Some(a) = self.pairs.get(&(origin, dest)) {
            (a, OdFallback::Pair)
        } else {
            (&self.global, OdFallback::Global)
        };
        let row = Self::features(&agg.0, agg.1, self.slot_seconds, departure_seconds);
        (self.task.predict(&self.head, &row), level)
    }

    pub fn predict(&self, origin: u64, dest: u64, departure_seconds: u32) -> f64 {
        self.predict_with_fallback(origin, dest, departure_seconds).0
    }

    /// Score the estimator on held-out trips with the standard Eq. 14
    /// metrics; also returns the per-level fallback counts
    /// `[bucket, pair, global]`.
    pub fn evaluate(&self, trips: &[OdTrip]) -> (TteScores, [usize; 3]) {
        assert!(!trips.is_empty(), "odtte evaluate needs at least one trip");
        let mut pred = Vec::with_capacity(trips.len());
        let mut truth = Vec::with_capacity(trips.len());
        let mut levels = [0usize; 3];
        for t in trips {
            let (p, level) = self.predict_with_fallback(t.origin, t.dest, t.departure_seconds);
            pred.push(p);
            truth.push(t.travel_time);
            levels[match level {
                OdFallback::Bucket => 0,
                OdFallback::Pair => 1,
                OdFallback::Global => 2,
            }] += 1;
        }
        (self.task.score(&truth, &pred, &[]), levels)
    }

    /// Number of `(O, D, slot)` buckets with data.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of distinct OD pairs with data.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic world: travel time depends on the OD pair (base) and on the
    /// departure slot (rush-hour bump); the embedding leaks the base time,
    /// the weak class leaks the bump — so the head has everything it needs.
    fn trip(o: u64, d: u64, dep: u32, seed: u64) -> OdTrip {
        let base = 100.0 + (o * 31 + d * 7) as f64 % 200.0;
        let rush = if (30_600..34_200).contains(&(dep % 86_400)) { 60.0 } else { 0.0 };
        let jitter = (seed % 7) as f64 - 3.0;
        OdTrip {
            origin: o,
            dest: d,
            departure_seconds: dep,
            embedding: vec![base / 100.0, (dep % 86_400) as f64 / 86_400.0, 1.0],
            weak_class: if rush > 0.0 { 2 } else { 0 },
            travel_time: base + rush + jitter,
        }
    }

    fn world() -> Vec<OdTrip> {
        let mut trips = Vec::new();
        let mut seed = 0u64;
        for o in 0..4u64 {
            for d in 4..8u64 {
                for h in [7u32, 8, 9, 12, 18] {
                    for rep in 0..3u32 {
                        seed += 1;
                        trips.push(trip(o, d, h * 3600 + rep * 600, seed));
                    }
                }
            }
        }
        trips
    }

    #[test]
    fn fit_predict_on_seen_buckets_is_accurate() {
        let trips = world();
        let model = OdtteModel::fit(&trips, &OdtteConfig::default());
        let (scores, levels) = model.evaluate(&trips);
        // Every eval trip hits its exact bucket; jitter is ±3s on ~100–300s
        // times, so the head should sit well under 20s MAE.
        assert_eq!(levels[1] + levels[2], 0, "all trips must hit exact buckets");
        assert!(scores.mae < 20.0, "mae {} too high", scores.mae);
    }

    #[test]
    fn fallback_hierarchy_engages_in_order() {
        let trips = world();
        let model = OdtteModel::fit(&trips, &OdtteConfig::default());
        // Seen pair, unseen slot (3am) → Pair fallback.
        let (_, l) = model.predict_with_fallback(0, 4, 3 * 3600);
        assert_eq!(l, OdFallback::Pair);
        // Unseen pair → Global fallback.
        let (_, l) = model.predict_with_fallback(99, 98, 8 * 3600);
        assert_eq!(l, OdFallback::Global);
        // Seen bucket → Bucket.
        let (_, l) = model.predict_with_fallback(0, 4, 8 * 3600);
        assert_eq!(l, OdFallback::Bucket);
    }

    #[test]
    fn deterministic_across_fits() {
        let trips = world();
        let a = OdtteModel::fit(&trips, &OdtteConfig::default());
        let b = OdtteModel::fit(&trips, &OdtteConfig::default());
        for t in &trips[..10] {
            let pa = a.predict(t.origin, t.dest, t.departure_seconds);
            let pb = b.predict(t.origin, t.dest, t.departure_seconds);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }

    #[test]
    fn bucket_counts() {
        let trips = world();
        let model = OdtteModel::fit(&trips, &OdtteConfig::default());
        assert_eq!(model.n_pairs(), 16);
        // 16 pairs × 5 distinct hours.
        assert_eq!(model.n_buckets(), 80);
    }
}
