//! Downstream task machinery (§VII-A.2/4).
//!
//! The paper evaluates every representation-learning method by freezing the
//! learned representations and fitting sklearn's Gradient Boosting Regressor
//! (travel time, ranking score) or Classifier (path recommendation) on top.
//! This crate provides from-scratch equivalents, unified behind a task layer:
//!
//! * [`tree`] — CART regression trees (variance-reduction splits).
//! * [`gbdt`] — gradient boosting: [`gbdt::GbRegressor`] (squared loss) and
//!   [`gbdt::GbClassifier`] (binary logistic loss).
//! * [`metrics`] — MAE / MARE / MAPE (Eq. 14), Kendall τ-a / τ-b and
//!   Spearman ρ (Eq. 15), accuracy, hit rate and hit-rate@k (Eq. 16).
//! * [`task`] — the [`task::Task`] trait (fit on frozen embeddings →
//!   predict → score, serializable heads) with [`task::EtaRegression`],
//!   [`task::PathRanking`], [`task::PathClassification`]. Every head-fitting
//!   site in the workspace goes through this layer.
//! * [`index`] — trajectory-similarity search: exact brute-force and IVF
//!   approximate top-k over f32 embeddings, with recall@k instrumentation.
//! * [`odtte`] — OD travel-time estimation from per-(origin, destination,
//!   departure-slot) embedding aggregates with weak-TCI-label features.

pub mod gbdt;
pub mod index;
pub mod metrics;
pub mod odtte;
pub mod task;
pub mod tree;

pub use gbdt::{GbClassifier, GbConfig, GbRegressor};
pub use index::{AnnConfig, AnnIndex, ExactIndex, Neighbor, VectorIndex};
pub use odtte::{OdFallback, OdTrip, OdtteConfig, OdtteModel};
pub use task::{
    EtaRegression, PathClassification, PathRanking, RankScores, RecScores, Task, TteScores,
};

/// Crate version, recorded into benchmark artifacts (`BENCH_workloads.json`)
/// so staleness checks can flag results from another build.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
