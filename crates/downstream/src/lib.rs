//! Downstream task machinery (§VII-A.2/4).
//!
//! The paper evaluates every representation-learning method by freezing the
//! learned representations and fitting sklearn's Gradient Boosting Regressor
//! (travel time, ranking score) or Classifier (path recommendation) on top.
//! This crate provides from-scratch equivalents:
//!
//! * [`tree`] — CART regression trees (variance-reduction splits).
//! * [`gbdt`] — gradient boosting: [`gbdt::GbRegressor`] (squared loss) and
//!   [`gbdt::GbClassifier`] (binary logistic loss).
//! * [`metrics`] — MAE / MARE / MAPE (Eq. 14), Kendall τ and Spearman ρ
//!   (Eq. 15), classification accuracy and hit rate (Eq. 16).

pub mod gbdt;
pub mod metrics;
pub mod tree;

pub use gbdt::{GbClassifier, GbConfig, GbRegressor};
