//! Property-based tests for the similarity-search indexes: ANN recall vs.
//! the exact scan, determinism across builds, and edge cases with empty or
//! duplicated vectors.

use proptest::prelude::*;
use wsccl_downstream::index::{recall_at_k, to_f32, AnnConfig, AnnIndex, ExactIndex, VectorIndex};

const DIM: usize = 6;

fn vectors(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, DIM), n)
}

fn ids_for(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With generous probing the IVF index keeps recall@10 high against the
    /// exact scan on arbitrary embedding sets.
    #[test]
    fn ann_recall_at_10_vs_exact(vecs in vectors(80..200), qs in vectors(3..6)) {
        let ids = ids_for(vecs.len());
        let exact = ExactIndex::build(DIM, &ids, &vecs);
        let cfg = AnnConfig { nprobe: 8, ..AnnConfig::default() };
        let ann = AnnIndex::build(DIM, &ids, &vecs, &cfg);
        for q in &qs {
            let e = exact.knn(q, 10);
            let a = ann.knn(q, 10);
            let r = recall_at_k(&e, &a);
            // nprobe 8 of ~√n ≈ 9–14 lists probes the majority of the data.
            prop_assert!(r >= 0.5, "recall {r} too low ({} vecs)", vecs.len());
        }
    }

    /// Probing every list makes IVF exhaustive: results must equal the exact
    /// scan, including order and distances.
    #[test]
    fn ann_with_full_probe_equals_exact(vecs in vectors(20..80), q in proptest::collection::vec(-10.0f32..10.0, DIM)) {
        let ids = ids_for(vecs.len());
        let exact = ExactIndex::build(DIM, &ids, &vecs);
        let n_lists = (vecs.len() as f64).sqrt().round() as usize;
        let cfg = AnnConfig { n_lists, nprobe: n_lists, ..AnnConfig::default() };
        let ann = AnnIndex::build(DIM, &ids, &vecs, &cfg);
        let e = exact.knn(&q, 10);
        let a = ann.knn(&q, 10);
        prop_assert_eq!(e.len(), a.len());
        for (x, y) in e.iter().zip(&a) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
    }

    /// Two builds over the same input return bit-identical results for any
    /// query — the index is a pure function of (vectors, config).
    #[test]
    fn ann_builds_are_deterministic(vecs in vectors(30..120), q in proptest::collection::vec(-10.0f32..10.0, DIM)) {
        let ids = ids_for(vecs.len());
        let cfg = AnnConfig::default();
        let a = AnnIndex::build(DIM, &ids, &vecs, &cfg);
        let b = AnnIndex::build(DIM, &ids, &vecs, &cfg);
        let ra = a.knn(&q, 10);
        let rb = b.knn(&q, 10);
        prop_assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
    }

    /// Duplicate vectors: every duplicate of the query's nearest vector must
    /// surface before anything farther, ordered by id.
    #[test]
    fn duplicates_rank_by_id(base in proptest::collection::vec(-10.0f32..10.0, DIM), copies in 2usize..6) {
        // `copies` duplicates of `base` plus one far-away point.
        let mut vecs: Vec<Vec<f32>> = (0..copies).map(|_| base.clone()).collect();
        vecs.push(base.iter().map(|x| x + 100.0).collect());
        let ids = ids_for(vecs.len());
        let exact = ExactIndex::build(DIM, &ids, &vecs);
        let r = exact.knn(&base, copies);
        let got: Vec<u64> = r.iter().map(|n| n.id).collect();
        let want: Vec<u64> = (0..copies as u64).collect();
        prop_assert_eq!(got, want);
        for n in &r {
            prop_assert_eq!(n.dist, 0.0);
        }
        // The ANN index tolerates duplicates too (all land in one list).
        let ann = AnnIndex::build(DIM, &ids, &vecs, &AnnConfig::default());
        let ra = ann.knn(&base, copies);
        prop_assert!(ra.iter().all(|n| n.dist == 0.0));
    }

    /// recall_at_k is 1 against itself and in [0, 1] against anything.
    #[test]
    fn recall_bounds(vecs in vectors(10..40), q in proptest::collection::vec(-10.0f32..10.0, DIM)) {
        let ids = ids_for(vecs.len());
        let exact = ExactIndex::build(DIM, &ids, &vecs);
        let e = exact.knn(&q, 10);
        prop_assert_eq!(recall_at_k(&e, &e), 1.0);
        let ann = AnnIndex::build(DIM, &ids, &vecs, &AnnConfig { nprobe: 1, ..AnnConfig::default() });
        let r = recall_at_k(&e, &ann.knn(&q, 10));
        prop_assert!((0.0..=1.0).contains(&r));
    }
}

#[test]
fn empty_index_edge_cases() {
    let exact = ExactIndex::new(DIM);
    assert!(exact.knn(&[0.0; DIM], 10).is_empty());
    let ann = AnnIndex::build(DIM, &[], &[], &AnnConfig::default());
    assert!(ann.knn(&[0.0; DIM], 10).is_empty());
    assert_eq!(ann.len(), 0);
    assert!(recall_at_k(&[], &[]) == 1.0);
}

#[test]
fn f64_to_f32_bridge() {
    let v = vec![1.5f64, -2.25, 0.0];
    assert_eq!(to_f32(&v), vec![1.5f32, -2.25, 0.0]);
}
