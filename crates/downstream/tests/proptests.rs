//! Property-based tests for trees, boosting, and metrics.

use proptest::prelude::*;
use wsccl_downstream::metrics::{accuracy, hit_rate, kendall_tau, mae, mape, mare, spearman_rho};
use wsccl_downstream::tree::{RegressionTree, TreeConfig};
use wsccl_downstream::{GbConfig, GbRegressor};

fn xy(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (
        proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 3), n..n + 1),
        proptest::collection::vec(-100.0f64..100.0, n..n + 1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A regression tree's predictions never leave the range of its targets.
    #[test]
    fn tree_predictions_within_target_range((x, y) in xy(30)) {
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default());
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &x {
            let p = tree.predict(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    /// More boosting rounds never increase training MSE (squared loss is
    /// monotone in function space with a small enough learning rate).
    #[test]
    fn boosting_training_error_is_monotone((x, y) in xy(40)) {
        let mse = |trees: usize| {
            let cfg = GbConfig { n_trees: trees, learning_rate: 0.1, ..Default::default() };
            let m = GbRegressor::fit(&x, &y, &cfg);
            x.iter().zip(&y).map(|(r, t)| (m.predict(r) - t).powi(2)).sum::<f64>()
        };
        prop_assert!(mse(30) <= mse(5) + 1e-6);
    }

    /// MAE/MARE/MAPE are zero exactly for perfect predictions and positive
    /// otherwise.
    #[test]
    fn error_metrics_definiteness(y in proptest::collection::vec(1.0f64..1000.0, 2..20), bump in 0.1f64..10.0) {
        prop_assert_eq!(mae(&y, &y), 0.0);
        prop_assert_eq!(mare(&y, &y), 0.0);
        prop_assert_eq!(mape(&y, &y), 0.0);
        let off: Vec<f64> = y.iter().map(|v| v + bump).collect();
        prop_assert!(mae(&y, &off) > 0.0);
        prop_assert!(mare(&y, &off) > 0.0);
        prop_assert!(mape(&y, &off) > 0.0);
        prop_assert!((mae(&y, &off) - bump).abs() < 1e-9);
    }

    /// Kendall τ and Spearman ρ: bounded, symmetric under argument swap, and
    /// negated by reversing one ranking.
    #[test]
    fn rank_correlation_properties(a in proptest::collection::vec(-100.0f64..100.0, 3..15)) {
        // Make values distinct enough to avoid tie pathologies.
        let a: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + i as f64 * 1e-3).collect();
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        prop_assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-9);
        prop_assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-9);
        let rev: Vec<f64> = b.iter().map(|v| -v).collect();
        prop_assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-9);
        prop_assert!((spearman_rho(&a, &rev) + 1.0).abs() < 1e-9);
        // Symmetry.
        prop_assert!((kendall_tau(&a, &b) - kendall_tau(&b, &a)).abs() < 1e-12);
        prop_assert!((spearman_rho(&a, &b) - spearman_rho(&b, &a)).abs() < 1e-12);
    }

    /// Accuracy and hit rate are bounded and consistent with perfect/anti
    /// predictions.
    #[test]
    fn classification_metric_bounds(t in proptest::collection::vec(any::<bool>(), 1..30)) {
        prop_assert_eq!(accuracy(&t, &t), 1.0);
        let flipped: Vec<bool> = t.iter().map(|b| !b).collect();
        prop_assert_eq!(accuracy(&t, &flipped), 0.0);
        let hr = hit_rate(&t, &t);
        if t.iter().any(|&b| b) {
            prop_assert_eq!(hr, 1.0);
        } else {
            prop_assert_eq!(hr, 0.0);
        }
    }
}
