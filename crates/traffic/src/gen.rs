//! Index-addressed trip generation for the streaming data pipeline.
//!
//! The sequential [`crate::TripGenerator`] draws every trip from one RNG
//! stream, so trip *i* depends on trips `0..i` — fine in memory, fatal for a
//! parallel streaming pipeline, where determinism must not depend on which
//! producer thread generates which trip. [`IndexedTripGen`] makes each trip a
//! *pure function of `(seed, index)`*: any thread can generate trip `i`
//! independently and the result is bit-identical at any thread count.
//!
//! Two further changes make generation O(trip) instead of O(city), which is
//! what lets the `metro` tier (100k+ edges) stream millions of trajectories:
//!
//! * **Route-choice perturbation is hashed, not drawn.** The sequential
//!   generator fills an O(num_edges) perturbation vector per trip; here each
//!   edge's perturbation comes from a SplitMix64 hash of `(trip key, edge)`,
//!   evaluated lazily for the edges Dijkstra actually relaxes.
//! * **Destinations are sampled locally.** A bounded random walk from the
//!   origin picks the destination, and the route query uses the early-exit
//!   [`dijkstra_to`], so the explored ball scales with trip length, not city
//!   size.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use wsccl_roadnet::shortest::dijkstra_to;
use wsccl_roadnet::{EdgeId, NodeId, Path, RoadNetwork};

use crate::congestion::CongestionModel;
use crate::time::SimTime;
use crate::trajectory::{
    emit_trajectory, sample_departure_with, traverse_with, Trajectory, Trip, TripConfig,
};

/// SplitMix64 finalizer: a high-quality 64-bit mixing function used to derive
/// per-index RNG seeds and per-(trip, edge) route perturbations.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Route-choice perturbation for one edge of one trip: `exp(noise * z)` with
/// `z` an approximate normal (sum of two uniforms on `[-1, 1)`) derived from
/// the hash of `(trip key, edge)`.
fn route_perturb(trip_key: u64, e: EdgeId, noise: f64) -> f64 {
    let h1 = mix64(trip_key ^ (e.0 as u64).wrapping_mul(0xA24BAED4963EE407));
    let h2 = mix64(h1);
    let u = |h: u64| (h >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
    (noise * (u(h1) + u(h2))).exp()
}

/// Seeded, index-addressed trip generator: `trip(i)` is a pure function of
/// `(seed, i)`, independent of every other index.
pub struct IndexedTripGen<'a> {
    net: &'a RoadNetwork,
    model: &'a CongestionModel,
    cfg: TripConfig,
    base: u64,
}

impl<'a> IndexedTripGen<'a> {
    pub fn new(
        net: &'a RoadNetwork,
        model: &'a CongestionModel,
        cfg: TripConfig,
        seed: u64,
    ) -> Self {
        // Mixed so the stream differs from other components at the same seed.
        Self { net, model, cfg, base: mix64(seed ^ 0x57EEA11_7419) }
    }

    pub fn config(&self) -> &TripConfig {
        &self.cfg
    }

    /// The RNG for record `index`; every random choice for that record —
    /// trip, traversal noise, GPS noise, labels — draws from this stream.
    pub fn rng(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix64(self.base ^ mix64(index)))
    }

    /// Generate trip `index`.
    pub fn trip(&self, index: u64) -> Trip {
        let mut rng = self.rng(index);
        self.trip_with(&mut rng)
    }

    /// Generate a trip from an already-positioned per-record RNG (use
    /// [`Self::rng`]); lets callers keep drawing from the same stream for
    /// GPS emission or labeling stages.
    pub fn trip_with(&self, rng: &mut StdRng) -> Trip {
        let departure = sample_departure_with(rng);
        let path = self.sample_route(rng, departure);
        let (edge_times, total_time) =
            traverse_with(self.net, self.model, self.cfg.time_noise, rng, &path, departure);
        Trip { path, departure, edge_times, total_time }
    }

    /// Emit the noisy GPS trajectory for a trip, continuing `rng`'s stream.
    pub fn trajectory(&self, rng: &mut StdRng, trip: &Trip) -> Trajectory {
        emit_trajectory(self.net, &self.cfg, rng, trip)
    }

    /// Sample an origin, a locally reachable destination (bounded random
    /// walk), and the perturbed-cost route between them, retrying until the
    /// route satisfies the configured length band.
    fn sample_route(&self, rng: &mut StdRng, departure: SimTime) -> Path {
        let n = self.net.num_nodes() as u32;
        loop {
            let src = NodeId(rng.random_range(0..n));
            // Random walk bounds the OD distance to the trip length band.
            let steps = rng.random_range(self.cfg.min_edges..=self.cfg.max_edges);
            let mut node = src;
            for _ in 0..steps {
                let outs = self.net.out_edges(node);
                if outs.is_empty() {
                    break;
                }
                let e = outs[rng.random_range(0..outs.len())];
                node = self.net.edge(e).to;
            }
            if node == src {
                continue;
            }
            let trip_key = rng.random::<u64>();
            let (net, model, noise) = (self.net, self.model, self.cfg.route_noise);
            let weight = move |e: EdgeId| {
                model.edge_travel_time(net, e, departure).max(0.1)
                    * route_perturb(trip_key, e, noise)
            };
            let Some(path) = dijkstra_to(self.net, src, node, &weight) else {
                continue;
            };
            if (self.cfg.min_edges..=self.cfg.max_edges).contains(&path.len()) {
                return path;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::CityProfile;

    fn setup() -> (RoadNetwork, CongestionModel) {
        let net = CityProfile::Aalborg.generate(3);
        let model = CongestionModel::new(&net, 1.5, 3);
        (net, model)
    }

    #[test]
    fn trips_are_pure_functions_of_seed_and_index() {
        let (net, model) = setup();
        let g1 = IndexedTripGen::new(&net, &model, TripConfig::default(), 7);
        let g2 = IndexedTripGen::new(&net, &model, TripConfig::default(), 7);
        // Generate in different orders; index determines content.
        let a: Vec<Trip> = [5u64, 0, 9].iter().map(|&i| g1.trip(i)).collect();
        let b: Vec<Trip> = [9u64, 5, 0].iter().map(|&i| g2.trip(i)).collect();
        assert_eq!(a[0].path.edges(), b[1].path.edges());
        assert_eq!(a[1].path.edges(), b[2].path.edges());
        assert_eq!(a[2].path.edges(), b[0].path.edges());
        assert_eq!(a[0].departure, b[1].departure);
        assert_eq!(a[0].edge_times, b[1].edge_times);
    }

    #[test]
    fn different_indices_differ_and_respect_length_band() {
        let (net, model) = setup();
        let cfg = TripConfig::default();
        let gen = IndexedTripGen::new(&net, &model, cfg.clone(), 11);
        let mut distinct = 0;
        let first = gen.trip(0);
        for i in 0..20u64 {
            let t = gen.trip(i);
            assert!((cfg.min_edges..=cfg.max_edges).contains(&t.path.len()));
            assert!(Path::new(&net, t.path.edges().to_vec()).is_some(), "invalid path");
            assert_eq!(t.edge_times.len(), t.path.len());
            assert!((t.edge_times.iter().sum::<f64>() - t.total_time).abs() < 1e-9);
            if t.path.edges() != first.path.edges() {
                distinct += 1;
            }
        }
        assert!(distinct >= 15, "only {distinct} of 20 trips differed from trip 0");
    }

    #[test]
    fn trajectory_stage_continues_the_record_stream() {
        let (net, model) = setup();
        let gen = IndexedTripGen::new(&net, &model, TripConfig::default(), 5);
        let mut rng = gen.rng(3);
        let trip = gen.trip_with(&mut rng);
        let traj = gen.trajectory(&mut rng, &trip);
        assert!(traj.fixes.len() >= 2);
        for w in traj.fixes.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        // Replaying the whole record from its index reproduces both stages.
        let mut rng2 = gen.rng(3);
        let trip2 = gen.trip_with(&mut rng2);
        let traj2 = gen.trajectory(&mut rng2, &trip2);
        assert_eq!(trip.path.edges(), trip2.path.edges());
        assert_eq!(traj.fixes.len(), traj2.fixes.len());
        assert_eq!(traj.fixes[0].x, traj2.fixes[0].x);
    }
}
