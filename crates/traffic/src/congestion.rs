//! Time- and space-dependent congestion model.
//!
//! Ground-truth travel times in the paper come from real traffic; here they
//! come from this model. Its structure is chosen so that the phenomena the
//! paper's weak labels must capture actually exist in the data: weekday
//! morning (≈08:00) and afternoon (≈17:30) peaks, stronger congestion near the
//! city center, per-edge heterogeneity, and signal delays.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use wsccl_roadnet::{EdgeId, RoadNetwork};

use crate::time::SimTime;

/// City-level congestion parameters plus per-edge heterogeneity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CongestionModel {
    /// Multiplicative per-edge speed heterogeneity (≈ lognormal around 1).
    edge_factor: Vec<f64>,
    /// City center in network coordinates.
    center: (f64, f64),
    /// Spatial decay radius of the center effect, meters.
    radius: f64,
    /// Peak congestion severity (0 = flat traffic; ~1.5 = heavy peaks).
    pub peak_strength: f64,
}

impl CongestionModel {
    /// Build a model for a network. `peak_strength` controls how much slower
    /// peak-hour travel is; the per-city defaults in `wsccl-datagen` use
    /// 1.2–1.8.
    pub fn new(net: &RoadNetwork, peak_strength: f64, seed: u64) -> Self {
        // XOR with a constant so this RNG stream differs from other components
        // seeded from the same master seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7AFF_1C00);
        let edge_factor = (0..net.num_edges())
            .map(|_| {
                // Lognormal-ish: exp(N(0, 0.15)), clamped to a sane band.
                let z: f64 = rng.random_range(-1.0..1.0) + rng.random_range(-1.0..1.0);
                (0.15 * z).exp().clamp(0.6, 1.6)
            })
            .collect();
        let (mut cx, mut cy, mut n) = (0.0, 0.0, 0);
        for i in 0..net.num_nodes() {
            let (x, y) = net.position(wsccl_roadnet::NodeId(i as u32));
            cx += x;
            cy += y;
            n += 1;
        }
        let center = (cx / n as f64, cy / n as f64);
        // Radius: half the coordinate spread.
        let mut max_d: f64 = 1.0;
        for i in 0..net.num_nodes() {
            let (x, y) = net.position(wsccl_roadnet::NodeId(i as u32));
            let d = ((x - center.0).powi(2) + (y - center.1).powi(2)).sqrt();
            max_d = max_d.max(d);
        }
        Self { edge_factor, center, radius: max_d / 2.0, peak_strength }
    }

    /// Time-of-day congestion intensity in `[0, 1]` (before peak scaling).
    ///
    /// Weekdays have Gaussian bumps at 08:00 (σ = 1h) and 17:30 (σ = 1.5h);
    /// weekends a mild midday bump.
    pub fn time_profile(t: SimTime) -> f64 {
        let h = t.hour_f();
        let bump = |center: f64, sigma: f64| (-((h - center) / sigma).powi(2) / 2.0).exp();
        if t.is_weekday() {
            (bump(8.0, 1.0) + bump(17.5, 1.5)).min(1.0)
        } else {
            0.35 * bump(13.0, 3.0)
        }
    }

    /// Spatial congestion weight in `[0.4, 1.2]`: higher near the center.
    fn spatial(&self, pos: (f64, f64)) -> f64 {
        let d2 = (pos.0 - self.center.0).powi(2) + (pos.1 - self.center.1).powi(2);
        0.4 + 0.8 * (-d2 / (2.0 * self.radius * self.radius)).exp()
    }

    /// Congestion factor ≥ 1 dividing free-flow speed at `pos` and time `t`.
    pub fn congestion_factor(&self, t: SimTime, pos: (f64, f64)) -> f64 {
        1.0 + self.peak_strength * Self::time_profile(t) * self.spatial(pos)
    }

    /// Instantaneous speed on an edge at time `t`, m/s.
    pub fn speed(&self, net: &RoadNetwork, e: EdgeId, t: SimTime) -> f64 {
        let edge = net.edge(e);
        let base = edge.features.road_type.free_flow_speed();
        // More lanes flow slightly better under load.
        let lane_factor = 0.9 + 0.05 * edge.features.lanes as f64;
        let pos = net.edge_midpoint(e);
        (base * lane_factor * self.edge_factor[e.index()] / self.congestion_factor(t, pos)).max(1.0)
    }

    /// Expected traversal time of an edge entered at time `t`, seconds,
    /// including expected signal delay.
    pub fn edge_travel_time(&self, net: &RoadNetwork, e: EdgeId, t: SimTime) -> f64 {
        let edge = net.edge(e);
        let drive = edge.length / self.speed(net, e, t);
        let signal = if edge.features.signals {
            // Expected signal wait grows with congestion.
            8.0 + 12.0 * Self::time_profile(t)
        } else {
            0.0
        };
        drive + signal
    }

    /// Citywide congestion index at time `t` in `[0, 1]`, the basis of the
    /// TCI weak labels: mean normalized congestion over sampled edges.
    pub fn network_congestion_index(&self, net: &RoadNetwork, t: SimTime) -> f64 {
        let n = net.num_edges();
        let step = (n / 64).max(1);
        let mut sum = 0.0;
        let mut count = 0;
        let max_factor = 1.0 + self.peak_strength * 1.2;
        let mut i = 0;
        while i < n {
            let pos = net.edge_midpoint(EdgeId(i as u32));
            sum += (self.congestion_factor(t, pos) - 1.0) / (max_factor - 1.0);
            count += 1;
            i += step;
        }
        (sum / count as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::{CityProfile, RoadType};

    fn setup() -> (RoadNetwork, CongestionModel) {
        let net = CityProfile::Aalborg.generate(1);
        let model = CongestionModel::new(&net, 1.5, 1);
        (net, model)
    }

    #[test]
    fn peak_hours_are_slower() {
        let (net, model) = setup();
        let e = EdgeId(0);
        let peak = model.speed(&net, e, SimTime::from_hm(1, 8, 0));
        let off = model.speed(&net, e, SimTime::from_hm(1, 11, 30));
        let night = model.speed(&net, e, SimTime::from_hm(1, 3, 0));
        assert!(peak < off, "peak {peak} should be slower than midday {off}");
        assert!(off < night + 1e-9, "midday {off} should be ≤ night {night}");
    }

    #[test]
    fn weekends_are_lighter_than_weekday_peaks() {
        let p_weekday = CongestionModel::time_profile(SimTime::from_hm(2, 8, 0));
        let p_weekend = CongestionModel::time_profile(SimTime::from_hm(5, 8, 0));
        assert!(p_weekday > 2.0 * p_weekend);
    }

    #[test]
    fn travel_time_positive_and_signal_penalty_applies() {
        let (net, model) = setup();
        let t = SimTime::from_hm(0, 8, 0);
        // Find one signalized and one unsignalized edge of the same type.
        let mut sig = None;
        let mut plain = None;
        for i in 0..net.num_edges() {
            let e = EdgeId(i as u32);
            let f = net.edge(e).features;
            if f.signals && sig.is_none() {
                sig = Some(e);
            }
            if !f.signals && plain.is_none() {
                plain = Some(e);
            }
        }
        let (sig, plain) = (sig.expect("has signals"), plain.expect("has plain"));
        let tt_sig = model.edge_travel_time(&net, sig, t);
        let tt_plain = model.edge_travel_time(&net, plain, t);
        assert!(tt_sig > 0.0 && tt_plain > 0.0);
        // The signal adds at least the base 8 s over pure driving time.
        let drive = net.edge(sig).length / model.speed(&net, sig, t);
        assert!(tt_sig >= drive + 8.0);
    }

    #[test]
    fn congestion_index_tracks_peaks_and_is_bounded() {
        let (net, model) = setup();
        let peak = model.network_congestion_index(&net, SimTime::from_hm(1, 8, 0));
        let night = model.network_congestion_index(&net, SimTime::from_hm(1, 3, 0));
        assert!((0.0..=1.0).contains(&peak) && (0.0..=1.0).contains(&night));
        assert!(peak > night + 0.2, "peak index {peak} vs night {night}");
    }

    #[test]
    fn faster_roads_stay_faster() {
        let (net, model) = setup();
        let t = SimTime::from_hm(0, 12, 0);
        // Average speed by type: motorways should beat residential streets.
        let mut by_type = [(0.0f64, 0usize); 5];
        for i in 0..net.num_edges() {
            let e = EdgeId(i as u32);
            let ix = net.edge(e).features.road_type.index();
            by_type[ix].0 += model.speed(&net, e, t);
            by_type[ix].1 += 1;
        }
        let avg = |ix: usize| by_type[ix].0 / by_type[ix].1.max(1) as f64;
        let motorway = avg(RoadType::Motorway.index());
        let residential = avg(RoadType::Residential.index());
        assert!(motorway > 1.5 * residential, "{motorway} vs {residential}");
    }
}
