//! Time- and space-dependent congestion model.
//!
//! Ground-truth travel times in the paper come from real traffic; here they
//! come from this model. Its structure is chosen so that the phenomena the
//! paper's weak labels must capture actually exist in the data: weekday
//! morning (≈08:00) and afternoon (≈17:30) peaks, stronger congestion near the
//! city center, per-edge heterogeneity, and signal delays.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use wsccl_roadnet::{EdgeId, RoadNetwork};

use crate::time::SimTime;

/// A transient traffic incident: while `t` falls inside `[start, end)`
/// (seconds into the week cycle), speed on `edge` is divided by `severity`.
///
/// Incidents are placed by [`crate::drift::DriftModel`] as part of a day's
/// drifted congestion; a freshly built [`CongestionModel`] has none.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Affected edge index.
    pub edge: u32,
    /// Window start, seconds into the week cycle.
    pub start: u32,
    /// Window end (exclusive), seconds into the week cycle.
    pub end: u32,
    /// Speed divisor while active, ≥ 1.
    pub severity: f64,
}

impl Incident {
    /// Whether this incident slows `e` at time `t`.
    pub fn active(&self, e: EdgeId, t: SimTime) -> bool {
        self.edge == e.index() as u32 && self.start <= t.seconds() && t.seconds() < self.end
    }
}

/// City-level congestion parameters plus per-edge heterogeneity.
///
/// The two drift fields (`peak_shift`, `incidents`) default to inert values
/// and are `#[serde(default)]`, so datasets serialized before they existed
/// load unchanged — and a model with zero shift and no incidents is
/// arithmetically bit-identical to the pre-drift formulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CongestionModel {
    /// Multiplicative per-edge speed heterogeneity (≈ lognormal around 1).
    edge_factor: Vec<f64>,
    /// City center in network coordinates.
    center: (f64, f64),
    /// Spatial decay radius of the center effect, meters.
    radius: f64,
    /// Peak congestion severity (0 = flat traffic; ~1.5 = heavy peaks).
    pub peak_strength: f64,
    /// Seasonal shift of the daily peaks, hours (0 = canonical profile).
    #[serde(default)]
    peak_shift: f64,
    /// Active incidents, sorted as generated; empty outside drift episodes.
    #[serde(default)]
    incidents: Vec<Incident>,
}

impl CongestionModel {
    /// Build a model for a network. `peak_strength` controls how much slower
    /// peak-hour travel is; the per-city defaults in `wsccl-datagen` use
    /// 1.2–1.8.
    pub fn new(net: &RoadNetwork, peak_strength: f64, seed: u64) -> Self {
        // XOR with a constant so this RNG stream differs from other components
        // seeded from the same master seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7AFF_1C00);
        let edge_factor = (0..net.num_edges())
            .map(|_| {
                // Lognormal-ish: exp(N(0, 0.15)), clamped to a sane band.
                let z: f64 = rng.random_range(-1.0..1.0) + rng.random_range(-1.0..1.0);
                (0.15 * z).exp().clamp(0.6, 1.6)
            })
            .collect();
        let (mut cx, mut cy, mut n) = (0.0, 0.0, 0);
        for i in 0..net.num_nodes() {
            let (x, y) = net.position(wsccl_roadnet::NodeId(i as u32));
            cx += x;
            cy += y;
            n += 1;
        }
        let center = (cx / n as f64, cy / n as f64);
        // Radius: half the coordinate spread.
        let mut max_d: f64 = 1.0;
        for i in 0..net.num_nodes() {
            let (x, y) = net.position(wsccl_roadnet::NodeId(i as u32));
            let d = ((x - center.0).powi(2) + (y - center.1).powi(2)).sqrt();
            max_d = max_d.max(d);
        }
        Self {
            edge_factor,
            center,
            radius: max_d / 2.0,
            peak_strength,
            peak_shift: 0.0,
            incidents: Vec::new(),
        }
    }

    /// Time-of-day congestion intensity in `[0, 1]` (before peak scaling).
    ///
    /// Weekdays have Gaussian bumps at 08:00 (σ = 1h) and 17:30 (σ = 1.5h);
    /// weekends a mild midday bump. This is the canonical (zero-shift)
    /// profile; models inside a drift episode use [`Self::profile`].
    pub fn time_profile(t: SimTime) -> f64 {
        let h = t.hour_f();
        let bump = |center: f64, sigma: f64| (-((h - center) / sigma).powi(2) / 2.0).exp();
        if t.is_weekday() {
            (bump(8.0, 1.0) + bump(17.5, 1.5)).min(1.0)
        } else {
            0.35 * bump(13.0, 3.0)
        }
    }

    /// This model's time profile: [`Self::time_profile`] with the seasonal
    /// `peak_shift` applied (peaks move later for positive shifts). At zero
    /// shift the arithmetic is bit-identical to the static profile, so
    /// undrifted models are unchanged.
    pub fn profile(&self, t: SimTime) -> f64 {
        let h = t.hour_f() - self.peak_shift;
        let bump = |center: f64, sigma: f64| (-((h - center) / sigma).powi(2) / 2.0).exp();
        if t.is_weekday() {
            (bump(8.0, 1.0) + bump(17.5, 1.5)).min(1.0)
        } else {
            0.35 * bump(13.0, 3.0)
        }
    }

    /// Seasonal peak shift in hours (0 outside drift episodes).
    pub fn peak_shift(&self) -> f64 {
        self.peak_shift
    }

    /// Active incidents (empty outside drift episodes).
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Combined speed divisor of incidents affecting `e` at `t` (1 if none).
    fn incident_factor(&self, e: EdgeId, t: SimTime) -> f64 {
        let mut f = 1.0;
        for inc in &self.incidents {
            if inc.active(e, t) {
                f *= inc.severity.max(1.0);
            }
        }
        f
    }

    /// Derive a drifted copy of this model for one day of a drift episode:
    /// per-edge capacity scaling (roadworks), new peak parameters, and that
    /// day's incidents. Spatial structure (center, radius) is preserved.
    pub(crate) fn derive(
        &self,
        peak_strength: f64,
        peak_shift: f64,
        incidents: Vec<Incident>,
        edge_scale: impl Fn(usize) -> f64,
    ) -> Self {
        let edge_factor = self
            .edge_factor
            .iter()
            .enumerate()
            .map(|(i, &f)| (f * edge_scale(i)).clamp(0.2, 2.0))
            .collect();
        Self {
            edge_factor,
            center: self.center,
            radius: self.radius,
            peak_strength,
            peak_shift,
            incidents,
        }
    }

    /// Spatial congestion weight in `[0.4, 1.2]`: higher near the center.
    fn spatial(&self, pos: (f64, f64)) -> f64 {
        let d2 = (pos.0 - self.center.0).powi(2) + (pos.1 - self.center.1).powi(2);
        0.4 + 0.8 * (-d2 / (2.0 * self.radius * self.radius)).exp()
    }

    /// Congestion factor ≥ 1 dividing free-flow speed at `pos` and time `t`.
    pub fn congestion_factor(&self, t: SimTime, pos: (f64, f64)) -> f64 {
        1.0 + self.peak_strength * self.profile(t) * self.spatial(pos)
    }

    /// Instantaneous speed on an edge at time `t`, m/s.
    pub fn speed(&self, net: &RoadNetwork, e: EdgeId, t: SimTime) -> f64 {
        let edge = net.edge(e);
        let base = edge.features.road_type.free_flow_speed();
        // More lanes flow slightly better under load.
        let lane_factor = 0.9 + 0.05 * edge.features.lanes as f64;
        let pos = net.edge_midpoint(e);
        let divisor = self.congestion_factor(t, pos) * self.incident_factor(e, t);
        (base * lane_factor * self.edge_factor[e.index()] / divisor).max(1.0)
    }

    /// Expected traversal time of an edge entered at time `t`, seconds,
    /// including expected signal delay.
    pub fn edge_travel_time(&self, net: &RoadNetwork, e: EdgeId, t: SimTime) -> f64 {
        let edge = net.edge(e);
        let drive = edge.length / self.speed(net, e, t);
        let signal = if edge.features.signals {
            // Expected signal wait grows with congestion.
            8.0 + 12.0 * self.profile(t)
        } else {
            0.0
        };
        drive + signal
    }

    /// Citywide congestion index at time `t` in `[0, 1]`, the basis of the
    /// TCI weak labels: mean normalized congestion over sampled edges.
    pub fn network_congestion_index(&self, net: &RoadNetwork, t: SimTime) -> f64 {
        let n = net.num_edges();
        let step = (n / 64).max(1);
        let mut sum = 0.0;
        let mut count = 0;
        let max_factor = 1.0 + self.peak_strength * 1.2;
        let mut i = 0;
        while i < n {
            let pos = net.edge_midpoint(EdgeId(i as u32));
            sum += (self.congestion_factor(t, pos) - 1.0) / (max_factor - 1.0);
            count += 1;
            i += step;
        }
        (sum / count as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::{CityProfile, RoadType};

    fn setup() -> (RoadNetwork, CongestionModel) {
        let net = CityProfile::Aalborg.generate(1);
        let model = CongestionModel::new(&net, 1.5, 1);
        (net, model)
    }

    #[test]
    fn peak_hours_are_slower() {
        let (net, model) = setup();
        let e = EdgeId(0);
        let peak = model.speed(&net, e, SimTime::from_hm(1, 8, 0));
        let off = model.speed(&net, e, SimTime::from_hm(1, 11, 30));
        let night = model.speed(&net, e, SimTime::from_hm(1, 3, 0));
        assert!(peak < off, "peak {peak} should be slower than midday {off}");
        assert!(off < night + 1e-9, "midday {off} should be ≤ night {night}");
    }

    #[test]
    fn weekends_are_lighter_than_weekday_peaks() {
        let p_weekday = CongestionModel::time_profile(SimTime::from_hm(2, 8, 0));
        let p_weekend = CongestionModel::time_profile(SimTime::from_hm(5, 8, 0));
        assert!(p_weekday > 2.0 * p_weekend);
    }

    #[test]
    fn travel_time_positive_and_signal_penalty_applies() {
        let (net, model) = setup();
        let t = SimTime::from_hm(0, 8, 0);
        // Find one signalized and one unsignalized edge of the same type.
        let mut sig = None;
        let mut plain = None;
        for i in 0..net.num_edges() {
            let e = EdgeId(i as u32);
            let f = net.edge(e).features;
            if f.signals && sig.is_none() {
                sig = Some(e);
            }
            if !f.signals && plain.is_none() {
                plain = Some(e);
            }
        }
        let (sig, plain) = (sig.expect("has signals"), plain.expect("has plain"));
        let tt_sig = model.edge_travel_time(&net, sig, t);
        let tt_plain = model.edge_travel_time(&net, plain, t);
        assert!(tt_sig > 0.0 && tt_plain > 0.0);
        // The signal adds at least the base 8 s over pure driving time.
        let drive = net.edge(sig).length / model.speed(&net, sig, t);
        assert!(tt_sig >= drive + 8.0);
    }

    #[test]
    fn congestion_index_tracks_peaks_and_is_bounded() {
        let (net, model) = setup();
        let peak = model.network_congestion_index(&net, SimTime::from_hm(1, 8, 0));
        let night = model.network_congestion_index(&net, SimTime::from_hm(1, 3, 0));
        assert!((0.0..=1.0).contains(&peak) && (0.0..=1.0).contains(&night));
        assert!(peak > night + 0.2, "peak index {peak} vs night {night}");
    }

    #[test]
    fn zero_shift_instance_profile_matches_static_bitwise() {
        let (_, model) = setup();
        for s in (0..crate::time::WEEK_SECONDS).step_by(997) {
            let t = SimTime::new(s);
            assert_eq!(
                model.profile(t).to_bits(),
                CongestionModel::time_profile(t).to_bits(),
                "at t={s}"
            );
        }
    }

    #[test]
    fn pre_drift_serialization_loads_with_inert_drift_fields() {
        let (net, model) = setup();
        // Strip the drift fields to reconstruct the on-disk shape of datasets
        // serialized before they existed.
        use serde::{Deserialize as _, Serialize as _, Value};
        let mut v = model.to_value();
        let Value::Object(obj) = &mut v else { panic!("model must serialize to an object") };
        let before = obj.len();
        obj.retain(|(k, _)| k != "peak_shift" && k != "incidents");
        assert_eq!(obj.len(), before - 2, "both drift fields must have been present");
        let old = CongestionModel::from_value(&v).unwrap();
        assert_eq!(old.peak_shift(), 0.0);
        assert!(old.incidents().is_empty());
        let t = SimTime::from_hm(1, 8, 0);
        let e = EdgeId(3);
        assert_eq!(old.speed(&net, e, t).to_bits(), model.speed(&net, e, t).to_bits());
    }

    #[test]
    fn incident_slows_only_its_edge_inside_its_window() {
        let (net, model) = setup();
        let e = EdgeId(5);
        let other = EdgeId(6);
        let start = SimTime::from_hm(2, 9, 0).seconds();
        let inc = Incident { edge: e.index() as u32, start, end: start + 3600, severity: 3.0 };
        let drifted = model.derive(model.peak_strength, 0.0, vec![inc], |_| 1.0);
        let inside = SimTime::new(start + 600);
        let outside = SimTime::new(start + 7200);
        assert!(
            drifted.speed(&net, e, inside) < model.speed(&net, e, inside) / 2.0 + 1.0,
            "severity-3 incident must slow the edge"
        );
        assert_eq!(
            drifted.speed(&net, e, outside).to_bits(),
            model.speed(&net, e, outside).to_bits(),
            "outside the window the edge is untouched"
        );
        assert_eq!(
            drifted.speed(&net, other, inside).to_bits(),
            model.speed(&net, other, inside).to_bits(),
            "other edges are untouched"
        );
    }

    #[test]
    fn faster_roads_stay_faster() {
        let (net, model) = setup();
        let t = SimTime::from_hm(0, 12, 0);
        // Average speed by type: motorways should beat residential streets.
        let mut by_type = [(0.0f64, 0usize); 5];
        for i in 0..net.num_edges() {
            let e = EdgeId(i as u32);
            let ix = net.edge(e).features.road_type.index();
            by_type[ix].0 += model.speed(&net, e, t);
            by_type[ix].1 += 1;
        }
        let avg = |ix: usize| by_type[ix].0 / by_type[ix].1.max(1) as f64;
        let motorway = avg(RoadType::Motorway.index());
        let residential = avg(RoadType::Residential.index());
        assert!(motorway > 1.5 * residential, "{motorway} vs {residential}");
    }
}
