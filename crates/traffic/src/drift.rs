//! Deterministic day-over-day traffic drift.
//!
//! A drift episode models a city whose traffic changes between data-collection
//! periods ("days"): transient incidents, seasonal shifts of the commute
//! peaks, and multi-day capacity changes (roadworks). Each day's congestion is
//! a [`CongestionModel`] derived from the episode's day-0 base model as a
//! **pure function of `(seed, day)`** — every quantity is hashed out of
//! [`mix64`] with no sequential RNG state, so realizing day 40 does not
//! require days 0..39, and the result is bit-identical regardless of thread
//! count or evaluation order (the same discipline as `IndexedTripGen`).
//!
//! One "day" is one collection period: trajectories collected on day `d` are
//! simulated over the full week cycle of `day_model(d)` (the week-periodic
//! congestion regime in effect during that period), not over a single
//! calendar day. Day 0's seasonal components are anchored to zero, so the
//! episode drifts *away* from the base model gradually; incidents and
//! roadworks can be active from day 0.

use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

use wsccl_roadnet::RoadNetwork;

use crate::congestion::{CongestionModel, Incident};
use crate::gen::mix64;
use crate::time::DAY_SECONDS;

/// Uniform in `[0, 1)` from a hash (same unit conversion as `gen.rs`).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Parameters of a drift episode. Defaults give a visible but recoverable
/// day-over-day drift at any city scale.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Mean incidents per day; actual count is hashed uniform in
    /// `0..=2*mean`.
    pub incident_mean: usize,
    /// Maximum incident severity (speed divisor); severities are hashed
    /// uniform in `[1.5, max]`.
    pub incident_severity: f64,
    /// Seasonal peak-shift amplitude, hours.
    pub peak_shift_hours: f64,
    /// Relative seasonal swing of `peak_strength` (0.3 = ±30%).
    pub peak_strength_swing: f64,
    /// Seasonal period, days.
    pub season_days: f64,
    /// Expected fraction of edges under roadworks on any given day.
    pub works_rate: f64,
    /// Capacity factor applied to an edge while under works (< 1 = slower).
    pub works_factor: f64,
    /// Mean duration of one roadworks project, days.
    pub works_days: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            incident_mean: 2,
            incident_severity: 3.0,
            peak_shift_hours: 1.0,
            peak_strength_swing: 0.3,
            season_days: 28.0,
            works_rate: 0.05,
            works_factor: 0.55,
            works_days: 7,
        }
    }
}

/// One day's drift summary, for run logs and the drift dashboard.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftDay {
    pub day: u64,
    /// Effective peak strength that day.
    pub peak_strength: f64,
    /// Seasonal peak shift that day, hours.
    pub peak_shift: f64,
    /// Number of incidents placed that day.
    pub incidents: usize,
    /// Number of edges under roadworks that day.
    pub works_edges: usize,
}

/// Deterministic generator of per-day congestion models.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftModel {
    cfg: DriftConfig,
    seed: u64,
}

impl DriftModel {
    pub fn new(cfg: DriftConfig, seed: u64) -> Self {
        Self { cfg, seed }
    }

    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Seasonal components for `day`: (peak shift in hours, peak-strength
    /// multiplier). Sinusoids of `day` with hashed phases, anchored so day 0
    /// is exactly the base model's regime.
    fn season(&self, day: u64) -> (f64, f64) {
        let period = self.cfg.season_days.max(1.0);
        let theta = TAU * day as f64 / period;
        let phase_shift = TAU * unit(mix64(self.seed ^ 0x5EA5_0401));
        let phase_strength = TAU * unit(mix64(self.seed ^ 0x5EA5_0402));
        // sin(phase + theta) - sin(phase) ∈ [-2, 2]; halved to bound the
        // swing by the configured amplitude, zero at day 0.
        let swing = |phase: f64| 0.5 * ((phase + theta).sin() - phase.sin());
        let shift = self.cfg.peak_shift_hours * swing(phase_shift);
        let strength_mul = 1.0 + self.cfg.peak_strength_swing * swing(phase_strength);
        (shift, strength_mul.max(0.1))
    }

    /// Whether edge `e` is under roadworks on `day`. Each edge has a hashed
    /// works cycle (duration ≈ `works_days`, duty cycle ≈ `works_rate`).
    fn works_active(&self, e: usize, day: u64) -> bool {
        let rate = self.cfg.works_rate.clamp(0.0, 1.0);
        if rate <= 0.0 {
            return false;
        }
        let wd = self.cfg.works_days.max(1);
        let h = mix64(self.seed ^ 0x90AD_90AD ^ mix64(e as u64 ^ 0x0E06E));
        let dur = wd / 2 + h % (wd + 1);
        let period = ((dur as f64 / rate) as u64).max(dur + 1);
        let offset = mix64(h ^ 0x0FF5_E7) % period;
        (day + offset) % period < dur
    }

    /// The incidents placed on `day`. Each incident sits inside one weekday
    /// of the week cycle (starting 06:00–20:00, lasting 0.5–3 h), so windows
    /// never wrap the cycle.
    fn day_incidents(&self, num_edges: usize, day: u64) -> Vec<Incident> {
        if num_edges == 0 || self.cfg.incident_mean == 0 {
            return Vec::new();
        }
        let hd = mix64(self.seed ^ 0x1AC1_DE47 ^ mix64(day ^ 0xDD47));
        let n = (hd % (2 * self.cfg.incident_mean as u64 + 1)) as usize;
        (0..n)
            .map(|k| {
                let h = mix64(hd ^ mix64(0xA5C0 + k as u64));
                let edge = (h % num_edges as u64) as u32;
                let h2 = mix64(h ^ 0xB7);
                let weekday = (h2 % 7) as u32;
                let sod = 6 * 3600 + (mix64(h2 ^ 0x11) % (14 * 3600)) as u32;
                let dur = 1800 + (mix64(h2 ^ 0x22) % 9000) as u32;
                let max_sev = self.cfg.incident_severity.max(1.5);
                let severity = 1.5 + unit(mix64(h2 ^ 0x33)) * (max_sev - 1.5);
                let start = weekday * DAY_SECONDS + sod;
                Incident { edge, start, end: start + dur, severity }
            })
            .collect()
    }

    /// Realize `day`'s congestion from the episode's base model. Pure in
    /// `(self.seed, day)` given the same `base` and `net`.
    pub fn day_model(
        &self,
        net: &RoadNetwork,
        base: &CongestionModel,
        day: u64,
    ) -> CongestionModel {
        let (shift, strength_mul) = self.season(day);
        let incidents = self.day_incidents(net.num_edges(), day);
        let works_factor = self.cfg.works_factor.clamp(0.1, 1.0);
        base.derive(base.peak_strength * strength_mul, shift, incidents, |e| {
            if self.works_active(e, day) {
                works_factor
            } else {
                1.0
            }
        })
    }

    /// Summary of `day`'s drift (for logs and the dashboard); consistent with
    /// [`Self::day_model`] by construction.
    pub fn day_summary(&self, net: &RoadNetwork, base: &CongestionModel, day: u64) -> DriftDay {
        let (shift, strength_mul) = self.season(day);
        let works_edges = (0..net.num_edges()).filter(|&e| self.works_active(e, day)).count();
        DriftDay {
            day,
            peak_strength: base.peak_strength * strength_mul,
            peak_shift: shift,
            incidents: self.day_incidents(net.num_edges(), day).len(),
            works_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimTime, WEEK_SECONDS};
    use wsccl_roadnet::{CityProfile, EdgeId};

    fn setup() -> (RoadNetwork, CongestionModel, DriftModel) {
        let net = CityProfile::Aalborg.generate(7);
        let base = CongestionModel::new(&net, 1.5, 7);
        let drift = DriftModel::new(DriftConfig::default(), 7);
        (net, base, drift)
    }

    /// Bit-exact fingerprint of a model: sampled speeds over edges × times.
    fn fingerprint(net: &RoadNetwork, m: &CongestionModel) -> Vec<u64> {
        let mut out = Vec::new();
        for e in (0..net.num_edges()).step_by(17) {
            for s in (0..WEEK_SECONDS).step_by(50_411) {
                out.push(m.speed(net, EdgeId(e as u32), SimTime::new(s)).to_bits());
            }
        }
        out
    }

    #[test]
    fn day_model_is_pure_and_thread_invariant() {
        let (net, base, drift) = setup();
        // Serial realization, ascending days.
        let serial: Vec<Vec<u64>> =
            (0..6u64).map(|d| fingerprint(&net, &drift.day_model(&net, &base, d))).collect();
        // Parallel realization, one thread per day, spawned in reverse order.
        let parallel: Vec<Vec<u64>> = std::thread::scope(|s| {
            let mut handles: Vec<_> = (0..6u64)
                .rev()
                .map(|d| {
                    let (net, base, drift) = (&net, &base, &drift);
                    s.spawn(move || (d, fingerprint(net, &drift.day_model(net, base, d))))
                })
                .collect();
            let mut got: Vec<(u64, Vec<u64>)> =
                handles.drain(..).map(|h| h.join().unwrap()).collect();
            got.sort_by_key(|(d, _)| *d);
            got.into_iter().map(|(_, f)| f).collect()
        });
        assert_eq!(serial, parallel, "drift must be bit-identical across thread counts");
        // And repeatable from a fresh DriftModel.
        let again = DriftModel::new(DriftConfig::default(), 7);
        assert_eq!(serial[3], fingerprint(&net, &again.day_model(&net, &base, 3)));
    }

    #[test]
    fn day_zero_seasonal_components_match_base() {
        let (net, base, drift) = setup();
        let d0 = drift.day_model(&net, &base, 0);
        assert_eq!(d0.peak_shift(), 0.0);
        assert_eq!(d0.peak_strength.to_bits(), base.peak_strength.to_bits());
        let summary = drift.day_summary(&net, &base, 0);
        assert_eq!(summary.peak_shift, 0.0);
    }

    #[test]
    fn days_differ_and_summary_is_consistent() {
        let (net, base, drift) = setup();
        let f0 = fingerprint(&net, &drift.day_model(&net, &base, 0));
        let diff = (1..6u64)
            .filter(|&d| fingerprint(&net, &drift.day_model(&net, &base, d)) != f0)
            .count();
        assert!(diff >= 4, "drift must change traffic on most days ({diff}/5 differed)");
        for d in 0..6u64 {
            let m = drift.day_model(&net, &base, d);
            let s = drift.day_summary(&net, &base, d);
            assert_eq!(s.incidents, m.incidents().len());
            assert_eq!(s.peak_shift.to_bits(), m.peak_shift().to_bits());
            assert_eq!(s.peak_strength.to_bits(), m.peak_strength.to_bits());
        }
    }

    #[test]
    fn incident_windows_are_valid_and_bounded() {
        let (net, base, drift) = setup();
        for d in 0..30u64 {
            let m = drift.day_model(&net, &base, d);
            assert!(m.incidents().len() <= 2 * DriftConfig::default().incident_mean);
            for inc in m.incidents() {
                assert!(inc.start < inc.end, "window must be non-empty");
                assert!(inc.end <= WEEK_SECONDS, "window must not wrap the week cycle");
                assert!((inc.edge as usize) < net.num_edges());
                assert!(
                    inc.severity >= 1.5 && inc.severity <= DriftConfig::default().incident_severity
                );
            }
        }
    }

    #[test]
    fn roadworks_persist_for_multiple_days_at_roughly_the_configured_rate() {
        let (net, _base, drift) = setup();
        let n = net.num_edges();
        // Duty cycle over a long horizon ≈ works_rate.
        let horizon = 120u64;
        let mut active_days = 0usize;
        for d in 0..horizon {
            active_days += (0..n).filter(|&e| drift.works_active(e, d)).count();
        }
        let rate = active_days as f64 / (horizon as f64 * n as f64);
        assert!(
            (0.02..=0.10).contains(&rate),
            "works duty cycle {rate:.3} should be near the configured 0.05"
        );
        // Projects persist: some edge active on consecutive days.
        let persistent = (0..n).any(|e| {
            (0..horizon - 1).any(|d| drift.works_active(e, d) && drift.works_active(e, d + 1))
        });
        assert!(persistent, "roadworks must span consecutive days");
    }
}
