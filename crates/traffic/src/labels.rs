//! Weak labels (paper Definition 6 and §VII-A.5).
//!
//! Two families:
//! * **POP** — peak / off-peak from the departure time alone: Morning peak
//!   (7–9 a.m. weekdays), Afternoon peak (4–7 p.m. weekdays), Off-peak
//!   (everything else). This is the paper's default.
//! * **TCI** — traffic congestion index: four congestion levels derived from a
//!   citywide congestion signal (the paper queries Baidu Maps; we query the
//!   simulator's [`crate::CongestionModel`]).

use serde::{Deserialize, Serialize};

use wsccl_roadnet::RoadNetwork;

use crate::congestion::CongestionModel;
use crate::time::SimTime;

/// A weak label value. Variants from the two families never compare equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeakLabel {
    /// POP family.
    MorningPeak,
    /// POP family.
    AfternoonPeak,
    /// POP family.
    OffPeak,
    /// TCI family: congestion level 0 (free) … 3 (jammed).
    Tci(u8),
}

impl WeakLabel {
    /// Dense index within the labeler's class space.
    pub fn class_index(self) -> usize {
        match self {
            WeakLabel::MorningPeak => 0,
            WeakLabel::AfternoonPeak => 1,
            WeakLabel::OffPeak => 2,
            WeakLabel::Tci(level) => level as usize,
        }
    }
}

/// Assigns a weak label to a departure time.
pub trait WeakLabeler {
    fn label(&self, t: SimTime) -> WeakLabel;
    /// Number of distinct labels this labeler can produce.
    fn num_classes(&self) -> usize;
    /// Short name for reporting ("POP" / "TCI").
    fn name(&self) -> &'static str;
}

/// Peak / off-peak labeler — the paper's default weak labels.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PopLabeler;

impl WeakLabeler for PopLabeler {
    fn label(&self, t: SimTime) -> WeakLabel {
        if t.is_weekday() {
            let h = t.hour_f();
            if (7.0..9.0).contains(&h) {
                return WeakLabel::MorningPeak;
            }
            if (16.0..19.0).contains(&h) {
                return WeakLabel::AfternoonPeak;
            }
        }
        WeakLabel::OffPeak
    }

    fn num_classes(&self) -> usize {
        3
    }

    fn name(&self) -> &'static str {
        "POP"
    }
}

/// Traffic-congestion-index labeler: quantizes the citywide congestion index
/// into 4 levels, mirroring Baidu's four congestion grades.
pub struct TciLabeler {
    /// Precomputed index per 5-minute temporal-graph node.
    index_by_node: Vec<f64>,
    thresholds: [f64; 3],
}

impl TciLabeler {
    /// Precompute the congestion index over the whole week and choose
    /// thresholds at the 50th / 75th / 90th percentiles so all four levels
    /// occur.
    pub fn new(net: &RoadNetwork, model: &CongestionModel) -> Self {
        let n = crate::time::TEMPORAL_NODES;
        let index_by_node: Vec<f64> = (0..n)
            .map(|node| {
                let day = (node / crate::time::SLOTS_PER_DAY) as u32;
                let slot = (node % crate::time::SLOTS_PER_DAY) as u32;
                let t = SimTime::from_day_time(day, slot * 300);
                model.network_congestion_index(net, t)
            })
            .collect();
        let mut sorted = index_by_node.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        Self { index_by_node, thresholds: [pct(0.5), pct(0.75), pct(0.9)] }
    }

    /// The raw congestion index backing a departure time's label.
    pub fn raw_index(&self, t: SimTime) -> f64 {
        self.index_by_node[t.temporal_node()]
    }
}

impl WeakLabeler for TciLabeler {
    fn label(&self, t: SimTime) -> WeakLabel {
        let v = self.raw_index(t);
        let level = self.thresholds.iter().filter(|&&th| v > th).count() as u8;
        WeakLabel::Tci(level)
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &'static str {
        "TCI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::CityProfile;

    #[test]
    fn pop_matches_definition() {
        let l = PopLabeler;
        assert_eq!(l.label(SimTime::from_hm(0, 8, 0)), WeakLabel::MorningPeak);
        assert_eq!(l.label(SimTime::from_hm(4, 17, 30)), WeakLabel::AfternoonPeak);
        assert_eq!(l.label(SimTime::from_hm(0, 12, 0)), WeakLabel::OffPeak);
        // Weekend mornings are off-peak.
        assert_eq!(l.label(SimTime::from_hm(5, 8, 0)), WeakLabel::OffPeak);
        // Boundaries: 9:00 is already off-peak, 7:00 is peak.
        assert_eq!(l.label(SimTime::from_hm(1, 9, 0)), WeakLabel::OffPeak);
        assert_eq!(l.label(SimTime::from_hm(1, 7, 0)), WeakLabel::MorningPeak);
        assert_eq!(l.num_classes(), 3);
    }

    #[test]
    fn tci_produces_all_levels_and_orders_by_congestion() {
        let net = CityProfile::Harbin.generate(2);
        let model = CongestionModel::new(&net, 1.5, 2);
        let tci = TciLabeler::new(&net, &model);
        let mut seen = std::collections::HashSet::new();
        for day in 0..7 {
            for hour in 0..24 {
                if let WeakLabel::Tci(l) = tci.label(SimTime::from_hm(day, hour, 0)) {
                    seen.insert(l);
                }
            }
        }
        assert!(seen.len() >= 3, "expected ≥3 TCI levels used, got {seen:?}");
        // Peak must be at least as congested as deep night.
        let peak = tci.label(SimTime::from_hm(1, 8, 0));
        let night = tci.label(SimTime::from_hm(1, 3, 0));
        let level = |w: WeakLabel| match w {
            WeakLabel::Tci(l) => l,
            _ => unreachable!(),
        };
        assert!(level(peak) > level(night));
    }

    #[test]
    fn class_indices_are_dense() {
        assert_eq!(WeakLabel::MorningPeak.class_index(), 0);
        assert_eq!(WeakLabel::AfternoonPeak.class_index(), 1);
        assert_eq!(WeakLabel::OffPeak.class_index(), 2);
        assert_eq!(WeakLabel::Tci(3).class_index(), 3);
    }
}
