//! Traffic dynamics, trajectories, and weak labels.
//!
//! The paper's GPS datasets come from real vehicle fleets moving through real
//! traffic. This crate substitutes a generative model with the same structure:
//!
//! * [`time`] — simulation time over a week (the paper's temporal graph is
//!   built from 5-minute slots × 7 days, §IV-A).
//! * [`congestion`] — a time-of-day and space-dependent congestion model with
//!   weekday morning/afternoon peaks; it defines per-edge speeds and thus
//!   travel-time ground truth, and the citywide congestion index used for the
//!   TCI weak labels (§VII-A.5).
//! * [`drift`] — deterministic day-over-day drift of the congestion model
//!   (incidents, seasonal peak shifts, roadworks), the substrate of the
//!   continual-learning loop; every day is a pure function of `(seed, day)`.
//! * [`labels`] — the two weak-label families: peak/off-peak (POP, Definition
//!   6's example) and traffic congestion indices (TCI).
//! * [`trajectory`] — trip generation (OD sampling, peak-weighted departure
//!   times, perturbed-cost route choice), traversal simulation, and noisy GPS
//!   fix emission at per-city sampling rates (§VII-A.1).

pub mod congestion;
pub mod drift;
pub mod gen;
pub mod labels;
pub mod time;
pub mod trajectory;

pub use congestion::{CongestionModel, Incident};
pub use drift::{DriftConfig, DriftDay, DriftModel};
pub use gen::IndexedTripGen;
pub use labels::{PopLabeler, TciLabeler, WeakLabel, WeakLabeler};
pub use time::SimTime;
pub use trajectory::{GpsFix, Trajectory, Trip, TripConfig, TripGenerator};

/// Crate version, recorded into drift benchmark artifacts so staleness
/// against the built library can be detected (`runner::check_drift_bench`).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
