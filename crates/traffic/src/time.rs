//! Simulation time over one week.
//!
//! The paper's temporal graph discretizes a week into 5-minute slots × 7 days
//! = 2016 nodes (§IV-A). [`SimTime`] is the continuous counterpart: seconds
//! since Monday 00:00, wrapping at the week boundary.

use serde::{Deserialize, Serialize};

/// Seconds in one day.
pub const DAY_SECONDS: u32 = 86_400;
/// Seconds in one week.
pub const WEEK_SECONDS: u32 = 7 * DAY_SECONDS;
/// Five-minute slots per day (the paper's 288).
pub const SLOTS_PER_DAY: usize = 288;
/// Nodes in the paper's temporal graph (288 slots × 7 days).
pub const TEMPORAL_NODES: usize = SLOTS_PER_DAY * 7;

/// A departure time: seconds since Monday 00:00, in `[0, WEEK_SECONDS)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(u32);

impl SimTime {
    /// Construct, wrapping into the week.
    pub fn new(seconds: u32) -> Self {
        Self(seconds % WEEK_SECONDS)
    }

    /// Construct from day of week (0 = Monday) and seconds within the day.
    pub fn from_day_time(day: u32, seconds_of_day: u32) -> Self {
        assert!(day < 7, "day out of range");
        assert!(seconds_of_day < DAY_SECONDS, "seconds_of_day out of range");
        Self(day * DAY_SECONDS + seconds_of_day)
    }

    /// Construct from day, hour, and minute.
    pub fn from_hm(day: u32, hour: u32, minute: u32) -> Self {
        assert!(hour < 24 && minute < 60, "time out of range");
        Self::from_day_time(day, hour * 3600 + minute * 60)
    }

    pub fn seconds(self) -> u32 {
        self.0
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn day(self) -> u32 {
        self.0 / DAY_SECONDS
    }

    /// Seconds since midnight of the current day.
    pub fn seconds_of_day(self) -> u32 {
        self.0 % DAY_SECONDS
    }

    /// Hour of day as a fraction (e.g. 8.5 = 08:30).
    pub fn hour_f(self) -> f64 {
        self.seconds_of_day() as f64 / 3600.0
    }

    /// Five-minute slot within the day, `0..288`.
    pub fn slot(self) -> usize {
        (self.seconds_of_day() / 300) as usize
    }

    /// Node index in the paper's 2016-node temporal graph.
    pub fn temporal_node(self) -> usize {
        self.day() as usize * SLOTS_PER_DAY + self.slot()
    }

    /// True Monday–Friday.
    pub fn is_weekday(self) -> bool {
        self.day() < 5
    }

    /// Advance by (possibly fractional) seconds, wrapping at the week.
    pub fn advance(self, seconds: f64) -> Self {
        debug_assert!(seconds >= 0.0);
        Self::new(self.0.wrapping_add(seconds.round() as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_hm(2, 8, 30); // Wednesday 08:30
        assert_eq!(t.day(), 2);
        assert_eq!(t.seconds_of_day(), 8 * 3600 + 30 * 60);
        assert!((t.hour_f() - 8.5).abs() < 1e-12);
        assert!(t.is_weekday());
        assert!(!SimTime::from_hm(6, 12, 0).is_weekday());
    }

    #[test]
    fn slots_match_paper_discretization() {
        // 00:06 Monday is slot 1 (the paper's worked example in §IV-A).
        let t = SimTime::from_hm(0, 0, 6);
        assert_eq!(t.slot(), 1);
        assert_eq!(t.temporal_node(), 1);
        // Sunday's last slot is node 2015.
        let last = SimTime::from_hm(6, 23, 59);
        assert_eq!(last.temporal_node(), TEMPORAL_NODES - 1);
    }

    #[test]
    fn week_wraps() {
        let t = SimTime::new(WEEK_SECONDS - 10).advance(20.0);
        assert_eq!(t.seconds(), 10);
        assert_eq!(SimTime::new(WEEK_SECONDS).seconds(), 0);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn bad_day_panics() {
        SimTime::from_day_time(7, 0);
    }
}
