//! Trip generation, traversal simulation, and GPS fix emission.
//!
//! Replaces the paper's vehicle fleets: agents draw origin–destination pairs,
//! depart at peak-weighted times, choose routes by perturbed expected travel
//! time (drivers are near- but not perfectly rational), traverse edges under
//! the congestion model with multiplicative noise, and emit Gaussian-noised
//! GPS fixes at a configurable sampling interval (the paper's cities sample at
//! 1 Hz, 1/30 Hz, and ~1/4 Hz respectively).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use wsccl_roadnet::shortest::shortest_path_weighted;
use wsccl_roadnet::{EdgeId, NodeId, Path, RoadNetwork};

use crate::congestion::CongestionModel;
use crate::time::{SimTime, DAY_SECONDS};

/// One noisy GPS observation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpsFix {
    pub x: f64,
    pub y: f64,
    /// Seconds since departure.
    pub t: f64,
}

/// A GPS trajectory (paper Definition 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trajectory {
    pub fixes: Vec<GpsFix>,
    pub departure: SimTime,
}

/// A simulated trip: the ground-truth path, departure, per-edge travel times,
/// and total travel time. This is what map matching should recover from the
/// corresponding [`Trajectory`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trip {
    pub path: Path,
    pub departure: SimTime,
    /// Realized traversal time of each edge, seconds.
    pub edge_times: Vec<f64>,
    /// Realized total travel time, seconds.
    pub total_time: f64,
}

/// Trip generation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TripConfig {
    /// Minimum path length in edges; short hops are discarded.
    pub min_edges: usize,
    /// Maximum path length in edges.
    pub max_edges: usize,
    /// Std-dev of the multiplicative log-cost perturbation in route choice.
    pub route_noise: f64,
    /// Std-dev of the multiplicative travel-time noise per edge.
    pub time_noise: f64,
    /// GPS position noise, meters (std-dev per axis).
    pub gps_noise: f64,
    /// GPS sampling interval, seconds.
    pub sample_interval: f64,
}

impl Default for TripConfig {
    fn default() -> Self {
        Self {
            min_edges: 5,
            max_edges: 60,
            route_noise: 0.25,
            time_noise: 0.15,
            gps_noise: 12.0,
            sample_interval: 15.0,
        }
    }
}

/// Seeded trip generator over one city.
pub struct TripGenerator<'a> {
    net: &'a RoadNetwork,
    model: &'a CongestionModel,
    cfg: TripConfig,
    rng: StdRng,
}

impl<'a> TripGenerator<'a> {
    pub fn new(
        net: &'a RoadNetwork,
        model: &'a CongestionModel,
        cfg: TripConfig,
        seed: u64,
    ) -> Self {
        // XOR with a constant so this RNG stream differs from other components.
        Self { net, model, cfg, rng: StdRng::seed_from_u64(seed ^ 0x7219_06E4) }
    }

    /// Sample a departure time: weekdays weighted toward the two peaks, plus a
    /// uniform background over waking hours.
    pub fn sample_departure(&mut self) -> SimTime {
        sample_departure_with(&mut self.rng)
    }

    /// Sample an origin–destination pair and route, retrying until the route
    /// satisfies the configured length band.
    fn sample_route(&mut self, departure: SimTime) -> Path {
        let n = self.net.num_nodes() as u32;
        loop {
            let a = NodeId(self.rng.random_range(0..n));
            let b = NodeId(self.rng.random_range(0..n));
            if a == b {
                continue;
            }
            // Route choice: expected travel time at departure, perturbed per
            // edge by exp(N(0, route_noise)) to model driver preference noise.
            let mut perturb = vec![0.0f64; self.net.num_edges()];
            for p in perturb.iter_mut() {
                let z: f64 = self.rng.random_range(-1.0..1.0) + self.rng.random_range(-1.0..1.0);
                *p = (self.cfg.route_noise * z).exp();
            }
            let model = self.model;
            let net = self.net;
            let weight = move |e: EdgeId| {
                model.edge_travel_time(net, e, departure).max(0.1) * perturb[e.index()]
            };
            let Some(path) = shortest_path_weighted(self.net, a, b, &weight) else {
                continue;
            };
            if (self.cfg.min_edges..=self.cfg.max_edges).contains(&path.len()) {
                return path;
            }
        }
    }

    /// Generate one trip with realized edge traversal times.
    pub fn generate_trip(&mut self) -> Trip {
        let departure = self.sample_departure();
        self.generate_trip_at(departure)
    }

    /// Generate one trip departing at a fixed time.
    pub fn generate_trip_at(&mut self, departure: SimTime) -> Trip {
        let path = self.sample_route(departure);
        let (edge_times, total_time) = self.traverse(&path, departure);
        Trip { path, departure, edge_times, total_time }
    }

    /// Realize traversal times for a given path and departure time.
    pub fn traverse(&mut self, path: &Path, departure: SimTime) -> (Vec<f64>, f64) {
        traverse_with(self.net, self.model, self.cfg.time_noise, &mut self.rng, path, departure)
    }

    /// Emit a noisy GPS trajectory for a trip.
    pub fn trip_to_trajectory(&mut self, trip: &Trip) -> Trajectory {
        emit_trajectory(self.net, &self.cfg, &mut self.rng, trip)
    }
}

/// Departure-time sampling shared by the sequential [`TripGenerator`] and the
/// per-index streaming generator ([`crate::gen::IndexedTripGen`]): weekdays
/// weighted toward the two peaks, plus a uniform background over waking hours.
pub fn sample_departure_with(rng: &mut StdRng) -> SimTime {
    let day = rng.random_range(0..7u32);
    let r: f64 = rng.random();
    let hour: f64 = if day < 5 && r < 0.3 {
        // Morning peak cluster.
        8.0 + rng.random_range(-1.0..1.0)
    } else if day < 5 && r < 0.6 {
        // Afternoon peak cluster.
        17.5 + rng.random_range(-1.5..1.5)
    } else {
        // Background traffic, 6:00–23:00.
        rng.random_range(6.0..23.0)
    };
    let secs = ((hour.clamp(0.0, 23.99)) * 3600.0) as u32 % DAY_SECONDS;
    SimTime::from_day_time(day, secs)
}

/// Traversal simulation shared by both generators: realize per-edge travel
/// times under the congestion model with multiplicative noise.
pub fn traverse_with(
    net: &RoadNetwork,
    model: &CongestionModel,
    time_noise: f64,
    rng: &mut StdRng,
    path: &Path,
    departure: SimTime,
) -> (Vec<f64>, f64) {
    let mut t = departure;
    let mut total = 0.0;
    let mut edge_times = Vec::with_capacity(path.len());
    for &e in path.edges() {
        let expected = model.edge_travel_time(net, e, t);
        let z: f64 = rng.random_range(-1.0..1.0) + rng.random_range(-1.0..1.0);
        let realized = (expected * (time_noise * z).exp()).max(0.5);
        edge_times.push(realized);
        total += realized;
        t = t.advance(realized);
    }
    (edge_times, total)
}

/// GPS fix emission shared by both generators.
pub fn emit_trajectory(
    net: &RoadNetwork,
    cfg: &TripConfig,
    rng: &mut StdRng,
    trip: &Trip,
) -> Trajectory {
    let mut fixes = Vec::new();
    let mut next_sample = 0.0f64;
    let mut elapsed = 0.0f64;
    for (i, &e) in trip.path.edges().iter().enumerate() {
        let dur = trip.edge_times[i];
        while next_sample <= elapsed + dur {
            let frac = ((next_sample - elapsed) / dur).clamp(0.0, 1.0);
            let (x, y) = net.edge_point_at(e, frac);
            let nx = x + gauss(rng) * cfg.gps_noise;
            let ny = y + gauss(rng) * cfg.gps_noise;
            fixes.push(GpsFix { x: nx, y: ny, t: next_sample });
            next_sample += cfg.sample_interval;
        }
        elapsed += dur;
    }
    // Always include the final position.
    let last_edge = *trip.path.edges().last().expect("non-empty path");
    let (x, y) = net.edge_point_at(last_edge, 1.0);
    fixes.push(GpsFix {
        x: x + gauss(rng) * cfg.gps_noise,
        y: y + gauss(rng) * cfg.gps_noise,
        t: elapsed,
    });
    Trajectory { fixes, departure: trip.departure }
}

/// Approximate standard normal (sum of uniforms, variance-corrected).
pub(crate) fn gauss(rng: &mut StdRng) -> f64 {
    let mut s = 0.0;
    for _ in 0..6 {
        s += rng.random_range(-1.0..1.0f64);
    }
    s * (3.0f64 / 6.0).sqrt() * (2.0f64 / 3.0).sqrt() * 1.22
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsccl_roadnet::CityProfile;

    fn setup() -> (RoadNetwork, CongestionModel) {
        let net = CityProfile::Aalborg.generate(3);
        let model = CongestionModel::new(&net, 1.5, 3);
        (net, model)
    }

    #[test]
    fn trips_respect_length_band_and_are_valid_paths() {
        let (net, model) = setup();
        let cfg = TripConfig::default();
        let mut generator = TripGenerator::new(&net, &model, cfg.clone(), 7);
        for _ in 0..20 {
            let trip = generator.generate_trip();
            assert!((cfg.min_edges..=cfg.max_edges).contains(&trip.path.len()));
            assert!(Path::new(&net, trip.path.edges().to_vec()).is_some(), "invalid path");
            assert_eq!(trip.edge_times.len(), trip.path.len());
            assert!(trip.edge_times.iter().all(|&t| t > 0.0));
            assert!((trip.edge_times.iter().sum::<f64>() - trip.total_time).abs() < 1e-9);
        }
    }

    #[test]
    fn peak_trips_are_slower_on_the_same_path() {
        let (net, model) = setup();
        let mut generator = TripGenerator::new(
            &net,
            &model,
            TripConfig { time_noise: 0.0, ..Default::default() },
            9,
        );
        let trip = generator.generate_trip_at(SimTime::from_hm(1, 8, 0));
        let (_, peak_time) = generator.traverse(&trip.path, SimTime::from_hm(1, 8, 0));
        let (_, night_time) = generator.traverse(&trip.path, SimTime::from_hm(1, 3, 0));
        assert!(
            peak_time > 1.1 * night_time,
            "peak {peak_time:.0}s should exceed night {night_time:.0}s by >10%"
        );
    }

    #[test]
    fn trajectory_covers_the_trip_and_orders_in_time() {
        let (net, model) = setup();
        let mut generator = TripGenerator::new(&net, &model, TripConfig::default(), 11);
        let trip = generator.generate_trip();
        let traj = generator.trip_to_trajectory(&trip);
        assert!(traj.fixes.len() >= 2);
        for w in traj.fixes.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        // Last fix is (noisily) near the destination.
        let dest = net.position(trip.path.destination(&net));
        let last = traj.fixes.last().unwrap();
        let d = ((last.x - dest.0).powi(2) + (last.y - dest.1).powi(2)).sqrt();
        assert!(d < 100.0, "last fix {d:.0} m from destination");
    }

    #[test]
    fn departure_sampling_prefers_weekday_peaks() {
        let (net, model) = setup();
        let mut generator = TripGenerator::new(&net, &model, TripConfig::default(), 13);
        let mut peak = 0;
        let mut total = 0;
        for _ in 0..2000 {
            let t = generator.sample_departure();
            if t.is_weekday() {
                total += 1;
                let h = t.hour_f();
                if (7.0..9.0).contains(&h) || (16.0..19.0).contains(&h) {
                    peak += 1;
                }
            }
        }
        let frac = peak as f64 / total as f64;
        // Uniform over 6–23 h would put ~29% in the 5 peak hours; we weight
        // peaks, so expect well above that.
        assert!(frac > 0.4, "peak fraction {frac:.2}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (net, model) = setup();
        let t1 = TripGenerator::new(&net, &model, TripConfig::default(), 5).generate_trip();
        let t2 = TripGenerator::new(&net, &model, TripConfig::default(), 5).generate_trip();
        assert_eq!(t1.path.edges(), t2.path.edges());
        assert_eq!(t1.departure, t2.departure);
    }
}
